//! Strategy core: deterministic RNG, the `Strategy` trait and its
//! combinators, and the built-in strategies (primitives, ranges,
//! regex-subset strings, tuples, vectors of strategies).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used by the mini-runner. Seeded from
/// the test name, so every failure reproduces exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()).wrapping_mul(u128::from(n))) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Trait + combinators
// ---------------------------------------------------------------------------

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then samples the strategy `f`
    /// builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `f` wraps an inner
    /// strategy into one more level, applied up to `depth` times.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth.max(1) {
            let recursed = f(current).boxed();
            // Lean toward leaves so expected size stays bounded.
            current = OneOf::new(vec![(2, leaf.clone()), (1, recursed)]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Weighted union of strategies (backing for `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>().max(1);
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < u64::from(*w) {
                return strat.sample(rng);
            }
            pick -= u64::from(*w);
        }
        self.arms[0].1.sample(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy for `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly moderate magnitudes, sometimes raw bit patterns (which
        // include NaN/∞ — `Value`'s total ordering must survive them).
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()),
            1 => 0.0,
            _ => {
                let mag = (rng.below(1 << 53) as f64) / (1u64 << 26) as f64;
                if rng.next_u64() & 1 == 1 {
                    -mag
                } else {
                    mag
                }
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let scaled = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (self.start as i128 + scaled as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let scaled = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (start as i128 + scaled as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v.max(self.start)
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Atom {
    Class(Vec<char>),
    Literal(char),
}

#[derive(Debug)]
struct Quant {
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => return out,
            '-' => {
                // Range when both endpoints exist; literal '-' otherwise.
                match (prev, chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        for code in (lo as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(code) {
                                out.push(ch);
                            }
                        }
                        prev = None;
                    }
                    _ => {
                        out.push('-');
                        prev = Some('-');
                    }
                }
            }
            '\\' => {
                let esc = chars.next().expect("escape in class");
                out.push(esc);
                prev = Some(esc);
            }
            other => {
                out.push(other);
                prev = Some(other);
            }
        }
    }
    panic!("unterminated character class in pattern");
}

fn parse_quant(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Quant {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => Quant {
                    min: lo.trim().parse().expect("quantifier lower bound"),
                    max: hi.trim().parse().expect("quantifier upper bound"),
                },
                None => {
                    let n = spec.trim().parse().expect("quantifier count");
                    Quant { min: n, max: n }
                }
            }
        }
        Some('?') => {
            chars.next();
            Quant { min: 0, max: 1 }
        }
        Some('*') => {
            chars.next();
            Quant { min: 0, max: 8 }
        }
        Some('+') => {
            chars.next();
            Quant { min: 1, max: 8 }
        }
        _ => Quant { min: 1, max: 1 },
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(chars.next().expect("escape at end of pattern")),
            '.' => Atom::Class((' '..='~').collect()),
            other => Atom::Literal(other),
        };
        let quant = parse_quant(&mut chars);
        let n = quant.min + rng.below((quant.max - quant.min + 1) as u64) as usize;
        for _ in 0..n {
            match &atom {
                Atom::Class(set) => {
                    assert!(!set.is_empty(), "empty character class in {pattern:?}");
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                Atom::Literal(ch) => out.push(*ch),
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Structural strategies: tuples and vectors of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// A vector of strategies generates element-wise (used via
/// `prop_flat_map` to build per-index strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Size ranges for collections
// ---------------------------------------------------------------------------

/// An inclusive size interval for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}
