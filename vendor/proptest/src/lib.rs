//! Offline mini-`proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: `Strategy` with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, `any::<T>()`, `Just`, regex-subset string
//! strategies, ranges as strategies, `collection::{vec, btree_map,
//! btree_set}`, `option::of`, weighted `prop_oneof!`, `ProptestConfig`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case panics with the generated inputs'
//!   `Debug` form via the assert message instead;
//! * deterministic seeding per test name, so failures reproduce exactly;
//! * `prop_assume!` skips the current case rather than resampling.

use std::collections::{BTreeMap, BTreeSet};

pub mod strategies;

pub use strategies::{
    any, Any, Arbitrary, BoxedStrategy, Just, OneOf, SizeRange, Strategy, TestRng,
};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy producing `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy producing sorted unique maps. Sizes are best-effort: key
    /// collisions may produce fewer entries than requested.
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size: size.into() }
    }

    /// Strategy producing sorted unique sets (best-effort sizes, as for
    /// [`btree_map`]).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 4 + 8 {
                out.insert(self.keys.sample(rng), self.values.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 4 + 8 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The ambient prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategies::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a condition inside a property (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `name(param in strategy, …) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($param:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $param = $crate::Strategy::sample(&($strat), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

// Keep module-level imports used by collection/option modules.
#[allow(unused_imports)]
use strategies::*;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(any::<u8>(), 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in small_vec()) {
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_and_map_work(x in prop_oneof![1 => Just(1u32), 2 => 10u32..20, 3 => Just(7u32)]) {
            prop_assert!(x == 1 || x == 7 || (10..20).contains(&x));
        }

        #[test]
        fn regex_subset_shapes_strings(s in "[a-z][a-z0-9._]{0,12}", t in "[ -~]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 13);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(t.len() <= 8);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>().prop_map(Tree::Leaf).prop_recursive(4, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::from_name("rec");
        for _ in 0..200 {
            let _ = strat.sample(&mut rng);
        }
    }

    #[test]
    fn flat_map_and_vec_of_strategies() {
        let strat = crate::collection::vec(any::<u8>(), 1..4)
            .prop_flat_map(|seeds| seeds.into_iter().map(|s| Just(s as u32)).collect::<Vec<_>>());
        let mut rng = crate::TestRng::from_name("flat");
        let out = strat.sample(&mut rng);
        assert!(!out.is_empty() && out.len() < 4);
    }
}
