//! Offline shim of the [`loom`](https://docs.rs/loom) model-checker API.
//!
//! The real loom exhaustively explores thread interleavings under a
//! modeled scheduler with a C11 memory model. This offline stand-in
//! keeps loom's *API* — `loom::model`, `loom::thread`, `loom::sync::*`
//! — so model tests are written exactly as they would be upstream, but
//! checks them by **bounded randomized interleaving exploration**:
//!
//! * `model(f)` runs `f` many times (`LOOM_ITERS`, default 128), each
//!   with a distinct deterministic seed;
//! * every shim primitive (`Mutex::lock`, atomic load/store/RMW,
//!   `thread::spawn`/`yield_now`) is a *yield point* that consults the
//!   iteration's seeded RNG and preempts the OS thread with some
//!   probability, shaking out orderings a plain test would never hit;
//! * a watchdog aborts an iteration that stops making progress
//!   (`LOOM_TIMEOUT_MS`, default 10s) — the shim's deadlock detector.
//!
//! Bounded randomization finds strictly fewer bugs than exhaustive
//! model checking: when the real crate is available (CI, not this
//! offline container), delete this shim from `[workspace.members]` and
//! the tests run unchanged under genuine loom.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering as StdOrdering};

thread_local! {
    /// Per-thread RNG state; children fork from the iteration seed.
    static RNG: Cell<u64> = const { Cell::new(0) };
}

/// Seed shared with spawned threads for the current iteration.
static ITER_SEED: AtomicU32 = AtomicU32::new(0);

fn seed_thread(seed: u64) {
    RNG.with(|r| r.set(seed | 1));
}

/// xorshift64* — deterministic, no external RNG crate needed.
fn next_rand() -> u64 {
    RNG.with(|r| {
        let mut x = r.get();
        if x == 0 {
            // A thread that never got seeded (e.g. spawned outside
            // `model`) forks from the iteration seed and its thread id.
            x = u64::from(ITER_SEED.load(StdOrdering::Relaxed)) << 17 | 0x9e37;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        r.set(x);
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    })
}

/// A scheduling decision point: sometimes preempt the current thread.
fn yield_point() {
    match next_rand() % 8 {
        0 | 1 => std::thread::yield_now(),
        2 => {
            // A longer preemption window: lets another thread run a
            // whole critical section, not just a step.
            std::thread::sleep(std::time::Duration::from_micros(next_rand() % 50));
        }
        _ => {}
    }
}

/// Runs `f` under bounded randomized interleaving exploration.
///
/// Panics (failing the enclosing test) when any iteration panics or
/// exceeds the watchdog timeout — the latter is reported as a suspected
/// deadlock, loom's deadlock-freedom check.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters: u32 = std::env::var("LOOM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(128);
    let timeout_ms: u64 =
        std::env::var("LOOM_TIMEOUT_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let f = std::sync::Arc::new(f);
    for iter in 0..iters {
        ITER_SEED.store(iter.wrapping_add(1), StdOrdering::Relaxed);
        let f = std::sync::Arc::clone(&f);
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::Builder::new()
            .name(format!("loom-model-{iter}"))
            .spawn(move || {
                seed_thread((u64::from(iter) << 32) | 0x5eed);
                f();
                drop(done_tx); // disconnects the receiver = success
            })
            .unwrap_or_else(|e| panic!("loom shim: cannot spawn model thread: {e}"));
        match done_rx.recv_timeout(std::time::Duration::from_millis(timeout_ms)) {
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Worker finished (or panicked — join surfaces that).
                if worker.join().is_err() {
                    panic!("loom shim: model iteration {iter} panicked (seed {iter})");
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // The iteration stopped making progress. The stuck
                // worker cannot be killed; abort so CI reports failure
                // instead of hanging.
                eprintln!(
                    "loom shim: iteration {iter} exceeded {timeout_ms}ms — suspected deadlock"
                );
                std::process::abort();
            }
            Ok(()) => unreachable!("done_tx is only dropped, never sent on"),
        }
    }
}

pub mod thread {
    //! `loom::thread` — spawn/join with yield points at the boundaries.

    /// Handle mirroring `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            super::yield_point();
            self.inner.join()
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let seed = super::next_rand();
        super::yield_point();
        let inner = std::thread::Builder::new()
            .spawn(move || {
                super::seed_thread(seed);
                super::yield_point();
                f()
            })
            .unwrap_or_else(|e| panic!("loom shim: spawn failed: {e}"));
        JoinHandle { inner }
    }

    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    //! `loom::sync` — std primitives wrapped with yield points.

    pub use std::sync::Arc;

    /// Mutex with scheduling points around acquisition, mirroring
    /// `std::sync::Mutex`'s poisoning API (like real loom).
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex { inner: std::sync::Mutex::new(value) }
        }

        pub fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
            super::yield_point();
            let guard = self.inner.lock();
            super::yield_point();
            guard
        }

        pub fn try_lock(&self) -> std::sync::TryLockResult<std::sync::MutexGuard<'_, T>> {
            super::yield_point();
            self.inner.try_lock()
        }
    }

    /// Condvar passthrough (std's is already interleaving-sensitive).
    pub use std::sync::Condvar;

    pub mod atomic {
        //! Atomics with yield points before and after every access.

        pub use std::sync::atomic::Ordering;

        macro_rules! shim_atomic {
            ($name:ident, $std:ty, $prim:ty) => {
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    pub const fn new(v: $prim) -> Self {
                        Self { inner: <$std>::new(v) }
                    }

                    pub fn load(&self, order: Ordering) -> $prim {
                        super::super::yield_point();
                        self.inner.load(order)
                    }

                    pub fn store(&self, v: $prim, order: Ordering) {
                        super::super::yield_point();
                        self.inner.store(v, order);
                        super::super::yield_point();
                    }

                    pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                        super::super::yield_point();
                        self.inner.fetch_add(v, order)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        super::super::yield_point();
                        self.inner.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Bool atomic (no `fetch_add` — std doesn't have one either).
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            pub const fn new(v: bool) -> Self {
                Self { inner: std::sync::atomic::AtomicBool::new(v) }
            }

            pub fn load(&self, order: Ordering) -> bool {
                super::super::yield_point();
                self.inner.load(order)
            }

            pub fn store(&self, v: bool, order: Ordering) {
                super::super::yield_point();
                self.inner.store(v, order);
                super::super::yield_point();
            }

            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                super::super::yield_point();
                self.inner.swap(v, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_and_interleaves() {
        std::env::set_var("LOOM_ITERS", "8");
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let h = std::sync::Arc::clone(&hits);
        super::model(move || {
            let counter = crate::sync::Arc::new(crate::sync::Mutex::new(0u32));
            let c2 = crate::sync::Arc::clone(&counter);
            let t = crate::thread::spawn(move || {
                *c2.lock().unwrap() += 1;
            });
            *counter.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*counter.lock().unwrap(), 2);
            h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 8);
    }
}
