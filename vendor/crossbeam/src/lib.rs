//! Minimal offline shim for the `crossbeam::thread::scope` API, backed by
//! `std::thread::scope` (stable since 1.63).

/// Scoped threads.
pub mod thread {
    /// Handle passed to closures spawned inside a scope. The real
    /// crossbeam passes the scope itself for nested spawns; callers here
    /// only ever ignore it.
    #[derive(Debug)]
    pub struct NestedScope(());

    /// A thread scope; spawned threads are joined before `scope` returns.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&NestedScope(())))
        }
    }

    /// Runs `f` with a scope in which borrowing from the caller's stack is
    /// allowed; all spawned threads are joined on exit. A panicking child
    /// propagates as a panic (std semantics) rather than an `Err`, which
    /// still fails the calling test.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
