//! Offline stub for `serde_derive`.
//!
//! The workspace's canonical wire format is the hand-written codec in
//! `pass-model`; the serde derives on model types exist only to keep the
//! types serde-compatible for downstream users. This stub therefore emits
//! empty impls of the marker traits in the sibling `serde` stub. It
//! handles plain (non-generic) structs and enums, which is everything the
//! workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive was applied to.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("serde stub: expected type name, found {other:?}"),
                }
            }
        }
    }
    panic!("serde stub: no struct/enum found in derive input");
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().expect("generated impl parses")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
