//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the API surface the `pass-bench` bench targets use
//! (`benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros) and reports a simple mean wall-clock time per
//! iteration. No statistics, plots, or warm-up phases — enough to compile
//! the bench suite anywhere and get honest relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark's measured closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters.max(1) {
            std::hint::black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample count is
    /// reused as our iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { iters: self.iters(), total: Duration::ZERO };
        f(&mut b);
        let per = b.total.as_secs_f64() * 1e6 / b.iters.max(1) as f64;
        println!("{:<50} {:>12.2} µs/iter", format!("{}/{id}", self.name), per);
    }

    fn iters(&self) -> u64 {
        // Keep "quick mode" quick: a few iterations give a usable mean
        // without criterion's statistical machinery.
        self.samples.clamp(1, 10) as u64
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        self.run_one(&id.id, |b| f(b));
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut f = f;
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (report already printed incrementally).
    pub fn finish(self) {}
}

/// The harness entry object.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _c: self }
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group
            .bench_with_input(BenchmarkId::new("with", 7), &7, |b, &x| b.iter(|| black_box(x * 2)));
        group.finish();
        assert!(runs >= 1);
    }
}
