//! Offline shim exposing the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng` with
//! `gen`, `gen_bool`, and `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic,
//! fast, and statistically solid for the simulation workloads here (the
//! sensor generators assert Poisson/AR(1) sample means against theory).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from their full domain.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range; panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform sample over a type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        uniform01(self.next_u64()) < p
    }

    /// Uniform sample from `range`; panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// `u64` bits mapped to `[0, 1)` with 53-bit precision.
fn uniform01(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform01(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform01(rng.next_u64()) as f32
    }
}

/// Types uniformly sampleable over an interval. The blanket
/// [`SampleRange`] impls below go through this trait so a `Range<{float}>`
/// or `Range<{integer}>` literal keeps its inference variable (matching
/// real rand's blanket-impl structure — per-type impls would force early
/// disambiguation and break callers like `slice[rng.gen_range(0..4)]`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform sample from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range on empty range");
                // Exact in i128 for every ≤64-bit integer type; multiply-
                // shift keeps bias below 2⁻⁶⁴·span, irrelevant here.
                let span = (end as i128 - start as i128) as u128;
                let scaled = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (start as i128 + scaled as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range on empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                let span = (end as i128 - start as i128) as u128 + 1;
                let scaled = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (start as i128 + scaled as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range on empty range");
                let u = uniform01(rng.next_u64()) as $t;
                let v = start + (end - start) * u;
                // Guard rounding: the result must stay below `end`.
                if v >= end { start } else { v.max(start) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range on empty range");
                let u = uniform01(rng.next_u64()) as $t;
                (start + (end - start) * u).clamp(start, end)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(0i64..=3);
            assert!((0..=3).contains(&i));
        }
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
