//! Minimal offline shim exposing the subset of the `parking_lot` API this
//! workspace uses, backed by `std::sync`. Poisoning is swallowed: a
//! panicked critical section does not wedge every later lock call, which
//! matches parking_lot's semantics.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
