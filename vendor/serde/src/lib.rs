//! Offline stub of `serde`.
//!
//! PASS serializes through its own canonical codec (`pass-model::codec`);
//! the serde derives on model types are marker-only compatibility
//! declarations. This stub keeps the trait names and derive macros
//! available without the real (network-fetched) serde.

/// Marker for types declaring serde serializability.
pub trait Serialize {}

/// Marker for types declaring serde deserializability.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
