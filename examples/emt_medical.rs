//! The §III-C scenario: a sensor-enabled ambulance team.
//!
//! EMTs place pulse oximeters on patients at a mass-casualty incident;
//! vitals stream into the local PASS; dispatch asks the §III-C questions
//! ("everything for this patient", "heart rate profiles for everyone
//! handled by EMT X", "patients with signs of arrhythmia").
//!
//! ```sh
//! cargo run --example emt_medical
//! ```

use pass::core::Pass;
use pass::model::{keys, Attributes, SiteId, Timestamp, ToolDescriptor};
use pass::sensor::medical::{generate, MedicalConfig};

fn main() {
    let pass = Pass::open_memory(SiteId(30));

    // Ten patients, four EMTs, five minutes of vitals.
    let config = MedicalConfig {
        incident: "overpass-collapse".to_owned(),
        patients: 10,
        emts: 4,
        arrhythmia_rate: 0.35,
        seed: 11,
        ..MedicalConfig::default()
    };
    let specs = generate(&config, Timestamp::ZERO, 5);
    println!("streaming {} vitals windows into the incident PASS…", specs.len());
    let mut window_ids = Vec::new();
    for spec in &specs {
        let id = pass
            .capture(spec.attrs.clone(), spec.readings.clone(), spec.at)
            .expect("capture vitals");
        window_ids.push(id);
    }

    // The diagnostic tool consumes each patient's windows and emits a
    // triage summary — a derived tuple set with full ancestry.
    let triage_tool = ToolDescriptor::new("auto-triage", "0.7");
    for p in 0..config.patients {
        let patient = format!("patient-{p:03}");
        let windows = pass
            .query_text(&format!(r#"FIND WHERE patient = "{patient}""#))
            .expect("patient windows");
        let parents: Vec<_> = windows.ids();
        let summary_attrs = Attributes::new()
            .with(keys::DOMAIN, "medical")
            .with(keys::TYPE, "triage_summary")
            .with(keys::PATIENT, patient.clone())
            .with(keys::REGION, config.incident.clone());
        pass.derive(&parents, &triage_tool, summary_attrs, vec![], Timestamp(400_000))
            .expect("derive summary");
    }

    // -- §III-C patient queries ------------------------------------------
    println!("\n› Show me everything we've done for patient-003:");
    let all = pass
        .query_text(r#"FIND WHERE patient = "patient-003" ORDER BY created ASC"#)
        .expect("query");
    for record in &all.records {
        println!("   {}  type={}", record.id, record.attributes.get_str(keys::TYPE).unwrap_or("?"));
    }

    println!("\n› Give profiles for everyone handled by emt-1:");
    let by_emt = pass.query_text(r#"FIND WHERE operator = "emt-1""#).expect("query");
    let patients: std::collections::BTreeSet<_> = by_emt
        .records
        .iter()
        .filter_map(|r| r.attributes.get_str(keys::PATIENT))
        .map(str::to_owned)
        .collect();
    println!("   {} windows across patients {:?}", by_emt.records.len(), patients);

    println!("\n› Find me all patients with signs of arrhythmia:");
    let flagged = pass.query_text("FIND WHERE anomaly.arrhythmia = true").expect("query");
    let patients: std::collections::BTreeSet<_> = flagged
        .records
        .iter()
        .filter_map(|r| r.attributes.get_str(keys::PATIENT))
        .map(str::to_owned)
        .collect();
    println!("   {patients:?}");

    // -- Provenance question: what fed this triage summary? ----------------
    let summaries = pass.query_text(r#"FIND WHERE type = "triage_summary" LIMIT 1"#).unwrap();
    let summary = summaries.records.first().expect("at least one summary");
    let q = format!("FIND ANCESTORS OF ts:{}", summary.id.full_hex());
    let sources = pass.query_text(&q).expect("lineage");
    println!(
        "\n› triage summary {} was derived from {} vitals windows (tool: {})",
        summary.id,
        sources.records.len(),
        summary.ancestry.first().map(|d| d.tool.label()).unwrap_or_default()
    );
}
