//! The §III-B taint scenario on a volcano archive.
//!
//! "Provenance is particularly important for derived data; if a problem
//! is found with the original data or with an analysis tool, all
//! downstream data is tainted and must be locatable."
//!
//! We build a volcano-monitoring archive, run an analysis pipeline over
//! it, then discover a miscalibrated station and chase every downstream
//! product — including the ones produced by a buggy tool version.
//!
//! ```sh
//! cargo run --example volcano_taint
//! ```

use pass::core::Pass;
use pass::index::{Direction, TraverseOpts};
use pass::model::{keys, Attributes, SiteId, Timestamp, ToolDescriptor, Value};
use pass::sensor::volcano::{generate, VolcanoConfig};

fn main() {
    let pass = Pass::open_memory(SiteId(9));

    // Three hours of seismic windows with one eruption episode.
    let config = VolcanoConfig {
        volcano: "vesuvius".to_owned(),
        stations: 6,
        eruptions: vec![(20, 6)],
        seed: 19,
        ..VolcanoConfig::default()
    };
    let specs = generate(&config, Timestamp::ZERO, 36);
    let mut raw_ids = Vec::new();
    for spec in &specs {
        raw_ids.push(
            pass.capture(spec.attrs.clone(), spec.readings.clone(), spec.at).expect("capture"),
        );
    }
    println!("archived {} seismic windows", raw_ids.len());

    // Analysis pipeline: per-station denoise (v1.0 for the first half of
    // the archive, buggy v1.1 for the rest), then a daily summary over
    // everything.
    let mut denoised = Vec::new();
    for (i, &raw) in raw_ids.iter().enumerate() {
        let version = if i < raw_ids.len() / 2 { "1.0" } else { "1.1" };
        let id = pass
            .derive(
                &[raw],
                &ToolDescriptor::new("denoise", version),
                Attributes::new()
                    .with(keys::DOMAIN, "volcano")
                    .with(keys::REGION, "vesuvius")
                    .with(keys::TYPE, "denoised"),
                vec![],
                Timestamp(20_000_000 + i as u64),
            )
            .expect("derive denoised");
        denoised.push(id);
    }
    let summary = pass
        .derive(
            &denoised,
            &ToolDescriptor::new("daily-summary", "2.0"),
            Attributes::new()
                .with(keys::DOMAIN, "volcano")
                .with(keys::REGION, "vesuvius")
                .with(keys::TYPE, "daily_summary"),
            vec![],
            Timestamp(30_000_000),
        )
        .expect("derive summary");

    // -- Taint hunt 1: a miscalibrated station ---------------------------
    // Station 30002's windows are suspect. Which products consumed them?
    let station_windows = pass
        .query_text(r#"FIND WHERE station.id = 30002 AND type = "seismic_window""#)
        .expect("station windows");
    println!("\nstation 30002 produced {} suspect windows", station_windows.records.len());
    let mut tainted = std::collections::BTreeSet::new();
    for id in station_windows.ids() {
        for record in pass
            .lineage(id, Direction::Descendants, TraverseOpts::unbounded())
            .expect("descendants")
        {
            tainted.insert(record.id);
        }
    }
    println!("taint closure reaches {} downstream tuple sets", tainted.len());
    assert!(tainted.contains(&summary), "the daily summary is tainted too");

    // -- Taint hunt 2: a buggy tool version -------------------------------
    // denoise v1.1 had an optimizer bug: find everything it touched.
    let buggy = pass
        .query_text(r#"FIND WHERE tool.name = "denoise" AND tool.version = "1.1""#)
        .expect("tool query");
    println!("\ndenoise v1.1 produced {} tuple sets directly", buggy.records.len());
    let mut tool_tainted = std::collections::BTreeSet::new();
    for id in buggy.ids() {
        tool_tainted.insert(id);
        for record in pass
            .lineage(id, Direction::Descendants, TraverseOpts::unbounded())
            .expect("descendants")
        {
            tool_tainted.insert(record.id);
        }
    }
    println!("tool-taint closure: {} tuple sets must be re-derived", tool_tainted.len());

    // -- The eruption is still findable by provenance ----------------------
    let eruption = pass
        .query_text(r#"FIND WHERE eruption_window = true AND peak_amplitude_um >= 50.0"#)
        .expect("eruption query");
    println!(
        "\n{} archived windows show eruption-grade amplitude (peak ≥ 50 µm)",
        eruption.records.len()
    );
    let loudest = eruption
        .records
        .iter()
        .filter_map(|r| {
            r.attributes.get("peak_amplitude_um").and_then(Value::as_float).map(|a| (a, r.id))
        })
        .max_by(|a, b| a.0.total_cmp(&b.0));
    if let Some((amplitude, id)) = loudest {
        println!("loudest window: {id} at {amplitude:.1} µm");
    }
}
