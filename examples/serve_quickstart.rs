//! Serving-layer quickstart: start the TCP server over a local PASS,
//! then drive it with the blocking client — publish batches, page a
//! query, stream a subscription, read the counters, drain gracefully.
//!
//! ```sh
//! cargo run --example serve_quickstart
//! ```

use pass::core::Pass;
use pass::distrib::wire::WireMsg;
use pass::model::{ProvenanceBuilder, Reading, SensorId, SiteId, Timestamp, TupleSet};
use pass::server::{serve, Client, PublishOutcome, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// One minute of readings from sensor 7, stamped as batch `seq`.
fn batch(seq: u64) -> Vec<TupleSet> {
    let base = seq * 60_000;
    let readings: Vec<Reading> = (0..6)
        .map(|i| {
            Reading::new(SensorId(7), Timestamp(base + i * 10_000))
                .with("temp_c", 19.0 + seq as f64 + i as f64 * 0.1)
        })
        .collect();
    let record = ProvenanceBuilder::new(SiteId(1), Timestamp(base))
        .attr("domain", "quickstart")
        .attr("seq", seq as i64)
        .build(TupleSet::content_digest_of(&readings));
    vec![TupleSet::new_unchecked(record, readings)]
}

fn main() {
    // Any PASS works behind the server; `PassConfig::disk(...)` gives
    // the durable engine. Defaults: 256 connections, 32 MiB in-flight.
    let pass = Arc::new(Pass::open_memory(SiteId(1)));
    let server = serve("127.0.0.1:0", Arc::clone(&pass), ServerConfig::default()).expect("bind");
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr()).expect("connect");

    // Subscribe before publishing so the commits arrive as live pushes.
    let sub = client.subscribe(r#"SUBSCRIBE FIND WHERE domain = "quickstart""#).expect("subscribe");

    // Publish five batches. `Overloaded` is the admission gate's
    // explicit shed — retryable, never a hang.
    for seq in 0..5u64 {
        match client.publish(batch(seq)).expect("publish") {
            PublishOutcome::Committed(ids) => println!("committed batch {seq} -> {}", ids[0]),
            PublishOutcome::Overloaded => println!("batch {seq} shed; retry later"),
        }
    }

    // Queries are keyset-paged; `query_all` walks the pages.
    let ids = client.query_all(r#"FIND WHERE domain = "quickstart""#, 2).expect("query");
    println!("query pages (size 2) -> {} tuple set(s)", ids.len());

    // Drain the subscription stream: catch-up `Notify` frames first,
    // then the one-shot `SubCaughtUp` marker, then live pushes.
    let mut notified = 0;
    while notified < 5 {
        match client.next_push(Duration::from_secs(2)).expect("push") {
            Some(WireMsg::Notify { op, ids }) if op == sub => {
                notified += ids.len();
                println!("push: {} match(es) ({notified}/5)", ids.len());
            }
            Some(WireMsg::SubCaughtUp { version, .. }) => {
                println!("push: caught up at version {version}");
            }
            other => println!("push: {other:?}"),
        }
    }

    // The same counters the in-process `ServerHandle::stats()` sees,
    // fetched over the wire.
    let stats = client.stats().expect("stats");
    println!(
        "server counters: {} publish(es) ok, {} records, {} query page(s), {} rejected",
        stats.publishes_ok, stats.records_ingested, stats.queries, stats.publishes_rejected
    );

    drop(client);
    // Graceful drain: stop accepting, finish in-flight work, close
    // subscriptions with a terminal frame, flush WALs.
    server.shutdown().expect("drain");
    println!("drained cleanly");
}
