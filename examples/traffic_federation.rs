//! The §I cross-domain scenario: traffic × weather across cities.
//!
//! "The traffic and weather communities might not agree beforehand on
//! how to store and represent their data sets, but they may later want
//! to query across them. This argues for the ability to federate data
//! and processing." (§III-D)
//!
//! Two metro regions each run a traffic network and a weather network as
//! autonomous sites of a federation. A historical analyst then asks a
//! cross-domain question — "what was collected in metro-0 during this
//! window, in either domain?" — without either community having shipped
//! its data anywhere.
//!
//! ```sh
//! cargo run --example traffic_federation
//! ```

use pass::distrib::{Architecture, Federated};
use pass::model::{ProvenanceBuilder, SiteId, Timestamp, TupleSet};
use pass::net::{Topology, TrafficClass};
use pass::query::parse;
use pass::sensor::traffic::{self, TrafficConfig};
use pass::sensor::weather::{self, WeatherConfig};

fn main() {
    // Four autonomous sites: {metro-0, metro-1} × {traffic, weather}.
    // 2 ms within a metro, 45 ms between metros.
    let topology = Topology::clustered(2, 2, 2.0, 45.0);
    let mut federation = Federated::new(topology, 7);

    let mut published = 0usize;
    for metro in 0..2usize {
        let region = format!("metro-{metro}");
        let traffic_site = metro * 2;
        let weather_site = metro * 2 + 1;

        for spec in traffic::generate(
            &TrafficConfig {
                region: region.clone(),
                sensors: 3,
                sensor_base: metro as u64 * 1_000,
                seed: 100 + metro as u64,
                ..TrafficConfig::default()
            },
            Timestamp::ZERO,
            4,
        ) {
            let record = ProvenanceBuilder::new(SiteId(traffic_site as u32), spec.at)
                .attrs(&spec.attrs)
                .build(TupleSet::content_digest_of(&spec.readings));
            federation.publish(traffic_site, &record);
            published += 1;
        }
        for spec in weather::generate(
            &WeatherConfig {
                region: region.clone(),
                stations: 2,
                sensor_base: 20_000 + metro as u64 * 1_000,
                seed: 200 + metro as u64,
                ..WeatherConfig::default()
            },
            Timestamp::ZERO,
            3,
        ) {
            let record = ProvenanceBuilder::new(SiteId(weather_site as u32), spec.at)
                .attrs(&spec.attrs)
                .build(TupleSet::content_digest_of(&spec.readings));
            federation.publish(weather_site, &record);
            published += 1;
        }
    }
    federation.run_quiet();
    let publish_outcomes = federation.outcomes();
    println!(
        "published {published} tuple sets across 4 autonomous sites \
         ({} update messages on the wire — federation publishes locally)",
        federation.net().class(TrafficClass::Update).messages
    );
    assert!(publish_outcomes.iter().all(|o| o.ok));
    federation.reset_net();

    // -- Cross-domain federation query -------------------------------------
    let query = parse(r#"FIND WHERE region = "metro-0" AND time OVERLAPS [0, 600000]"#)
        .expect("well-formed");
    let issued = federation.now();
    let op = federation.query(0, &query);
    federation.run_quiet();
    let outcome = federation.outcomes().into_iter().find(|o| o.op == op).expect("query completed");
    let net = federation.net();
    println!(
        "\ncross-domain query matched {} tuple sets in {:.1} ms \
         ({} query messages, {:.1} KiB — every member was consulted)",
        outcome.ids.len(),
        outcome.at.micros_since(issued) as f64 / 1_000.0,
        net.class(TrafficClass::Query).messages,
        net.class(TrafficClass::Query).bytes as f64 / 1024.0,
    );

    // Split the matches by domain to show the federation actually joined
    // two communities' archives.
    let domain_query = |domain: &str| {
        parse(&format!(
            r#"FIND WHERE region = "metro-0" AND domain = "{domain}" AND time OVERLAPS [0, 600000]"#
        ))
        .expect("well-formed")
    };
    for domain in ["traffic", "weather"] {
        let op = federation.query(0, &domain_query(domain));
        federation.run_quiet();
        let outcome = federation.outcomes().into_iter().find(|o| o.op == op).unwrap();
        println!("   {domain:8} contributed {} tuple sets", outcome.ids.len());
    }

    println!(
        "\nno raw data left its origin site: \"Boston traffic data belongs in \
         Boston\" — only provenance metadata and result ids crossed the WAN."
    );
}
