//! HIPAA-flavored medical ward: the paper's §V privacy agenda end to end.
//!
//! "Security is essential as well, as much of the data collected in
//! sensor networks (e.g., medical data) is private. Much of this data is
//! valuable even when aggregated to preserve privacy."
//!
//! The scenario: EMTs stream patient vitals into a guarded PASS; each
//! chart is summarized per patient; a clinician reads everything; a city
//! health researcher may only see k-anonymous aggregates of the
//! summaries. Every access — allowed or refused — lands in the audit
//! trail, which is itself exportable as a provenance-carrying tuple set.
//!
//! ```sh
//! cargo run --example hipaa_ward
//! ```

use pass::core::Pass;
use pass::index::{Direction, TraverseOpts};
use pass::model::{keys, Attributes, Reading, SensorId, SiteId, Timestamp, ToolDescriptor};
use pass::policy::{
    Action, GuardedPass, NumericLadder, PolicyEngine, PolicyLabel, Principal, QuasiSpec, Rule,
    Sensitivity,
};
use pass::query::Predicate;

fn main() {
    // -- The regime: deny by default, clinicians cleared for PHI, ---------
    // -- everyone may read public records. ---------------------------------
    let engine = PolicyEngine::deny_by_default()
        .with_rule(Rule::allow("clinician-full").for_role("clinician").on([
            Action::ReadData,
            Action::ReadProvenance,
            Action::ReadLineage,
        ]))
        .with_rule(Rule::allow("public-read").when(Predicate::Cmp(
            pass::policy::label::ATTR_SENSITIVITY.into(),
            pass::query::CmpOp::Le,
            Sensitivity::Public.rank().into(),
        )));
    let ward = GuardedPass::new(Pass::open_memory(SiteId(3)), engine);

    let emt = Principal::new("emt-okafor")
        .with_role("clinician")
        .with_clearance(Sensitivity::Private)
        .with_category("phi");
    let researcher = Principal::new("dr-stats"); // public clearance only
    let phi = PolicyLabel::new(Sensitivity::Private).with_category("phi");

    // -- EMTs capture per-patient charts, then summarize each one ---------
    // chart (6 vitals samples) --summarize--> per-patient summary (1 row)
    let patients = 40u64;
    let mut charts = Vec::new();
    let mut summaries = Vec::new();
    for p in 0..patients {
        let age = 20.0 + ((p * 13) % 60) as f64;
        let zone = (p % 4) as f64;
        let base_hr = 62.0 + ((p * 7) % 25) as f64;
        let samples: Vec<Reading> = (0..6)
            .map(|m| {
                Reading::new(SensorId(100 + p), Timestamp(m * 10_000))
                    .with("heart_rate", base_hr + m as f64 * 0.5)
            })
            .collect();
        let mean_hr =
            samples.iter().filter_map(|r| r.field("heart_rate")?.as_float()).sum::<f64>() / 6.0;
        let chart = ward
            .capture(
                &emt,
                phi.clone(),
                Attributes::new()
                    .with(keys::DOMAIN, "medical")
                    .with(keys::TYPE, "chart")
                    .with(keys::PATIENT, format!("patient-{p:03}"))
                    .with(keys::OPERATOR, "emt-okafor"),
                samples,
                Timestamp(p * 60_000),
            )
            .expect("capture chart");
        let summary = ward
            .derive(
                &emt,
                phi.clone(),
                &[chart],
                &ToolDescriptor::new("summarize", "1.0"),
                Attributes::new()
                    .with(keys::DOMAIN, "medical")
                    .with(keys::TYPE, "patient_summary")
                    .with(keys::PATIENT, format!("patient-{p:03}")),
                vec![Reading::new(SensorId(100 + p), Timestamp(p * 60_000))
                    .with("heart_rate", mean_hr)
                    .with("age", age)
                    .with("zone", zone)],
                Timestamp(p * 60_000 + 1),
            )
            .expect("derive summary");
        charts.push(chart);
        summaries.push(summary);
    }
    println!("captured {patients} PHI charts and derived {patients} patient summaries");

    // -- The clinician reads a chart; the researcher is refused -----------
    let chart = ward.get_data(&emt, charts[0]).expect("clinician read").unwrap();
    println!("clinician reads patient-000 chart: {} samples", chart.len());
    let refusal = ward.get_data(&researcher, charts[0]).unwrap_err();
    println!("researcher on raw PHI            : {refusal}");

    // -- Sanctioned release: k-anonymous ward statistics ------------------
    // One summary row per patient, so k counts *patients*, as it must.
    let spec = QuasiSpec::new(
        vec![
            NumericLadder::new("age", vec![10.0, 20.0]).expect("ladder"),
            NumericLadder::new("zone", vec![2.0]).expect("ladder"),
        ],
        "heart_rate",
    )
    .expect("spec");
    let (stats, anon) = ward
        .aggregate(
            &emt,
            &summaries,
            5,
            &spec,
            0.05,
            PolicyLabel::public(),
            Attributes::new().with(keys::DOMAIN, "medical").with(keys::TYPE, "ward_stats"),
            Timestamp(10_000_000),
        )
        .expect("aggregate");
    println!(
        "released k={} aggregate at generalization level {}: {} groups, {} suppressed, \
         risk {:.4}, hr MAE {:.2}",
        anon.k,
        anon.level,
        anon.groups.len(),
        anon.suppressed,
        anon.risk(),
        anon.mean_abs_error
    );

    // -- The researcher reads the aggregate and its (redacted) lineage ----
    let groups = ward.get_data(&researcher, stats).expect("public read").unwrap();
    println!("researcher reads {} aggregate groups", groups.len());
    let record = ward.get_record(&researcher, stats).expect("public provenance");
    println!(
        "aggregate provenance: {} parents via tool '{}' (k={})",
        record.ancestry.len(),
        record.ancestry[0].tool.label(),
        record.ancestry[0].tool.params.get_int("k").unwrap_or(-1),
    );
    let view = ward
        .lineage(&researcher, stats, Direction::Ancestors, TraverseOpts::unbounded())
        .expect("redacted lineage");
    println!(
        "redacted lineage view: {} visible, {} redacted (charts + summaries stay opaque)",
        view.visible.len(),
        view.redacted_count
    );

    // -- The audit trail is itself sensor data with provenance ------------
    let audit = ward.audit();
    println!(
        "audit: {} decisions, {} denials (first denial: {} tried {} on {})",
        audit.len(),
        audit.denials().len(),
        audit.denials()[0].principal,
        audit.denials()[0].action,
        audit.denials()[0].subject
    );
    let trail = audit.export_readings();
    let archive = Pass::open_memory(SiteId(99));
    let trail_id = archive
        .capture(
            Attributes::new().with(keys::DOMAIN, "audit").with("source.site", 3i64),
            trail,
            Timestamp(20_000_000),
        )
        .expect("archive audit");
    println!("audit trail archived as {trail_id} — the trail has provenance too");
}
