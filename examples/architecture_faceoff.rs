//! Runs the identical provenance workload through all six §IV
//! architecture models and prints the comparison table — the paper's
//! design-space walk as an executable.
//!
//! ```sh
//! cargo run --release --example architecture_faceoff
//! ```

use pass::distrib::runner::{
    build_arch, build_corpus, render_table, run_workload, ArchKind, WorkloadSpec,
};

fn main() {
    let spec = WorkloadSpec::default();
    let corpus = build_corpus(&spec);
    println!(
        "workload: {} sites in {} metros, {} records, {} queries, {} lineage chases\n",
        spec.sites(),
        spec.clusters,
        corpus.records.len(),
        spec.queries,
        spec.lineage_ops
    );

    let mut reports = Vec::new();
    for kind in ArchKind::all_default() {
        let mut arch = build_arch(kind, spec.topology(), spec.seed);
        eprintln!("running {:<16} …", arch.name());
        reports.push(run_workload(arch.as_mut(), &corpus, &spec));
    }

    println!("{}", render_table(&reports));
    println!("notes:");
    println!(" - soft-state recall < 1 reflects digest staleness (§IV-B), not bugs;");
    println!(" - DHT lineage pays one routed lookup per ancestry edge (§IV-C);");
    println!(" - federated publishes cost zero update traffic (autonomy, §IV-B).");
}
