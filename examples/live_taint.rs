//! The §III-B taint scenario, live: `volcano_taint` ported from re-query
//! to subscriptions.
//!
//! The one-shot version archives everything, *then* hunts taint with a
//! fresh closure query — and must re-run it from scratch to notice new
//! descendants. Here the archive keeps growing on a writer thread while
//! the monitoring side holds two standing statements:
//!
//! * `WATCH DESCENDANTS OF <suspect window>` — fires the moment any
//!   product derives, transitively, from the miscalibrated station's
//!   window (catch-up covers products that already existed);
//! * `SUBSCRIBE FIND WHERE eruption_window = true …` — feeds a live
//!   alerting stage that pages the volcanologist on eruption-grade
//!   amplitude as windows arrive.
//!
//! The catch-up/tail handoff is exactly-once, so the delivered taint set
//! equals a final re-query — asserted at the end.
//!
//! ```sh
//! cargo run --example live_taint
//! ```

use pass::core::{Event, Pass};
use pass::model::{keys, Attributes, SiteId, Timestamp, ToolDescriptor};
use pass::sensor::volcano::{generate, VolcanoConfig};
use pass::sensor::{AlertRule, AlertStage};
use std::time::Duration;

fn main() {
    let pass = Pass::open_memory(SiteId(9));

    // Archive the first hour of seismic windows (the "already captured"
    // part of the scenario) and denoise it with v1.0.
    let config = VolcanoConfig {
        volcano: "vesuvius".to_owned(),
        stations: 6,
        eruptions: vec![(20, 6)],
        seed: 19,
        ..VolcanoConfig::default()
    };
    let specs = generate(&config, Timestamp::ZERO, 36);
    let (first_half, second_half) = specs.split_at(specs.len() / 2);
    let mut raw_ids = Vec::new();
    for spec in first_half {
        raw_ids.push(
            pass.capture(spec.attrs.clone(), spec.readings.clone(), spec.at).expect("capture"),
        );
    }
    let mut denoised = Vec::new();
    for (i, &raw) in raw_ids.iter().enumerate() {
        denoised.push(
            pass.derive(
                &[raw],
                &ToolDescriptor::new("denoise", "1.0"),
                Attributes::new().with(keys::DOMAIN, "volcano").with(keys::TYPE, "denoised"),
                vec![],
                Timestamp(20_000_000 + i as u64),
            )
            .expect("derive denoised"),
        );
    }
    println!("archived {} windows, denoised {}", raw_ids.len(), denoised.len());

    // Station 30002 is discovered miscalibrated. Open the live taint
    // watch NOW — mid-scenario, with more data still to come.
    let suspect = pass
        .query_text(r#"FIND WHERE station.id = 30002 AND type = "seismic_window" LIMIT 1"#)
        .expect("suspect query")
        .ids()[0];
    // Queue bound sized to the incoming burst: the writer below lands a
    // hundred-plus commits while we drain; the default 64-commit bound
    // would shed the oldest ones as Event::Lagged (ingest never blocks),
    // which is the wrong trade for an auditor that must see everything.
    let watch =
        pass::query::parse_subscribe(&format!("WATCH DESCENDANTS OF ts:{}", suspect.full_hex()))
            .expect("statement");
    let mut taint_watch = pass.subscribe_with(&watch.query, 4_096).expect("watch");

    // And the eruption alert feed, wired into the sensor pipeline's live
    // alerting stage.
    let feed = pass::query::parse_subscribe(r#"SUBSCRIBE FIND WHERE eruption_window = true"#)
        .expect("statement");
    let mut alert_feed = pass.subscribe_with(&feed.query, 4_096).expect("subscribe");
    let mut alerts = AlertStage::new(vec![AlertRule::at_least(
        "eruption-grade amplitude",
        "peak_amplitude_um",
        50.0,
    )]);

    // Writer thread: the rest of the archive arrives while we monitor —
    // raw windows in group commits, then the analysis pipeline over
    // everything (denoise v1.1 for the new half, then a daily summary).
    crossbeam::thread::scope(|s| {
        let pass = &pass;
        let first_denoised = denoised.clone();
        let writer = s.spawn(move |_| {
            let late_raw = pass
                .capture_batch(
                    second_half
                        .iter()
                        .map(|spec| (spec.attrs.clone(), spec.readings.clone(), spec.at)),
                )
                .expect("late capture batch");
            let mut all_denoised = first_denoised;
            for (i, &raw) in late_raw.iter().enumerate() {
                all_denoised.push(
                    pass.derive(
                        &[raw],
                        &ToolDescriptor::new("denoise", "1.1"),
                        Attributes::new()
                            .with(keys::DOMAIN, "volcano")
                            .with(keys::TYPE, "denoised"),
                        vec![],
                        Timestamp(21_000_000 + i as u64),
                    )
                    .expect("derive denoised v1.1"),
                );
            }
            pass.derive(
                &all_denoised,
                &ToolDescriptor::new("daily-summary", "2.0"),
                Attributes::new().with(keys::DOMAIN, "volcano").with(keys::TYPE, "daily_summary"),
                vec![],
                Timestamp(30_000_000),
            )
            .expect("derive summary");
        });

        // Monitoring side: drain both feeds round-robin (never camp on
        // one stream while the other's queue fills) until the writer has
        // finished AND both streams are drained — checking the join
        // handle, not a quiet-time heuristic, so a descheduled writer
        // can't race the final assertions.
        let mut tainted = std::collections::BTreeSet::new();
        let mut caught_up_taint = 0usize;
        let mut writer_done = false;
        loop {
            let mut progressed = false;
            while let Some(event) = taint_watch.try_next() {
                progressed = true;
                match event {
                    Event::Match(record) => {
                        tainted.insert(record.id);
                    }
                    Event::CaughtUp { .. } => caught_up_taint = tainted.len(),
                    Event::Lagged(n) => panic!("taint watch lagged {n}"),
                }
            }
            while let Some(event) = alert_feed.try_next() {
                progressed = true;
                match event {
                    Event::Match(record) => {
                        for alert in alerts.observe(&record) {
                            println!(
                                "ALERT {}: {} at {} ({:?})",
                                alert.rule, alert.subject, alert.at.0, alert.value
                            );
                        }
                    }
                    Event::CaughtUp { .. } => {}
                    Event::Lagged(n) => panic!("alert feed lagged {n}"),
                }
            }
            if !progressed {
                if writer_done {
                    break; // writer joined and both queues drained dry
                }
                if writer.is_finished() {
                    writer_done = true; // one more drain pass, then stop
                } else {
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        writer.join().expect("writer thread");
        println!(
            "\ntaint closure: {} products already existed at watch time (catch-up), \
             {} detected live as they were derived",
            caught_up_taint,
            tainted.len() - caught_up_taint
        );
        println!(
            "eruption feed: {} windows inspected, {} alerts raised",
            alerts.seen(),
            alerts.raised()
        );

        // Exactly-once handoff: the delivered taint set equals a fresh
        // closure re-query at the end.
        let requery: std::collections::BTreeSet<_> = pass
            .query_text(&format!("FIND DESCENDANTS OF ts:{}", suspect.full_hex()))
            .expect("requery")
            .ids()
            .into_iter()
            .collect();
        assert_eq!(tainted, requery, "live watch diverged from the final re-query");
        println!("verified: live taint set == final re-query ({} products)", requery.len());
        assert!(alerts.raised() > 0, "the eruption episode must page someone");
    })
    .expect("no thread panicked");
}
