//! Group-commit ingest on the durable backend: capture a stream of tuple
//! sets as ONE atomic batch, read from a snapshot while ingest continues,
//! then reopen the store to show the batch survives WAL replay whole.
//!
//! ```sh
//! cargo run --release --example batch_quickstart
//! ```

use pass::core::{Pass, PassConfig};
use pass::model::{Attributes, Reading, SensorId, SiteId, Timestamp};
use pass::storage::tempdir::TempDir;

fn main() {
    let dir = TempDir::new("batch-quickstart");
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).expect("open disk store");

    // 1024 car sightings, committed as ONE WriteBatch: one WAL append,
    // one crash-atomicity domain, one bulk index pass.
    let ids = pass
        .capture_batch((0..1024u64).map(|i| {
            let at = Timestamp(i * 500);
            (
                Attributes::new()
                    .with("domain", "traffic")
                    .with("region", format!("zone-{}", i % 4))
                    .with("type", "car_sighting"),
                vec![Reading::new(SensorId(i % 16), at).with("speed_kmh", 30.0 + (i % 50) as f64)],
                at,
            )
        }))
        .expect("group commit");
    let stats = pass.stats();
    println!("captured {} tuple sets in {} group commit(s)", ids.len(), stats.batches);

    // Snapshot isolation: this view answers from its commit point even
    // while later ingest lands behind its back.
    let snap = pass.snapshot();
    pass.capture(
        Attributes::new().with("domain", "traffic").with("region", "zone-0"),
        vec![Reading::new(SensorId(99), Timestamp(999_000)).with("speed_kmh", 88.0)],
        Timestamp(999_000),
    )
    .expect("late capture");
    let q = r#"FIND WHERE region = "zone-0""#;
    let live = pass.query_text(q).expect("live query").ids().len();
    let frozen = snap.query_text(q).expect("snapshot query").ids().len();
    println!("zone-0 sightings: live={live}, snapshot(before late capture)={frozen}");

    // Reopen: the whole batch replays from the WAL or not at all.
    drop(pass);
    let reopened = Pass::open(PassConfig::disk(SiteId(1), dir.path())).expect("reopen");
    let visible = reopened.query_text(r#"FIND WHERE domain = "traffic""#).expect("query").ids();
    println!("after reopen: {} of {} tuple sets visible", visible.len(), ids.len() + 1);
}
