//! Quickstart: capture, derive, annotate, query, and walk lineage on a
//! local PASS.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pass::core::Pass;
use pass::index::{Direction, TraverseOpts};
use pass::model::{
    keys, Annotation, Attributes, Reading, SensorId, SiteId, Timestamp, ToolDescriptor,
};

fn main() {
    // A volatile store for site 1. `PassConfig::disk(...)` gives the
    // durable engine instead.
    let pass = Pass::open_memory(SiteId(1));

    // -- Capture a raw tuple set: one minute of car sightings ------------
    let readings: Vec<Reading> = (0..10)
        .map(|i| {
            Reading::new(SensorId(12), Timestamp(i * 6_000))
                .with("speed_kmh", 30.0 + i as f64)
                .with("lane", (i % 3 + 1) as i64)
        })
        .collect();
    let attrs = Attributes::new()
        .with(keys::DOMAIN, "traffic")
        .with(keys::REGION, "london")
        .with(keys::TYPE, "car_sighting")
        .with(keys::TIME_START, Timestamp(0))
        .with(keys::TIME_END, Timestamp(59_999));
    let raw = pass.capture(attrs, readings, Timestamp(60_000)).expect("capture");
    println!("captured  {raw}  (provenance IS the name — a digest of it)");

    // -- Derive: filter out slow vehicles ---------------------------------
    let raw_data = pass.get_data(raw).expect("store ok").expect("data present");
    let fast: Vec<Reading> = raw_data
        .into_iter()
        .filter(|r| r.field("speed_kmh").and_then(|v| v.as_float()).unwrap_or(0.0) >= 35.0)
        .collect();
    let filtered = pass
        .derive(
            &[raw],
            &ToolDescriptor::new("speed-filter", "1.0").with_param("min_kmh", 35.0),
            Attributes::new()
                .with(keys::DOMAIN, "traffic")
                .with(keys::REGION, "london")
                .with(keys::TYPE, "fast_vehicles"),
            fast,
            Timestamp(61_000),
        )
        .expect("derive");
    println!("derived   {filtered}  via speed-filter v1.0");

    // -- Annotate: operational notes are searchable -----------------------
    pass.annotate(
        raw,
        Annotation::new(Timestamp(90_000), "ops", "sensor 12 replaced with mk2 model"),
    )
    .expect("annotate");

    // -- Query by provenance ----------------------------------------------
    for text in [
        r#"FIND WHERE domain = "traffic" AND region = "london""#,
        r#"FIND WHERE tool.name = "speed-filter""#,
        r#"FIND WHERE ANNOTATION CONTAINS "replaced mk2""#,
        "FIND WHERE time OVERLAPS [30000, 40000]",
    ] {
        let result = pass.query_text(text).expect("query");
        println!(
            "\n  {text}\n    -> {} match(es), plan: {}",
            result.records.len(),
            result.stats.plan
        );
        for record in &result.records {
            println!("       {}  {}", record.id, record.attributes);
        }
    }

    // -- Lineage ------------------------------------------------------------
    let ancestors =
        pass.lineage(filtered, Direction::Ancestors, TraverseOpts::unbounded()).expect("lineage");
    println!("\nancestors of {filtered}:");
    for a in &ancestors {
        println!("   {}  ({} annotations)", a.id, a.annotations.len());
    }

    // -- PASS property 4: provenance survives data removal -------------------
    pass.remove_data(raw).expect("remove");
    let still_there =
        pass.lineage(filtered, Direction::Ancestors, TraverseOpts::unbounded()).expect("lineage");
    println!(
        "\nafter deleting the raw readings, lineage still names {} ancestor(s)",
        still_there.len()
    );
    println!("store stats: {:?}", pass.stats());
}
