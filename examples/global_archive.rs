//! Merging local PASS installations into one globally searchable
//! archive — the second goal of the paper's §V research agenda.
//!
//! Three cities run autonomous local stores. Each keeps its raw data
//! home ("Boston traffic data belongs in Boston", §III-D) but exports
//! its archive to a global index. Content-addressed identity makes the
//! merge conflict-free and idempotent; annotations union; a record
//! whose data one site removed still merges as bare provenance (PASS
//! property 4), and is restored from a mirror that kept the readings.
//!
//! ```sh
//! cargo run --example global_archive
//! ```

use pass::core::Pass;
use pass::index::{Direction, TraverseOpts};
use pass::model::{keys, Annotation, Attributes, SiteId, Timestamp, ToolDescriptor, TupleSetId};
use pass::sensor::{
    traffic::{self, TrafficConfig},
    weather::{self, WeatherConfig},
};

fn city_store(site: u32, region: &str) -> (Pass, Vec<TupleSetId>) {
    let pass = Pass::open_memory(SiteId(site));
    let mut ids = Vec::new();
    for spec in traffic::generate(
        &TrafficConfig {
            region: region.to_owned(),
            sensors: 2,
            sensor_base: site as u64 * 1_000,
            seed: site as u64,
            ..TrafficConfig::default()
        },
        Timestamp::ZERO,
        3,
    ) {
        ids.push(pass.capture(spec.attrs, spec.readings, spec.at).expect("capture"));
    }
    for spec in weather::generate(
        &WeatherConfig {
            region: region.to_owned(),
            stations: 1,
            sensor_base: site as u64 * 1_000 + 500,
            seed: site as u64 + 7,
            ..WeatherConfig::default()
        },
        Timestamp::ZERO,
        3,
    ) {
        ids.push(pass.capture(spec.attrs, spec.readings, spec.at).expect("capture"));
    }
    (pass, ids)
}

fn main() {
    // -- Three cities, each with traffic + weather networks ---------------
    let (boston, boston_ids) = city_store(1, "boston");
    let (london, london_ids) = city_store(2, "london");
    let (tokyo, _) = city_store(3, "tokyo");
    println!(
        "local stores: boston={} london={} tokyo={} tuple sets",
        boston.len(),
        london.len(),
        tokyo.len()
    );

    // London derives a congestion report from its own raw data, and
    // annotates a sensor swap — history that must survive the merge.
    let report = london
        .derive(
            &london_ids[..2],
            &ToolDescriptor::new("congestion-model", "0.9"),
            Attributes::new()
                .with(keys::DOMAIN, "traffic")
                .with(keys::REGION, "london")
                .with(keys::TYPE, "congestion_report"),
            vec![],
            Timestamp::from_secs(7_200),
        )
        .expect("derive");
    london
        .annotate(
            london_ids[0],
            Annotation::new(Timestamp::from_secs(3_600), "ops", "camera 2001 replaced"),
        )
        .expect("annotate");

    // A mirror synced Boston's full archive — then Boston removed one raw
    // blob to reclaim space; provenance survives at the origin.
    let mirror = Pass::open_memory(SiteId(50));
    mirror.import_archive(&boston.export_archive().expect("export")).expect("mirror sync");
    boston.remove_data(boston_ids[0]).expect("remove");

    // -- Merge all three into the global archive --------------------------
    let global = Pass::open_memory(SiteId(100));
    for city in [&boston, &london, &tokyo] {
        let archive = city.export_archive().expect("export");
        let stats = global.import_archive(&archive).expect("import");
        println!(
            "merged site {:?}: +{} tuple sets, +{} bare records",
            city.site(),
            stats.tuple_sets_added,
            stats.records_added
        );
    }
    // Idempotence: merging again changes nothing.
    let again = global.import_archive(&london.export_archive().unwrap()).unwrap();
    assert_eq!(again.changed(), 0);
    println!("re-import of london: no-op (content-addressed identity)");

    // -- One globally searchable archive (§V) ------------------------------
    let all_traffic = global.query_text(r#"FIND WHERE domain = "traffic""#).expect("query");
    let boston_weather =
        global.query_text(r#"FIND WHERE domain = "weather" AND region = "boston""#).expect("query");
    println!(
        "global archive: {} records; {} traffic world-wide; {} boston weather",
        global.len(),
        all_traffic.ids().len(),
        boston_weather.ids().len()
    );

    // London's annotation is keyword-searchable from the archive…
    let swapped = global.query_text(r#"FIND WHERE ANNOTATION CONTAINS "replaced""#).expect("query");
    assert_eq!(swapped.ids(), vec![london_ids[0]]);
    println!("annotation survives the merge and is searchable globally");

    // …and so is the derived report's full cross-site lineage.
    let ancestors =
        global.lineage(report, Direction::Ancestors, TraverseOpts::unbounded()).expect("lineage");
    println!("congestion report lineage resolves {} raw parents in the archive", ancestors.len());

    // Boston's removed blob arrived as bare provenance: still named,
    // still queryable, data absent — exactly PASS property 4.
    assert!(global.contains(boston_ids[0]) && !global.has_data(boston_ids[0]));
    println!("boston's removed tuple set is present as provenance-only");

    // The mirror, which kept the readings, restores them into the archive.
    let stats = global.import_archive(&mirror.export_archive().unwrap()).expect("restore");
    assert_eq!(stats.data_restored, 1);
    assert!(global.has_data(boston_ids[0]));
    println!("mirror restored the readings: data_restored = {}", stats.data_restored);
}
