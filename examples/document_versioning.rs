//! Document versioning on PASS: the paper's §III-A workload, executable.
//!
//! "Document versioning systems are provenance management systems." The
//! paper lists the queries CVS answers — *show me the file as it was
//! yesterday; all changes since last week; who removed this error code;
//! get me all files tagged Release 1.1* — and notes that file-oriented
//! systems handle cross-file queries poorly. Here the same history lives
//! in a PASS: every commit is a derived tuple set (readings = lines),
//! every ancestor remains addressable, and the §III-A queries become
//! ordinary provenance queries — including the cross-file ones.
//!
//! ```sh
//! cargo run --example document_versioning
//! ```

use pass::core::Pass;
use pass::index::{Direction, TraverseOpts};
use pass::model::{
    keys, Annotation, Attributes, Reading, SensorId, SiteId, Timestamp, ToolDescriptor, TupleSetId,
};

/// One "commit": the full line list of one file at one instant.
fn commit(
    pass: &Pass,
    parent: Option<TupleSetId>,
    file: &str,
    author: &str,
    at: Timestamp,
    tag: Option<&str>,
    lines: &[&str],
) -> TupleSetId {
    let readings: Vec<Reading> = lines
        .iter()
        .enumerate()
        .map(|(n, text)| {
            Reading::new(SensorId(1), at).with("line", (n + 1) as i64).with("text", *text)
        })
        .collect();
    let mut attrs = Attributes::new()
        .with(keys::DOMAIN, "versioning")
        .with("file", file)
        .with("author", author)
        .with(keys::TIME_START, at)
        .with(keys::TIME_END, at);
    if let Some(tag) = tag {
        attrs.set("tag", tag);
    }
    match parent {
        None => pass.capture(attrs, readings, at).expect("initial commit"),
        Some(p) => {
            let tool = ToolDescriptor::new("edit", "1.0").with_param("author", author);
            pass.derive(&[p], &tool, attrs, readings, at).expect("commit")
        }
    }
}

fn show(label: &str, ids: &[TupleSetId], pass: &Pass) {
    println!("\n{label}");
    for id in ids {
        let r = pass.get_record(*id).expect("record");
        println!(
            "  {} {}  by {:<6} tag={}",
            id,
            r.attributes.get_str("file").unwrap_or("?"),
            r.attributes.get_str("author").unwrap_or("?"),
            r.attributes.get_str("tag").unwrap_or("-"),
        );
    }
}

fn main() {
    let pass = Pass::open_memory(SiteId(1));
    let day = 86_400_000u64; // ms

    // -- A two-file history with branches of authorship -------------------
    // main.c: v1 (alice) -> v2 (bob, removes error code) -> v3 (alice, tagged)
    let main_v1 = commit(
        &pass,
        None,
        "main.c",
        "alice",
        Timestamp(day),
        None,
        &["int main() {", "  return ERR_NOT_IMPL;", "}"],
    );
    let main_v2 = commit(
        &pass,
        Some(main_v1),
        "main.c",
        "bob",
        Timestamp(2 * day),
        None,
        &["int main() {", "  run();", "  return 0;", "}"],
    );
    let main_v3 = commit(
        &pass,
        Some(main_v2),
        "main.c",
        "alice",
        Timestamp(4 * day),
        Some("release-1.1"),
        &["int main() {", "  init();", "  run();", "  return 0;", "}"],
    );
    // util.c: v1 (bob) -> v2 (carol, tagged); v2 copies a helper from main.c
    // v2 — the cross-file relationship CVS cannot express is one more parent.
    let util_v1 = commit(
        &pass,
        Some(main_v2), // copied boilerplate from main.c v2
        "util.c",
        "bob",
        Timestamp(3 * day),
        None,
        &["void run(void) {}"],
    );
    let util_v2 = commit(
        &pass,
        Some(util_v1),
        "util.c",
        "carol",
        Timestamp(4 * day),
        Some("release-1.1"),
        &["void run(void) { do_work(); }"],
    );
    pass.annotate(main_v2, Annotation::new(Timestamp(2 * day), "bob", "removed ERR_NOT_IMPL"))
        .expect("annotate");

    // -- §III-A query 1: "show me the file as it is now / as it was" ------
    let now = pass
        .query_text(r#"FIND WHERE file = "main.c" ORDER BY created DESC LIMIT 1"#)
        .expect("query");
    show("file as it is now (latest main.c):", &now.ids(), &pass);
    let yesterday = pass
        .query_text(&format!(r#"FIND WHERE file = "main.c" AND time OVERLAPS [0, {}]"#, 2 * day))
        .expect("query");
    show("as it was 'yesterday' (≤ day 2):", &yesterday.ids(), &pass);

    // -- §III-A query 2: "all changes to this file since last week" -------
    let since = pass
        .query_text(&format!(
            r#"FIND WHERE file = "main.c" AND time OVERLAPS [{}, {}]"#,
            2 * day,
            10 * day
        ))
        .expect("query");
    show("changes since day 2:", &since.ids(), &pass);

    // -- §III-A query 3: "find the person who removed this error code" ----
    let blame = pass.query_text(r#"FIND WHERE ANNOTATION CONTAINS "ERR_NOT_IMPL""#).expect("query");
    show("annotation mentions ERR_NOT_IMPL (keyword index):", &blame.ids(), &pass);

    // -- §III-A query 4: "get me all files tagged Release 1.1" ------------
    let tagged = pass.query_text(r#"FIND WHERE tag = "release-1.1""#).expect("query");
    show("tagged release-1.1 (cross-file, one query):", &tagged.ids(), &pass);
    assert_eq!(tagged.ids().len(), 2);

    // -- Beyond CVS: the cross-file copy is real ancestry ------------------
    let lineage =
        pass.lineage(util_v2, Direction::Ancestors, TraverseOpts::unbounded()).expect("lineage");
    show("full ancestry of util.c v2 (crosses into main.c):", &ids_of(&lineage), &pass);
    assert!(lineage.iter().any(|r| r.attributes.get_str("file") == Some("main.c")));

    // And forwards: everything derived from main.c v2, in any file.
    let downstream = pass
        .lineage(main_v2, Direction::Descendants, TraverseOpts::unbounded())
        .expect("descendants");
    show("everything downstream of main.c v2:", &ids_of(&downstream), &pass);
    assert_eq!(downstream.len(), 3, "main v3 + util v1 + util v2");

    let _ = (main_v3, util_v1);
    println!("\nAll §III-A queries answered by one provenance store — no per-file silo.");
}

fn ids_of(records: &[pass::model::ProvenanceRecord]) -> Vec<TupleSetId> {
    records.iter().map(|r| r.id).collect()
}
