//! # pass — Provenance-Aware Sensor Data Storage
//!
//! Facade crate re-exporting the PASS workspace under one roof. See the
//! [README](https://github.com/pass-project/pass) for the tour; the
//! interesting entry points are:
//!
//! * [`core::Pass`] — the local provenance-aware store (§V of the paper).
//! * [`query`] — the `FIND … WHERE … ANCESTORS OF …` language.
//! * [`distrib`] — the six §IV distributed architecture models, the E19
//!   replication strategies, and the experiment runner.
//! * [`sensor`] — synthetic workloads for the paper's five sensor domains.
//! * [`policy`] — the §V privacy agenda: sensitivity labels, policy
//!   enforcement with audit, k-anonymous aggregation, redacted lineage.
//! * [`server`] — the TCP serving layer (length-framed CRC-checked wire
//!   protocol, admission control, subscription push) and [`loadgen`],
//!   its open-loop load harness.
//!
//! This repository reproduces *Provenance-Aware Sensor Data Storage*
//! (Ledlie et al., NetDB'05 / ICDE 2005); `DESIGN.md` maps every paper
//! claim to the module and experiment that checks it.

pub use pass_core as core;
pub use pass_dht as dht;
pub use pass_distrib as distrib;
pub use pass_index as index;
pub use pass_loadgen as loadgen;
pub use pass_model as model;
pub use pass_net as net;
pub use pass_policy as policy;
pub use pass_query as query;
pub use pass_sensor as sensor;
pub use pass_server as server;
pub use pass_storage as storage;
