//! Generator output types.
//!
//! Generators are storage-agnostic: they emit [`CaptureSpec`]s that a
//! driver turns into tuple sets via `Pass::capture` (or feeds to a
//! simulated architecture). This keeps the workload substrate reusable
//! across the local store, the distributed models, and the benches.

use pass_model::{Attributes, Reading, Timestamp};

/// One raw tuple set waiting to be captured.
#[derive(Debug, Clone)]
pub struct CaptureSpec {
    /// Provenance attributes (domain, region, type, time window, …).
    pub attrs: Attributes,
    /// The readings.
    pub readings: Vec<Reading>,
    /// Capture time (normally the end of the covered window).
    pub at: Timestamp,
}

impl CaptureSpec {
    /// The conventional region attribute, when present.
    pub fn region(&self) -> Option<&str> {
        self.attrs.get_str(pass_model::keys::REGION)
    }

    /// Approximate encoded size (for wire-cost accounting in the
    /// distributed experiments).
    pub fn approx_bytes(&self) -> u64 {
        use pass_model::codec::Encode;
        (self.attrs.encoded_len() + self.readings.iter().map(|r| r.encoded_len()).sum::<usize>())
            as u64
    }
}
