//! Derivation pipelines: how raw tuple sets become processed ones.
//!
//! §II-B's origin-investigation scenario — "looking up the magnetometer
//! readings that generated some suspect sighting data, or finding tuple
//! sets handled by a particular postprocessing program" — requires data
//! that has actually *been* through postprocessing. These operators
//! compute derived readings from inputs and describe themselves with
//! [`ToolDescriptor`]s; the [`build_lineage`] helper composes them into
//! DAGs of configurable depth and fanout for the closure experiments.

use crate::spec::CaptureSpec;
use pass_model::{
    keys, Attributes, Reading, SensorId, Timestamp, ToolDescriptor, TupleSet, TupleSetId, Value,
};

/// A derived tuple set waiting to be ingested via `Pass::derive`.
#[derive(Debug, Clone)]
pub struct DeriveSpec {
    /// The ids this output was derived from.
    pub parents: Vec<TupleSetId>,
    /// The program that performed the derivation.
    pub tool: ToolDescriptor,
    /// Output attributes.
    pub attrs: Attributes,
    /// Output readings.
    pub readings: Vec<Reading>,
    /// Production time.
    pub at: Timestamp,
}

fn carry_attrs(input: &TupleSet, output_type: &str) -> Attributes {
    let mut attrs = Attributes::new();
    for key in [keys::DOMAIN, keys::REGION, keys::TIME_START, keys::TIME_END] {
        if let Some(v) = input.provenance.attributes.get(key) {
            attrs.set(key, v.clone());
        }
    }
    attrs.set(keys::TYPE, output_type);
    attrs
}

/// Keeps only readings whose `field` is at least `min` (e.g. drop slow
/// vehicles, keep loud seismic events).
pub fn filter_threshold(input: &TupleSet, field: &str, min: f64, at: Timestamp) -> DeriveSpec {
    let readings: Vec<Reading> = input
        .readings
        .iter()
        .filter(|r| r.field(field).and_then(Value::as_float).is_some_and(|v| v >= min))
        .cloned()
        .collect();
    let mut attrs = carry_attrs(input, "filtered");
    attrs.set(keys::READING_COUNT, readings.len() as i64);
    DeriveSpec {
        parents: vec![input.provenance.id],
        tool: ToolDescriptor::new("filter", "1.0")
            .with_param("field", field)
            .with_param("min", min),
        attrs,
        readings,
        at,
    }
}

/// Adds `offset` to every value of `field` (sensor recalibration).
pub fn calibrate(input: &TupleSet, field: &str, offset: f64, at: Timestamp) -> DeriveSpec {
    let readings: Vec<Reading> = input
        .readings
        .iter()
        .map(|r| {
            let mut out = r.clone();
            for (name, value) in &mut out.fields {
                if name == field {
                    if let Some(v) = value.as_float() {
                        *value = Value::Float(v + offset);
                    }
                }
            }
            out
        })
        .collect();
    let mut attrs = carry_attrs(input, "calibrated");
    attrs.set(keys::READING_COUNT, readings.len() as i64);
    DeriveSpec {
        parents: vec![input.provenance.id],
        tool: ToolDescriptor::new("calibrate", "2.3")
            .with_param("field", field)
            .with_param("offset", offset),
        attrs,
        readings,
        at,
    }
}

/// Reduces many inputs to per-input summary readings (mean of `field`) —
/// the "aggregated over time to estimate the effects of changing Zone
/// size" step from §I.
pub fn aggregate(inputs: &[&TupleSet], field: &str, at: Timestamp) -> DeriveSpec {
    let mut readings = Vec::with_capacity(inputs.len());
    for input in inputs {
        let vals: Vec<f64> = input
            .readings
            .iter()
            .filter_map(|r| r.field(field).and_then(Value::as_float))
            .collect();
        let mean = if vals.is_empty() { 0.0 } else { vals.iter().sum::<f64>() / vals.len() as f64 };
        readings.push(
            Reading::new(SensorId(0), input.provenance.created_at)
                .with("source_count", vals.len() as i64)
                .with("mean", mean),
        );
    }
    let mut attrs = match inputs.first() {
        Some(first) => carry_attrs(first, "aggregate"),
        None => Attributes::new().with(keys::TYPE, "aggregate"),
    };
    attrs.set(keys::READING_COUNT, readings.len() as i64);
    attrs.set("aggregate.field", field);
    DeriveSpec {
        parents: inputs.iter().map(|t| t.provenance.id).collect(),
        tool: ToolDescriptor::new("aggregate", "1.4").with_param("field", field),
        attrs,
        readings,
        at,
    }
}

/// Concatenates inputs into one combined tuple set (cross-network merge,
/// §I's "combined geographically with data from other cities").
pub fn merge(inputs: &[&TupleSet], at: Timestamp) -> DeriveSpec {
    let mut readings = Vec::new();
    for input in inputs {
        readings.extend(input.readings.iter().cloned());
    }
    readings.sort_by_key(|r| (r.time, r.sensor));
    let mut attrs = match inputs.first() {
        Some(first) => carry_attrs(first, "merged"),
        None => Attributes::new().with(keys::TYPE, "merged"),
    };
    attrs.set(keys::READING_COUNT, readings.len() as i64);
    attrs.set("merge.inputs", inputs.len() as i64);
    DeriveSpec {
        parents: inputs.iter().map(|t| t.provenance.id).collect(),
        tool: ToolDescriptor::new("merge", "0.9"),
        attrs,
        readings,
        at,
    }
}

/// How `build_lineage` should shape each level.
#[derive(Debug, Clone, Copy)]
pub struct LineageShape {
    /// Levels of derivation below the roots.
    pub depth: usize,
    /// Nodes per level.
    pub width: usize,
    /// Parents per derived node (capped at the previous level's width).
    pub fanin: usize,
}

/// Builds a lineage DAG of the given shape through a caller-supplied
/// derive function (normally `Pass::derive`), returning ids by level
/// (level 0 = the provided roots).
///
/// Node `j` of level `l` draws parents `j, j+1, …, j+fanin-1 (mod width)`
/// of level `l−1`, giving a braided DAG with diamonds — the worst
/// reasonable case for closure algorithms.
pub fn build_lineage<E>(
    roots: &[TupleSetId],
    shape: LineageShape,
    start: Timestamp,
    mut derive: impl FnMut(
        &[TupleSetId],
        &ToolDescriptor,
        Attributes,
        Vec<Reading>,
        Timestamp,
    ) -> Result<TupleSetId, E>,
) -> Result<Vec<Vec<TupleSetId>>, E> {
    let mut levels: Vec<Vec<TupleSetId>> = vec![roots.to_vec()];
    for level in 1..=shape.depth {
        let prev = &levels[level - 1];
        let mut ids = Vec::with_capacity(shape.width);
        for j in 0..shape.width {
            let fanin = shape.fanin.clamp(1, prev.len());
            let parents: Vec<TupleSetId> = (0..fanin).map(|k| prev[(j + k) % prev.len()]).collect();
            let tool = ToolDescriptor::new("stage", format!("{level}"));
            let attrs = Attributes::new()
                .with(keys::DOMAIN, "lineage")
                .with(keys::TYPE, format!("level-{level}"))
                .with("lineage.level", level as i64)
                .with("lineage.index", j as i64);
            let at = start + (level as u64) * 1_000 + j as u64;
            let readings =
                vec![Reading::new(SensorId(0), at).with("level", level as i64).with("j", j as i64)];
            ids.push(derive(&parents, &tool, attrs, readings, at)?);
        }
        levels.push(ids);
    }
    Ok(levels)
}

/// Turns a [`CaptureSpec`] into a standalone tuple set (for pipeline
/// tests that do not want a full store).
pub fn capture_to_tuple_set(spec: &CaptureSpec, site: pass_model::SiteId) -> TupleSet {
    let record = pass_model::ProvenanceBuilder::new(site, spec.at)
        .attrs(&spec.attrs)
        .build(TupleSet::content_digest_of(&spec.readings));
    TupleSet::new(record, spec.readings.clone()).expect("spec digest matches by construction")
}

/// Converts generator output into the `(attrs, readings, at)` triples
/// `Pass::capture_batch` consumes, consuming the specs (no clones on the
/// hot path).
pub fn capture_batch_items(
    specs: impl IntoIterator<Item = CaptureSpec>,
) -> Vec<(Attributes, Vec<Reading>, Timestamp)> {
    specs.into_iter().map(|s| (s.attrs, s.readings, s.at)).collect()
}

/// Drives the generate → batch → ingest pipeline: feeds `specs` to
/// `ingest_batch` (normally `Pass::capture_batch` behind a closure) in
/// group-commit chunks of `batch_size`, returning all ids in spec order.
///
/// This is the throughput-shaped entry point the paper's inline-capture
/// claim depends on: per-set capture pays one commit per reading window,
/// while a batched pipeline amortizes commit, WAL, and index maintenance
/// across `batch_size` windows.
pub fn ingest_in_batches<Id, E>(
    specs: Vec<CaptureSpec>,
    batch_size: usize,
    mut ingest_batch: impl FnMut(Vec<(Attributes, Vec<Reading>, Timestamp)>) -> Result<Vec<Id>, E>,
) -> Result<Vec<Id>, E> {
    let batch_size = batch_size.max(1);
    let mut ids = Vec::with_capacity(specs.len());
    let mut specs = specs.into_iter().peekable();
    while specs.peek().is_some() {
        let chunk: Vec<CaptureSpec> = specs.by_ref().take(batch_size).collect();
        ids.extend(ingest_batch(capture_batch_items(chunk))?);
    }
    Ok(ids)
}

/// [`ingest_in_batches`] for a sharded store: routes every spec through
/// `route` (normally the store's commit-shard hash over the would-be
/// tuple set id) and chunks **per route**, so each sub-batch commits
/// through exactly one shard — one commit lock, one WAL — instead of
/// fanning a mixed batch across shards and paying the cross-shard
/// two-phase protocol on every commit. This is how multi-writer ingest
/// reaches shard parallelism: writers feeding disjoint routes never
/// contend.
///
/// Sub-batches are ingested round-robin across routes, so shards fill
/// evenly over time. Spec order is preserved *within* a route; the
/// returned ids are in ingestion order (grouped by sub-batch), not
/// input order — callers that need input order should use
/// [`ingest_in_batches`].
pub fn ingest_in_batches_routed<Id, E>(
    specs: Vec<CaptureSpec>,
    batch_size: usize,
    routes: usize,
    route: impl Fn(&CaptureSpec) -> usize,
    mut ingest_batch: impl FnMut(Vec<(Attributes, Vec<Reading>, Timestamp)>) -> Result<Vec<Id>, E>,
) -> Result<Vec<Id>, E> {
    let batch_size = batch_size.max(1);
    let routes = routes.max(1);
    let mut lanes: Vec<Vec<CaptureSpec>> = (0..routes).map(|_| Vec::new()).collect();
    let total = specs.len();
    for spec in specs {
        let lane = route(&spec) % routes;
        lanes[lane].push(spec);
    }
    let mut lanes: Vec<_> = lanes.into_iter().map(|l| l.into_iter().peekable()).collect();
    let mut ids = Vec::with_capacity(total);
    loop {
        let mut drained = true;
        for lane in &mut lanes {
            if lane.peek().is_none() {
                continue;
            }
            drained = false;
            let chunk: Vec<CaptureSpec> = lane.by_ref().take(batch_size).collect();
            ids.extend(ingest_batch(capture_batch_items(chunk))?);
        }
        if drained {
            return Ok(ids);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{self, TrafficConfig};
    use pass_model::SiteId;

    fn sample_tuple_set() -> TupleSet {
        let specs = traffic::generate(
            &TrafficConfig { sensors: 1, base_rate: 20.0, ..Default::default() },
            Timestamp::ZERO,
            1,
        );
        capture_to_tuple_set(&specs[0], SiteId(1))
    }

    #[test]
    fn filter_keeps_only_matching_readings() {
        let ts = sample_tuple_set();
        let spec = filter_threshold(&ts, "speed_kmh", 40.0, Timestamp(99));
        assert!(spec.readings.len() < ts.readings.len());
        assert!(spec
            .readings
            .iter()
            .all(|r| r.field("speed_kmh").unwrap().as_float().unwrap() >= 40.0));
        assert_eq!(spec.parents, vec![ts.provenance.id]);
        assert_eq!(spec.tool.name, "filter");
        assert_eq!(spec.attrs.get_str(keys::TYPE), Some("filtered"));
        assert_eq!(spec.attrs.get_str(keys::REGION), Some("london"), "region carried");
    }

    #[test]
    fn calibrate_shifts_field_values() {
        let ts = sample_tuple_set();
        let spec = calibrate(&ts, "speed_kmh", 5.0, Timestamp(99));
        assert_eq!(spec.readings.len(), ts.readings.len());
        for (orig, cal) in ts.readings.iter().zip(&spec.readings) {
            let a = orig.field("speed_kmh").unwrap().as_float().unwrap();
            let b = cal.field("speed_kmh").unwrap().as_float().unwrap();
            assert!((b - a - 5.0).abs() < 1e-9);
            // Other fields untouched.
            assert_eq!(orig.field("lane"), cal.field("lane"));
        }
    }

    #[test]
    fn aggregate_summarizes_each_input() {
        let a = sample_tuple_set();
        let specs = traffic::generate(
            &TrafficConfig { sensors: 1, seed: 77, base_rate: 20.0, ..Default::default() },
            Timestamp::ZERO,
            1,
        );
        let b = capture_to_tuple_set(&specs[0], SiteId(1));
        let spec = aggregate(&[&a, &b], "speed_kmh", Timestamp(99));
        assert_eq!(spec.readings.len(), 2);
        assert_eq!(spec.parents.len(), 2);
        let mean = spec.readings[0].field("mean").unwrap().as_float().unwrap();
        assert!((20.0..60.0).contains(&mean), "mean speed {mean}");
    }

    #[test]
    fn merge_concatenates_in_time_order() {
        let a = sample_tuple_set();
        let specs = traffic::generate(
            &TrafficConfig { sensors: 1, seed: 78, base_rate: 20.0, ..Default::default() },
            Timestamp::ZERO,
            1,
        );
        let b = capture_to_tuple_set(&specs[0], SiteId(1));
        let spec = merge(&[&a, &b], Timestamp(99));
        assert_eq!(spec.readings.len(), a.readings.len() + b.readings.len());
        assert!(spec.readings.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn ingest_in_batches_chunks_and_preserves_order() {
        let specs = traffic::generate(
            &TrafficConfig { sensors: 1, base_rate: 20.0, ..Default::default() },
            Timestamp::ZERO,
            10,
        );
        let total = specs.len();
        let mut batches: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let ids = ingest_in_batches::<usize, ()>(specs, 4, |items| {
            batches.push(items.len());
            Ok(items
                .iter()
                .map(|_| {
                    next += 1;
                    next - 1
                })
                .collect())
        })
        .unwrap();
        assert_eq!(ids, (0..total).collect::<Vec<_>>(), "ids in spec order");
        assert!(batches.iter().all(|&b| b <= 4));
        assert_eq!(batches.iter().sum::<usize>(), total);
        assert_eq!(batches.len(), total.div_ceil(4));
    }

    #[test]
    fn routed_batches_never_mix_routes() {
        let specs = traffic::generate(
            &TrafficConfig { sensors: 3, base_rate: 20.0, ..Default::default() },
            Timestamp::ZERO,
            10,
        );
        let total = specs.len();
        // Route by sensor id parity — any deterministic spec property works.
        let route = |spec: &CaptureSpec| spec.readings.first().map_or(0, |r| r.sensor.0 as usize);
        let expected: Vec<usize> = specs.iter().map(|s| route(s) % 2).collect();
        let mut seen = 0usize;
        let mut batch_routes: Vec<Vec<usize>> = Vec::new();
        let ids = ingest_in_batches_routed::<usize, ()>(specs.clone(), 4, 2, route, |items| {
            // Re-derive each item's route from its sensor to check purity.
            let routes: Vec<usize> = items
                .iter()
                .map(|(_, readings, _)| readings.first().map_or(0, |r| r.sensor.0 as usize) % 2)
                .collect();
            batch_routes.push(routes.clone());
            seen += items.len();
            Ok(routes)
        })
        .unwrap();
        assert_eq!(seen, total, "every spec ingested exactly once");
        for routes in &batch_routes {
            assert!(
                routes.windows(2).all(|w| w[0] == w[1]),
                "a sub-batch spans routes: {routes:?}"
            );
            assert!(routes.len() <= 4);
        }
        // Both routes were exercised (the generator uses 3 sensors).
        let mut per_route = [0usize; 2];
        for r in &ids {
            per_route[*r] += 1;
        }
        assert_eq!(per_route[0] + per_route[1], total);
        assert_eq!(per_route[0], expected.iter().filter(|&&r| r == 0).count());
    }

    #[test]
    fn build_lineage_produces_requested_shape() {
        let roots = vec![TupleSetId(1), TupleSetId(2)];
        let mut counter = 100u128;
        let mut edges: Vec<(TupleSetId, Vec<TupleSetId>)> = Vec::new();
        let levels = build_lineage::<()>(
            &roots,
            LineageShape { depth: 3, width: 4, fanin: 2 },
            Timestamp::ZERO,
            |parents, _tool, _attrs, _readings, _at| {
                counter += 1;
                let id = TupleSetId(counter);
                edges.push((id, parents.to_vec()));
                Ok(id)
            },
        )
        .unwrap();
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[0], roots);
        assert!(levels[1..].iter().all(|l| l.len() == 4));
        // Every derived node has exactly fanin parents from the level above.
        for (_, parents) in &edges {
            assert_eq!(parents.len(), 2);
        }
        assert_eq!(edges.len(), 12);
    }
}
