//! Traffic sensing workload: the paper's opening example.
//!
//! "Traffic data from London's Congestion Zone is useful immediately to
//! ticket non-paying drivers … it could be aggregated over time … or
//! combined geographically with data from other cities" (§I). The
//! generator models a grid of roadside sensors recording car sightings;
//! sighting rates follow a daily double-peak (rush hour) profile.

use crate::gen::{poisson, rng_for};
use crate::spec::CaptureSpec;
use pass_model::{keys, Attributes, GeoPoint, Reading, SensorId, Timestamp};
use rand::Rng;

/// Traffic generator parameters.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// City/zone label (becomes the `region` attribute).
    pub region: String,
    /// Zone center coordinates.
    pub center: GeoPoint,
    /// Number of sensors in the zone.
    pub sensors: usize,
    /// Window length per tuple set.
    pub window_ms: u64,
    /// Mean sightings per sensor per window, off-peak.
    pub base_rate: f64,
    /// Multiplier at rush-hour peaks.
    pub peak_factor: f64,
    /// Sensor id offset (keeps ids distinct across regions).
    pub sensor_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            region: "london".to_owned(),
            center: GeoPoint::new(51.5, -0.12),
            sensors: 16,
            window_ms: 60_000,
            base_rate: 4.0,
            peak_factor: 4.0,
            sensor_base: 0,
            seed: 1,
        }
    }
}

/// Diurnal rate profile: two rush-hour peaks at 08:30 and 17:30.
fn rate_at(config: &TrafficConfig, t: Timestamp) -> f64 {
    let day_ms = 24.0 * 3_600_000.0;
    let phase = (t.as_millis() as f64 % day_ms) / day_ms; // 0..1 over a day
    let peak = |center: f64| {
        let d = (phase - center).abs().min(1.0 - (phase - center).abs());
        (-((d / 0.05).powi(2))).exp()
    };
    let boost = peak(8.5 / 24.0) + peak(17.5 / 24.0);
    config.base_rate * (1.0 + (config.peak_factor - 1.0) * boost)
}

/// Generates `windows` consecutive tuple sets per sensor, starting at
/// `start`. One tuple set = one sensor × one window of car sightings.
pub fn generate(config: &TrafficConfig, start: Timestamp, windows: usize) -> Vec<CaptureSpec> {
    let mut rng = rng_for(config.seed, &format!("traffic-{}", config.region));
    let mut out = Vec::with_capacity(config.sensors * windows);
    for w in 0..windows {
        let w_start = start + (w as u64) * config.window_ms;
        let w_end = w_start + (config.window_ms - 1);
        for s in 0..config.sensors {
            let sensor = SensorId(config.sensor_base + s as u64);
            let position = GeoPoint::new(
                config.center.lat + (s as f64 * 0.003) - 0.02,
                config.center.lon + ((s * 7) % 13) as f64 * 0.002,
            );
            let sightings = poisson(&mut rng, rate_at(config, w_start));
            let mut readings = Vec::with_capacity(sightings as usize);
            for _ in 0..sightings {
                let t = Timestamp(w_start.as_millis() + rng.gen_range(0..config.window_ms));
                readings.push(
                    Reading::new(sensor, t)
                        .with("speed_kmh", 20.0 + rng.gen_range(0.0..40.0))
                        .with("lane", rng.gen_range(1i64..4))
                        .with("vehicle_class", ["car", "van", "truck", "bus"][rng.gen_range(0..4)]),
                );
            }
            readings.sort_by_key(|r| r.time);
            let attrs = Attributes::new()
                .with(keys::DOMAIN, "traffic")
                .with(keys::REGION, config.region.clone())
                .with(keys::TYPE, "car_sighting")
                .with(keys::SENSOR_TYPE, if s % 3 == 0 { "camera" } else { "magnetometer" })
                .with(keys::LOCATION, position)
                .with(keys::TIME_START, w_start)
                .with(keys::TIME_END, w_end)
                .with(keys::READING_COUNT, sightings as i64)
                .with("sensor.id", sensor.0 as i64);
            out.push(CaptureSpec { attrs, readings, at: w_end });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::TimeRange;

    #[test]
    fn generates_one_tuple_set_per_sensor_per_window() {
        let config = TrafficConfig { sensors: 5, ..TrafficConfig::default() };
        let specs = generate(&config, Timestamp::ZERO, 3);
        assert_eq!(specs.len(), 15);
        for spec in &specs {
            assert_eq!(spec.attrs.get_str(keys::DOMAIN), Some("traffic"));
            assert_eq!(spec.region(), Some("london"));
            assert!(spec.attrs.get_time(keys::TIME_START).is_some());
            let declared = spec.attrs.get_int(keys::READING_COUNT).unwrap() as usize;
            assert_eq!(declared, spec.readings.len());
        }
    }

    #[test]
    fn readings_fall_inside_their_window() {
        let config = TrafficConfig::default();
        let specs = generate(&config, Timestamp::from_secs(1_000), 2);
        for spec in specs {
            let range = TimeRange::new(
                spec.attrs.get_time(keys::TIME_START).unwrap(),
                spec.attrs.get_time(keys::TIME_END).unwrap(),
            );
            for r in &spec.readings {
                assert!(range.contains(r.time), "{} outside {range}", r.time);
            }
        }
    }

    #[test]
    fn rush_hour_outpaces_midnight() {
        let config = TrafficConfig { sensors: 30, base_rate: 5.0, ..TrafficConfig::default() };
        // 08:30 vs 03:00.
        let rush = Timestamp((8 * 60 + 30) * 60_000);
        let night = Timestamp(3 * 3_600_000);
        let rush_total: usize = generate(&config, rush, 1).iter().map(|s| s.readings.len()).sum();
        let night_total: usize = generate(&config, night, 1).iter().map(|s| s.readings.len()).sum();
        assert!(rush_total > night_total * 2, "rush {rush_total} vs night {night_total}");
    }

    #[test]
    fn deterministic_per_seed() {
        let config = TrafficConfig::default();
        let a = generate(&config, Timestamp::ZERO, 1);
        let b = generate(&config, Timestamp::ZERO, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.readings, y.readings);
        }
    }
}
