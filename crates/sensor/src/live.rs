//! Live alerting: the subscription-consumer stage of the sensor
//! pipeline.
//!
//! §III-C's emergency-medicine scenario wants detection *while data
//! arrives*, not on re-query: "the EMT is alerted when the patient's
//! vital signs cross a threshold". With the store's live read surface
//! (`Pass::subscribe`), the missing piece is a pipeline stage that turns
//! a stream of delivered provenance records into operator-facing alerts.
//! Like the derivation operators in [`crate::pipeline`], this stage is
//! store-agnostic: it consumes [`ProvenanceRecord`]s however they were
//! delivered (a subscription's `Event::Match` stream, a replayed batch,
//! a test fixture) and never holds a store handle itself.

use pass_model::{ProvenanceRecord, Timestamp, TupleSetId, Value};

/// What a rule looks for in a delivered record's attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertCondition {
    /// Numeric attribute at or above a threshold (`Int` and `Float`
    /// values both qualify).
    AtLeast {
        /// Attribute name.
        attr: String,
        /// Inclusive threshold.
        min: f64,
    },
    /// Attribute equals a value exactly.
    Equals {
        /// Attribute name.
        attr: String,
        /// Expected value.
        value: Value,
    },
}

impl AlertCondition {
    /// The attribute value that triggers this condition, if the record
    /// does.
    fn triggered_by<'r>(&self, record: &'r ProvenanceRecord) -> Option<&'r Value> {
        match self {
            AlertCondition::AtLeast { attr, min } => {
                let value = record.attributes.get(attr)?;
                let numeric = value.as_float().or_else(|| value.as_int().map(|i| i as f64))?;
                (numeric >= *min).then_some(value)
            }
            AlertCondition::Equals { attr, value } => {
                let got = record.attributes.get(attr)?;
                (got == value).then_some(got)
            }
        }
    }
}

/// A named alerting rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Operator-facing rule name (appears on every raised alert).
    pub name: String,
    /// The trigger.
    pub condition: AlertCondition,
}

impl AlertRule {
    /// Rule firing when `attr` is numerically at or above `min`.
    pub fn at_least(name: impl Into<String>, attr: impl Into<String>, min: f64) -> AlertRule {
        AlertRule {
            name: name.into(),
            condition: AlertCondition::AtLeast { attr: attr.into(), min },
        }
    }

    /// Rule firing when `attr` equals `value` exactly.
    pub fn equals(
        name: impl Into<String>,
        attr: impl Into<String>,
        value: impl Into<Value>,
    ) -> AlertRule {
        AlertRule {
            name: name.into(),
            condition: AlertCondition::Equals { attr: attr.into(), value: value.into() },
        }
    }
}

/// One raised alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the rule that fired.
    pub rule: String,
    /// The tuple set that triggered it.
    pub subject: TupleSetId,
    /// The subject's creation time (detection is as fresh as delivery).
    pub at: Timestamp,
    /// The attribute value that crossed the rule.
    pub value: Value,
}

/// The live alerting stage: feed it every delivered record, read back
/// the alerts it raises.
///
/// Stateless per record (a record firing N rules raises N alerts), with
/// running counters so a pipeline can report seen/alerted totals.
#[derive(Debug, Clone, Default)]
pub struct AlertStage {
    rules: Vec<AlertRule>,
    seen: u64,
    raised: u64,
}

impl AlertStage {
    /// A stage evaluating `rules` in order.
    pub fn new(rules: Vec<AlertRule>) -> AlertStage {
        AlertStage { rules, seen: 0, raised: 0 }
    }

    /// Evaluates one delivered record, returning the alerts it raised
    /// (in rule order; empty for a quiet record).
    pub fn observe(&mut self, record: &ProvenanceRecord) -> Vec<Alert> {
        self.seen += 1;
        let alerts: Vec<Alert> = self
            .rules
            .iter()
            .filter_map(|rule| {
                rule.condition.triggered_by(record).map(|value| Alert {
                    rule: rule.name.clone(),
                    subject: record.id,
                    at: record.created_at,
                    value: value.clone(),
                })
            })
            .collect();
        self.raised += alerts.len() as u64;
        alerts
    }

    /// Records observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Alerts raised so far.
    pub fn raised(&self) -> u64 {
        self.raised
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Digest128, ProvenanceBuilder, SiteId};

    fn window(amplitude: f64, erupting: bool) -> ProvenanceRecord {
        ProvenanceBuilder::new(SiteId(1), Timestamp(100))
            .attr("domain", "volcano")
            .attr("peak_amplitude_um", amplitude)
            .attr("eruption_window", erupting)
            .build(Digest128::of(&amplitude.to_bits().to_le_bytes()))
    }

    fn stage() -> AlertStage {
        AlertStage::new(vec![
            AlertRule::at_least("loud-window", "peak_amplitude_um", 50.0),
            AlertRule::equals("eruption", "eruption_window", true),
        ])
    }

    #[test]
    fn rules_fire_on_matching_attributes() {
        let mut stage = stage();
        let quiet = stage.observe(&window(10.0, false));
        assert!(quiet.is_empty());
        let loud = stage.observe(&window(80.0, true));
        assert_eq!(loud.len(), 2, "both rules fire on the loud eruption window");
        assert_eq!(loud[0].rule, "loud-window");
        assert_eq!(loud[0].value, Value::Float(80.0));
        assert_eq!(loud[1].rule, "eruption");
        assert_eq!((stage.seen(), stage.raised()), (2, 2));
    }

    #[test]
    fn at_least_accepts_int_valued_attributes() {
        let mut stage = AlertStage::new(vec![AlertRule::at_least("busy", "count", 5.0)]);
        let record = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attr("count", 7i64)
            .build(Digest128::of(b"n"));
        assert_eq!(stage.observe(&record).len(), 1);
        let record = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attr("count", 3i64)
            .build(Digest128::of(b"m"));
        assert!(stage.observe(&record).is_empty());
    }

    #[test]
    fn missing_or_non_numeric_attributes_never_fire() {
        let mut stage = AlertStage::new(vec![AlertRule::at_least("x", "missing", 0.0)]);
        let record = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attr("other", "string")
            .build(Digest128::of(b"s"));
        assert!(stage.observe(&record).is_empty());
        let mut stage = AlertStage::new(vec![AlertRule::at_least("x", "other", 0.0)]);
        assert!(stage.observe(&record).is_empty(), "string attr is not numeric");
    }
}
