//! Structural health monitoring workload (§I cites Kottapalli et al.'s
//! two-tiered wireless architecture for buildings and bridges).
//!
//! Accelerometers on a structure report vibration RMS per window;
//! occasional excitation events (traffic, wind gusts, small quakes)
//! raise the response across correlated sensors.

use crate::gen::{gaussian, rng_for};
use crate::spec::CaptureSpec;
use pass_model::{keys, Attributes, GeoPoint, Reading, SensorId, Timestamp};
use rand::Rng;

/// Structural generator parameters.
#[derive(Debug, Clone)]
pub struct StructuralConfig {
    /// Structure label (the `region` attribute).
    pub structure: String,
    /// Number of accelerometers.
    pub sensors: usize,
    /// Window per tuple set.
    pub window_ms: u64,
    /// Samples per window.
    pub samples_per_window: usize,
    /// Probability an excitation event hits a given window.
    pub event_rate: f64,
    /// Sensor id offset.
    pub sensor_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StructuralConfig {
    fn default() -> Self {
        StructuralConfig {
            structure: "bridge-12".to_owned(),
            sensors: 10,
            window_ms: 120_000,
            samples_per_window: 24,
            event_rate: 0.12,
            sensor_base: 40_000,
            seed: 5,
        }
    }
}

/// Generates `windows` tuple sets per sensor.
pub fn generate(config: &StructuralConfig, start: Timestamp, windows: usize) -> Vec<CaptureSpec> {
    let mut rng = rng_for(config.seed, &format!("structural-{}", config.structure));
    let mut out = Vec::with_capacity(config.sensors * windows);
    for w in 0..windows {
        // Excitation is structure-wide: all sensors see it together.
        let excited = rng.gen_bool(config.event_rate);
        let gain = if excited { rng.gen_range(4.0..10.0) } else { 1.0 };
        let w_start = start + (w as u64) * config.window_ms;
        let w_end = w_start + (config.window_ms - 1);
        for s in 0..config.sensors {
            let sensor = SensorId(config.sensor_base + s as u64);
            // Sensors higher on the structure respond more.
            let height_factor = 1.0 + s as f64 / config.sensors as f64;
            let step = config.window_ms / config.samples_per_window as u64;
            let mut readings = Vec::with_capacity(config.samples_per_window);
            let mut rms_acc = 0.0f64;
            for i in 0..config.samples_per_window {
                let t = Timestamp(w_start.as_millis() + i as u64 * step);
                let rms = (0.02 * gain * height_factor * (1.0 + 0.3 * gaussian(&mut rng))).abs();
                rms_acc += rms * rms;
                readings.push(Reading::new(sensor, t).with("rms_g", rms));
            }
            let window_rms = (rms_acc / config.samples_per_window as f64).sqrt();
            let attrs = Attributes::new()
                .with(keys::DOMAIN, "structural")
                .with(keys::REGION, config.structure.clone())
                .with(keys::TYPE, "vibration_window")
                .with(keys::SENSOR_TYPE, "accelerometer")
                .with(keys::LOCATION, GeoPoint::new(37.8, -122.47))
                .with(keys::TIME_START, w_start)
                .with(keys::TIME_END, w_end)
                .with(keys::READING_COUNT, readings.len() as i64)
                .with("sensor.id", sensor.0 as i64)
                .with("window_rms_g", window_rms)
                .with("excited", excited);
            out.push(CaptureSpec { attrs, readings, at: w_end });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excited_windows_swing_harder() {
        let config = StructuralConfig { event_rate: 0.5, ..Default::default() };
        let specs = generate(&config, Timestamp::ZERO, 40);
        let mut excited = Vec::new();
        let mut calm = Vec::new();
        for s in &specs {
            let rms = s.attrs.get("window_rms_g").unwrap().as_float().unwrap();
            if s.attrs.get("excited") == Some(&true.into()) {
                excited.push(rms);
            } else {
                calm.push(rms);
            }
        }
        assert!(!excited.is_empty() && !calm.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&excited) > mean(&calm) * 2.0);
    }

    #[test]
    fn excitation_is_structure_wide() {
        let config = StructuralConfig { sensors: 4, event_rate: 0.3, ..Default::default() };
        let specs = generate(&config, Timestamp::ZERO, 10);
        for w in 0..10 {
            let flags: Vec<_> =
                (0..4).map(|s| specs[w * 4 + s].attrs.get("excited").cloned()).collect();
            assert!(flags.windows(2).all(|p| p[0] == p[1]), "window {w}: {flags:?}");
        }
    }

    #[test]
    fn higher_sensors_respond_more() {
        let config = StructuralConfig { sensors: 10, event_rate: 0.0, ..Default::default() };
        let specs = generate(&config, Timestamp::ZERO, 30);
        let mean_rms = |sensor: usize| -> f64 {
            let vals: Vec<f64> = specs
                .iter()
                .filter(|s| s.attrs.get_int("sensor.id") == Some((40_000 + sensor) as i64))
                .map(|s| s.attrs.get("window_rms_g").unwrap().as_float().unwrap())
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(mean_rms(9) > mean_rms(0) * 1.3);
    }
}
