//! Deterministic randomness helpers shared by the domain generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives an independent, reproducible RNG from a seed and a label so
/// each generator stream is stable regardless of call order.
pub fn rng_for(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &b in label.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Samples a Poisson count via inversion (suitable for the small means
/// the generators use; falls back to a normal approximation above 30).
pub fn poisson(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation with continuity correction.
        let sample = mean + mean.sqrt() * gaussian(rng);
        return sample.max(0.0).round() as u64;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen_range(0.0..1.0);
    let mut count = 0u64;
    while product > limit {
        product *= rng.gen_range(0.0f64..1.0);
        count += 1;
    }
    count
}

/// Standard normal via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// First-order autoregressive process: `x' = mean + phi·(x − mean) + σ·ε`.
#[derive(Debug, Clone)]
pub struct Ar1 {
    /// Long-run mean.
    pub mean: f64,
    /// Persistence coefficient in `[0, 1)`.
    pub phi: f64,
    /// Innovation standard deviation.
    pub sigma: f64,
    state: f64,
}

impl Ar1 {
    /// Starts the process at its mean.
    pub fn new(mean: f64, phi: f64, sigma: f64) -> Self {
        Ar1 { mean, phi, sigma, state: mean }
    }

    /// Advances one step.
    pub fn step(&mut self, rng: &mut StdRng) -> f64 {
        self.state = self.mean + self.phi * (self.state - self.mean) + self.sigma * gaussian(rng);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_for_is_stable_and_label_sensitive() {
        let a: u64 = rng_for(1, "traffic").gen();
        let b: u64 = rng_for(1, "traffic").gen();
        let c: u64 = rng_for(1, "weather").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let mut rng = rng_for(7, "poisson");
        for mean in [0.5, 3.0, 12.0, 80.0] {
            let n = 3_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let sample_mean = total as f64 / n as f64;
            assert!(
                (sample_mean - mean).abs() < mean.max(1.0) * 0.15,
                "mean {mean}: sampled {sample_mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn ar1_stays_near_mean_and_varies() {
        let mut rng = rng_for(9, "ar1");
        let mut p = Ar1::new(20.0, 0.9, 0.5);
        let samples: Vec<f64> = (0..2_000).map(|_| p.step(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
        let spread = samples.iter().map(|x| (x - mean).abs()).fold(0.0, f64::max);
        assert!(spread > 0.5, "process must actually vary");
    }
}
