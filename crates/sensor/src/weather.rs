//! Weather station workload.
//!
//! §I's motivating cross-domain query merges "historical traffic data
//! with historical weather data"; §III-D notes hand-collected weather
//! data "goes back over a hundred years". Stations report AR(1)
//! temperature, wind, and rain accumulations per window.

use crate::gen::{rng_for, Ar1};
use crate::spec::CaptureSpec;
use pass_model::{keys, Attributes, GeoPoint, Reading, SensorId, Timestamp};
use rand::Rng;

/// Weather generator parameters.
#[derive(Debug, Clone)]
pub struct WeatherConfig {
    /// Region label shared with the traffic zone it co-locates with.
    pub region: String,
    /// Station grid origin.
    pub origin: GeoPoint,
    /// Number of stations.
    pub stations: usize,
    /// Window per tuple set.
    pub window_ms: u64,
    /// Readings per window per station.
    pub samples_per_window: usize,
    /// Station id offset.
    pub sensor_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        WeatherConfig {
            region: "london".to_owned(),
            origin: GeoPoint::new(51.4, -0.2),
            stations: 4,
            window_ms: 600_000, // 10 minutes
            samples_per_window: 10,
            sensor_base: 10_000,
            seed: 2,
        }
    }
}

/// Generates `windows` tuple sets per station.
pub fn generate(config: &WeatherConfig, start: Timestamp, windows: usize) -> Vec<CaptureSpec> {
    let mut out = Vec::with_capacity(config.stations * windows);
    for s in 0..config.stations {
        let mut rng = rng_for(config.seed, &format!("weather-{}-{s}", config.region));
        let sensor = SensorId(config.sensor_base + s as u64);
        let position =
            GeoPoint::new(config.origin.lat + s as f64 * 0.05, config.origin.lon + s as f64 * 0.03);
        let mut temp = Ar1::new(12.0, 0.95, 0.4);
        let mut wind = Ar1::new(15.0, 0.85, 2.0);
        for w in 0..windows {
            let w_start = start + (w as u64) * config.window_ms;
            let w_end = w_start + (config.window_ms - 1);
            let step = config.window_ms / config.samples_per_window as u64;
            let mut readings = Vec::with_capacity(config.samples_per_window);
            for i in 0..config.samples_per_window {
                let t = Timestamp(w_start.as_millis() + i as u64 * step);
                let raining = rng.gen_bool(0.15);
                readings.push(
                    Reading::new(sensor, t)
                        .with("temp_c", temp.step(&mut rng))
                        .with("wind_kmh", wind.step(&mut rng).max(0.0))
                        .with("rain_mm", if raining { rng.gen_range(0.1..2.0) } else { 0.0 }),
                );
            }
            let attrs = Attributes::new()
                .with(keys::DOMAIN, "weather")
                .with(keys::REGION, config.region.clone())
                .with(keys::TYPE, "station_report")
                .with(keys::SENSOR_TYPE, "weather_station")
                .with(keys::LOCATION, position)
                .with(keys::TIME_START, w_start)
                .with(keys::TIME_END, w_end)
                .with(keys::READING_COUNT, readings.len() as i64)
                .with("station.id", sensor.0 as i64);
            out.push(CaptureSpec { attrs, readings, at: w_end });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_attributes() {
        let config = WeatherConfig::default();
        let specs = generate(&config, Timestamp::ZERO, 6);
        assert_eq!(specs.len(), 24);
        for s in &specs {
            assert_eq!(s.attrs.get_str(keys::DOMAIN), Some("weather"));
            assert_eq!(s.readings.len(), 10);
            assert!(s.readings.iter().all(|r| r.field("temp_c").is_some()));
        }
    }

    #[test]
    fn temperature_is_smooth_not_white_noise() {
        let config = WeatherConfig { stations: 1, ..WeatherConfig::default() };
        let specs = generate(&config, Timestamp::ZERO, 10);
        let temps: Vec<f64> = specs
            .iter()
            .flat_map(|s| s.readings.iter())
            .map(|r| r.field("temp_c").unwrap().as_float().unwrap())
            .collect();
        // Adjacent-step deltas must be small relative to overall spread.
        let max_delta = temps.windows(2).map(|w| (w[1] - w[0]).abs()).fold(0.0, f64::max);
        assert!(max_delta < 3.0, "AR(1) should move smoothly, max step {max_delta}");
    }

    #[test]
    fn shares_region_vocabulary_with_traffic() {
        // The federation experiment joins on `region`; both domains must
        // emit the same attribute name and value space.
        let w = generate(&WeatherConfig::default(), Timestamp::ZERO, 1);
        let t =
            crate::traffic::generate(&crate::traffic::TrafficConfig::default(), Timestamp::ZERO, 1);
        assert_eq!(w[0].region(), t[0].region());
    }
}
