//! Query workloads: the three §III families rendered as query text.
//!
//! Each generator emits labeled query strings parameterized over a
//! populated store's vocabulary (regions, patients, tools, ids), so the
//! E4 experiment can measure per-class latency on realistic mixes:
//!
//! * **Versioning** (§III-A): point-in-time, diff-window, blame, tags.
//! * **Science** (§III-B): raw-data closure, reproduce, taint, citation.
//! * **Sensor/EMT** (§III-C): per-patient timelines, per-operator
//!   profiles, anomaly hunts.

use pass_model::{Timestamp, TupleSetId};
use rand::rngs::StdRng;
use rand::Rng;

/// A labeled query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Workload family.
    pub class: WorkloadClass,
    /// Which §III bullet the query instantiates.
    pub label: &'static str,
    /// Query text in the PASS language.
    pub text: String,
}

/// The §III workload families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Document-versioning-style queries (§III-A).
    Versioning,
    /// Scientific-repository queries (§III-B).
    Science,
    /// Sensor/EMT operational queries (§III-C).
    Sensor,
}

impl WorkloadClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Versioning => "versioning",
            WorkloadClass::Science => "science",
            WorkloadClass::Sensor => "sensor",
        }
    }
}

/// Vocabulary extracted from a populated store, used to parameterize
/// queries with values that actually exist.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    /// Known tuple-set ids (lineage roots).
    pub ids: Vec<TupleSetId>,
    /// Known `region` values.
    pub regions: Vec<String>,
    /// Known `patient` values.
    pub patients: Vec<String>,
    /// Known `operator` values.
    pub operators: Vec<String>,
    /// Known tool names.
    pub tools: Vec<String>,
    /// Time span covered by the corpus.
    pub time_span: (Timestamp, Timestamp),
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

fn sub_window(rng: &mut StdRng, span: (Timestamp, Timestamp)) -> (u64, u64) {
    let (lo, hi) = (span.0.as_millis(), span.1.as_millis().max(span.0.as_millis() + 1));
    let len = ((hi - lo) / 4).max(1);
    let start = rng.gen_range(lo..hi.saturating_sub(len).max(lo + 1));
    (start, start + len)
}

/// §III-A: versioning-style queries.
pub fn versioning(vocab: &Vocabulary, rng: &mut StdRng, n: usize) -> Vec<QuerySpec> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let spec = match i % 4 {
            // "Show me the file as it was yesterday" — state at a time.
            0 => {
                let (a, _) = sub_window(rng, vocab.time_span);
                QuerySpec {
                    class: WorkloadClass::Versioning,
                    label: "point-in-time",
                    text: format!(
                        "FIND WHERE time OVERLAPS [{a}, {a}] ORDER BY created DESC LIMIT 1"
                    ),
                }
            }
            // "Show me all changes since last week" — window scan.
            1 => {
                let (a, b) = sub_window(rng, vocab.time_span);
                QuerySpec {
                    class: WorkloadClass::Versioning,
                    label: "changes-since",
                    text: format!(
                        "FIND WHERE created_at >= @{a} AND created_at <= @{b} ORDER BY created ASC"
                    ),
                }
            }
            // "Find the person who removed this error code" — blame by tool.
            2 => match pick(rng, &vocab.tools) {
                Some(tool) => QuerySpec {
                    class: WorkloadClass::Versioning,
                    label: "blame-by-tool",
                    text: format!(
                        r#"FIND WHERE tool.name = "{tool}" ORDER BY created DESC LIMIT 5"#
                    ),
                },
                None => continue_spec(WorkloadClass::Versioning),
            },
            // "Get me all files tagged Release 1.1" — attribute tag.
            _ => match pick(rng, &vocab.regions) {
                Some(region) => QuerySpec {
                    class: WorkloadClass::Versioning,
                    label: "tag-lookup",
                    text: format!(r#"FIND WHERE region = "{region}""#),
                },
                None => continue_spec(WorkloadClass::Versioning),
            },
        };
        out.push(spec);
    }
    out
}

/// §III-B: science-repository queries (closure-heavy).
pub fn science(vocab: &Vocabulary, rng: &mut StdRng, n: usize) -> Vec<QuerySpec> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let spec = match i % 4 {
            // "Find all the raw data from which this data set was derived."
            0 => match pick(rng, &vocab.ids) {
                Some(id) => QuerySpec {
                    class: WorkloadClass::Science,
                    label: "raw-origins",
                    text: format!(
                        "FIND ANCESTORS OF ts:{} WHERE ancestry.parents = 0",
                        id.full_hex()
                    ),
                },
                None => continue_spec(WorkloadClass::Science),
            },
            // "Show me what I need to reproduce this result" — full closure.
            1 => match pick(rng, &vocab.ids) {
                Some(id) => QuerySpec {
                    class: WorkloadClass::Science,
                    label: "reproduce",
                    text: format!("FIND ANCESTORS OF ts:{} WITH SELF", id.full_hex()),
                },
                None => continue_spec(WorkloadClass::Science),
            },
            // Taint: "all downstream data … must be locatable."
            2 => match pick(rng, &vocab.ids) {
                Some(id) => QuerySpec {
                    class: WorkloadClass::Science,
                    label: "taint-downstream",
                    text: format!("FIND DESCENDANTS OF ts:{}", id.full_hex()),
                },
                None => continue_spec(WorkloadClass::Science),
            },
            // "Show everyone who has used my work" — shallow descendants.
            _ => match pick(rng, &vocab.ids) {
                Some(id) => QuerySpec {
                    class: WorkloadClass::Science,
                    label: "citation",
                    text: format!("FIND DESCENDANTS OF ts:{} DEPTH <= 1", id.full_hex()),
                },
                None => continue_spec(WorkloadClass::Science),
            },
        };
        out.push(spec);
    }
    out
}

/// §III-C: sensor/EMT operational queries.
pub fn sensor(vocab: &Vocabulary, rng: &mut StdRng, n: usize) -> Vec<QuerySpec> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let spec = match i % 4 {
            // "Show me everything we've done for this patient."
            0 => match pick(rng, &vocab.patients) {
                Some(p) => QuerySpec {
                    class: WorkloadClass::Sensor,
                    label: "patient-timeline",
                    text: format!(r#"FIND WHERE patient = "{p}" ORDER BY created ASC"#),
                },
                None => continue_spec(WorkloadClass::Sensor),
            },
            // "Show me the heart rate from moment of arrival until now."
            1 => match (pick(rng, &vocab.patients), true) {
                (Some(p), _) => {
                    let (a, b) = sub_window(rng, vocab.time_span);
                    QuerySpec {
                        class: WorkloadClass::Sensor,
                        label: "patient-window",
                        text: format!(r#"FIND WHERE patient = "{p}" AND time OVERLAPS [{a}, {b}]"#),
                    }
                }
                _ => continue_spec(WorkloadClass::Sensor),
            },
            // "Give heart rate profiles for everyone handled by EMT X."
            2 => match pick(rng, &vocab.operators) {
                Some(emt) => QuerySpec {
                    class: WorkloadClass::Sensor,
                    label: "by-operator",
                    text: format!(r#"FIND WHERE operator = "{emt}""#),
                },
                None => continue_spec(WorkloadClass::Sensor),
            },
            // "Find me all patients with signs of arrhythmia."
            _ => QuerySpec {
                class: WorkloadClass::Sensor,
                label: "anomaly-hunt",
                text: r#"FIND WHERE anomaly.arrhythmia = true"#.to_owned(),
            },
        };
        out.push(spec);
    }
    out
}

/// A mixed workload drawing evenly from all three classes.
pub fn mixed(vocab: &Vocabulary, rng: &mut StdRng, per_class: usize) -> Vec<QuerySpec> {
    let mut out = versioning(vocab, rng, per_class);
    out.extend(science(vocab, rng, per_class));
    out.extend(sensor(vocab, rng, per_class));
    out
}

/// Fallback when the vocabulary lacks the values a template needs.
fn continue_spec(class: WorkloadClass) -> QuerySpec {
    QuerySpec { class, label: "fallback-scan", text: "FIND LIMIT 10".to_owned() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rng_for;

    fn vocab() -> Vocabulary {
        Vocabulary {
            ids: vec![TupleSetId(1), TupleSetId(2)],
            regions: vec!["london".into(), "boston".into()],
            patients: vec!["patient-001".into()],
            operators: vec!["emt-0".into()],
            tools: vec!["filter".into(), "aggregate".into()],
            time_span: (Timestamp(0), Timestamp(1_000_000)),
        }
    }

    #[test]
    fn all_generated_queries_parse() {
        let v = vocab();
        let mut rng = rng_for(1, "workload");
        for spec in mixed(&v, &mut rng, 12) {
            pass_query::parse(&spec.text)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", spec.text, spec.label));
        }
    }

    #[test]
    fn classes_are_balanced_in_mixed() {
        let v = vocab();
        let mut rng = rng_for(2, "workload");
        let specs = mixed(&v, &mut rng, 8);
        assert_eq!(specs.len(), 24);
        for class in [WorkloadClass::Versioning, WorkloadClass::Science, WorkloadClass::Sensor] {
            assert_eq!(specs.iter().filter(|s| s.class == class).count(), 8, "{class:?}");
        }
    }

    #[test]
    fn science_queries_are_closure_heavy() {
        let v = vocab();
        let mut rng = rng_for(3, "workload");
        let specs = science(&v, &mut rng, 8);
        let closure_count = specs
            .iter()
            .filter(|s| s.text.contains("ANCESTORS") || s.text.contains("DESCENDANTS"))
            .count();
        assert_eq!(closure_count, 8, "every science query traverses lineage");
    }

    #[test]
    fn empty_vocabulary_falls_back_gracefully() {
        let v = Vocabulary { time_span: (Timestamp(0), Timestamp(10)), ..Default::default() };
        let mut rng = rng_for(4, "workload");
        for spec in mixed(&v, &mut rng, 4) {
            pass_query::parse(&spec.text).unwrap();
        }
    }
}
