//! # pass-sensor — synthetic sensor-network workload substrate
//!
//! The paper motivates PASS with five concrete deployments (§I): London
//! congestion-zone traffic, city-wide structural monitoring, volcano
//! monitoring, biological/weather field research, and sensor-enabled
//! emergency medicine (§III-C). None of that data is available to a
//! reproduction, so this crate generates faithful synthetic equivalents:
//! realistic value processes (diurnal traffic peaks, AR(1) weather,
//! Poisson seismic bursts, arrhythmia episodes), grouped into tuple sets
//! by time window exactly as §II prescribes.
//!
//! * Domain generators: [`traffic`], [`weather`], [`medical`],
//!   [`volcano`], [`structural`] — each emits [`CaptureSpec`]s.
//! * [`pipeline`] — derivation operators (filter, calibrate, aggregate,
//!   merge) plus [`pipeline::build_lineage`] for DAG-shape control.
//! * [`workload`] — the §III query mixes, parameterized over a populated
//!   store's vocabulary.
//!
//! Everything is seeded and deterministic: two runs of any generator
//! produce byte-identical tuple sets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gen;
pub mod live;
pub mod medical;
pub mod pipeline;
pub mod spec;
pub mod structural;
pub mod traffic;
pub mod volcano;
pub mod weather;
pub mod workload;

pub use live::{Alert, AlertCondition, AlertRule, AlertStage};
pub use pipeline::{
    build_lineage, capture_batch_items, ingest_in_batches, ingest_in_batches_routed, DeriveSpec,
    LineageShape,
};
pub use spec::CaptureSpec;
pub use workload::{QuerySpec, Vocabulary, WorkloadClass};
