//! Sensor-enabled ambulance workload (§III-C).
//!
//! "EMTs arriving at an accident or mass casualty event place sensors
//! (e.g., pulse oximeters, EKGs) on the patients." Patients stream vital
//! signs; some exhibit arrhythmia episodes (irregular heart-rate spikes)
//! and desaturation events — the anomalies the §III-C system queries
//! ("find me all patients with signs of arrhythmia") go looking for.

use crate::gen::{gaussian, rng_for};
use crate::spec::CaptureSpec;
use pass_model::{keys, Attributes, Reading, SensorId, Timestamp};
use rand::Rng;

/// Medical generator parameters.
#[derive(Debug, Clone)]
pub struct MedicalConfig {
    /// Incident label (becomes the `region`-equivalent scope).
    pub incident: String,
    /// Number of patients at the incident.
    pub patients: usize,
    /// Number of EMTs (patients are assigned round-robin).
    pub emts: usize,
    /// Vital-sign sample period.
    pub sample_ms: u64,
    /// Window per tuple set.
    pub window_ms: u64,
    /// Fraction of patients with an arrhythmia pattern.
    pub arrhythmia_rate: f64,
    /// Sensor id offset.
    pub sensor_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MedicalConfig {
    fn default() -> Self {
        MedicalConfig {
            incident: "incident-7".to_owned(),
            patients: 6,
            emts: 3,
            sample_ms: 1_000,
            window_ms: 60_000,
            arrhythmia_rate: 0.3,
            sensor_base: 20_000,
            seed: 3,
        }
    }
}

/// Generates `windows` tuple sets per patient: one pulse-ox/EKG window
/// each. Arrhythmic patients carry `anomaly.arrhythmia = true` windows
/// when an episode occurred.
pub fn generate(config: &MedicalConfig, start: Timestamp, windows: usize) -> Vec<CaptureSpec> {
    let mut out = Vec::with_capacity(config.patients * windows);
    for p in 0..config.patients {
        let mut rng = rng_for(config.seed, &format!("medical-{}-{p}", config.incident));
        let arrhythmic = rng.gen_bool(config.arrhythmia_rate);
        let base_hr = rng.gen_range(62.0..95.0);
        let sensor = SensorId(config.sensor_base + p as u64);
        let patient = format!("patient-{p:03}");
        let emt = format!("emt-{}", p % config.emts.max(1));
        for w in 0..windows {
            let w_start = start + (w as u64) * config.window_ms;
            let w_end = w_start + (config.window_ms - 1);
            let samples = (config.window_ms / config.sample_ms) as usize;
            let mut readings = Vec::with_capacity(samples);
            let mut episode = false;
            let mut spo2_drop = false;
            for i in 0..samples {
                let t = Timestamp(w_start.as_millis() + i as u64 * config.sample_ms);
                let mut hr = base_hr + 3.0 * gaussian(&mut rng);
                if arrhythmic && rng.gen_bool(0.04) {
                    // Irregular beat burst.
                    hr += rng.gen_range(40.0..80.0);
                    episode = true;
                }
                let mut spo2 = 97.5 + 0.8 * gaussian(&mut rng);
                if rng.gen_bool(0.01) {
                    spo2 -= rng.gen_range(5.0..12.0);
                    spo2_drop = true;
                }
                readings.push(
                    Reading::new(sensor, t)
                        .with("hr_bpm", hr.clamp(20.0, 250.0))
                        .with("spo2_pct", spo2.clamp(60.0, 100.0)),
                );
            }
            let attrs = Attributes::new()
                .with(keys::DOMAIN, "medical")
                .with(keys::REGION, config.incident.clone())
                .with(keys::TYPE, "vitals")
                .with(keys::SENSOR_TYPE, "pulse_oximeter")
                .with(keys::PATIENT, patient.clone())
                .with(keys::OPERATOR, emt.clone())
                .with(keys::TIME_START, w_start)
                .with(keys::TIME_END, w_end)
                .with(keys::READING_COUNT, readings.len() as i64)
                .with("anomaly.arrhythmia", episode)
                .with("anomaly.desaturation", spo2_drop);
            out.push(CaptureSpec { attrs, readings, at: w_end });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_patient_windows_with_vitals() {
        let config = MedicalConfig::default();
        let specs = generate(&config, Timestamp::ZERO, 4);
        assert_eq!(specs.len(), 24);
        for s in &specs {
            assert_eq!(s.attrs.get_str(keys::DOMAIN), Some("medical"));
            assert!(s.attrs.get_str(keys::PATIENT).is_some());
            assert!(s.attrs.get_str(keys::OPERATOR).unwrap().starts_with("emt-"));
            assert_eq!(s.readings.len(), 60);
        }
    }

    #[test]
    fn arrhythmia_flags_appear_for_some_patients() {
        let config = MedicalConfig { patients: 20, arrhythmia_rate: 0.5, ..Default::default() };
        let specs = generate(&config, Timestamp::ZERO, 5);
        let flagged: std::collections::HashSet<&str> = specs
            .iter()
            .filter(|s| s.attrs.get("anomaly.arrhythmia") == Some(&true.into()))
            .filter_map(|s| s.attrs.get_str(keys::PATIENT))
            .collect();
        assert!(!flagged.is_empty(), "some episodes must occur");
        assert!(flagged.len() < 20, "not everyone is arrhythmic");
    }

    #[test]
    fn emt_assignment_is_round_robin() {
        let config = MedicalConfig { patients: 6, emts: 3, ..Default::default() };
        let specs = generate(&config, Timestamp::ZERO, 1);
        assert_eq!(specs[0].attrs.get_str(keys::OPERATOR), Some("emt-0"));
        assert_eq!(specs[1].attrs.get_str(keys::OPERATOR), Some("emt-1"));
        assert_eq!(specs[3].attrs.get_str(keys::OPERATOR), Some("emt-0"));
    }

    #[test]
    fn heart_rates_are_physiological() {
        let specs = generate(&MedicalConfig::default(), Timestamp::ZERO, 2);
        for s in specs {
            for r in &s.readings {
                let hr = r.field("hr_bpm").unwrap().as_float().unwrap();
                assert!((20.0..=250.0).contains(&hr), "hr {hr}");
                let spo2 = r.field("spo2_pct").unwrap().as_float().unwrap();
                assert!((60.0..=100.0).contains(&spo2), "spo2 {spo2}");
            }
        }
    }
}
