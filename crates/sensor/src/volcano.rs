//! Volcano monitoring workload (§I cites Werner-Allen et al.'s deployment).
//!
//! Seismic stations report per-window amplitude summaries. Background
//! tremor is low-level noise; eruption episodes inject Poisson bursts of
//! high-amplitude events, giving the archive the "interesting windows"
//! that historical taint queries chase.

use crate::gen::{gaussian, poisson, rng_for};
use crate::spec::CaptureSpec;
use pass_model::{keys, Attributes, GeoPoint, Reading, SensorId, Timestamp};
use rand::Rng;

/// Volcano generator parameters.
#[derive(Debug, Clone)]
pub struct VolcanoConfig {
    /// Volcano name (the `region` attribute).
    pub volcano: String,
    /// Station count on the flanks.
    pub stations: usize,
    /// Window per tuple set.
    pub window_ms: u64,
    /// Eruption episodes as `(start_window, length_windows)` pairs.
    pub eruptions: Vec<(usize, usize)>,
    /// Sensor id offset.
    pub sensor_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VolcanoConfig {
    fn default() -> Self {
        VolcanoConfig {
            volcano: "vesuvius".to_owned(),
            stations: 8,
            window_ms: 300_000, // 5 minutes
            eruptions: vec![(10, 4)],
            sensor_base: 30_000,
            seed: 4,
        }
    }
}

fn in_eruption(config: &VolcanoConfig, window: usize) -> bool {
    config.eruptions.iter().any(|&(s, len)| window >= s && window < s + len)
}

/// Generates `windows` tuple sets per station.
pub fn generate(config: &VolcanoConfig, start: Timestamp, windows: usize) -> Vec<CaptureSpec> {
    let mut rng = rng_for(config.seed, &format!("volcano-{}", config.volcano));
    let mut out = Vec::with_capacity(config.stations * windows);
    for w in 0..windows {
        let erupting = in_eruption(config, w);
        let w_start = start + (w as u64) * config.window_ms;
        let w_end = w_start + (config.window_ms - 1);
        for s in 0..config.stations {
            let sensor = SensorId(config.sensor_base + s as u64);
            let events = if erupting { poisson(&mut rng, 12.0) } else { poisson(&mut rng, 0.8) };
            let mut readings = Vec::with_capacity(events as usize);
            let mut peak: f64 = 0.0;
            for _ in 0..events {
                let t = Timestamp(w_start.as_millis() + rng.gen_range(0..config.window_ms));
                let amplitude = if erupting {
                    (40.0 + 25.0 * gaussian(&mut rng)).max(5.0)
                } else {
                    (2.0 + 1.0 * gaussian(&mut rng)).max(0.1)
                };
                peak = peak.max(amplitude);
                readings.push(
                    Reading::new(sensor, t)
                        .with("amplitude_um", amplitude)
                        .with("dominant_hz", 1.0 + rng.gen_range(0.0..9.0)),
                );
            }
            readings.sort_by_key(|r| r.time);
            let attrs = Attributes::new()
                .with(keys::DOMAIN, "volcano")
                .with(keys::REGION, config.volcano.clone())
                .with(keys::TYPE, "seismic_window")
                .with(keys::SENSOR_TYPE, "seismometer")
                .with(keys::LOCATION, GeoPoint::new(40.82 + s as f64 * 0.01, 14.42))
                .with(keys::TIME_START, w_start)
                .with(keys::TIME_END, w_end)
                .with(keys::READING_COUNT, readings.len() as i64)
                .with("station.id", sensor.0 as i64)
                .with("peak_amplitude_um", peak)
                .with("eruption_window", erupting);
            out.push(CaptureSpec { attrs, readings, at: w_end });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eruption_windows_are_busier_and_louder() {
        let config = VolcanoConfig { eruptions: vec![(5, 3)], ..Default::default() };
        let specs = generate(&config, Timestamp::ZERO, 12);
        let (mut calm_events, mut calm_n) = (0usize, 0usize);
        let (mut hot_events, mut hot_n) = (0usize, 0usize);
        for (i, s) in specs.iter().enumerate() {
            let w = i / config.stations;
            if (5..8).contains(&w) {
                hot_events += s.readings.len();
                hot_n += 1;
                assert_eq!(s.attrs.get("eruption_window"), Some(&true.into()));
            } else {
                calm_events += s.readings.len();
                calm_n += 1;
            }
        }
        let calm_rate = calm_events as f64 / calm_n as f64;
        let hot_rate = hot_events as f64 / hot_n as f64;
        assert!(hot_rate > calm_rate * 4.0, "hot {hot_rate} vs calm {calm_rate}");
    }

    #[test]
    fn peak_amplitude_attribute_matches_readings() {
        let specs = generate(&VolcanoConfig::default(), Timestamp::ZERO, 6);
        for s in specs {
            let declared = s.attrs.get("peak_amplitude_um").unwrap().as_float().unwrap();
            let actual = s
                .readings
                .iter()
                .filter_map(|r| r.field("amplitude_um").and_then(|v| v.as_float()))
                .fold(0.0f64, f64::max);
            assert!((declared - actual).abs() < 1e-9, "{declared} vs {actual}");
        }
    }

    #[test]
    fn window_indexing_is_stable() {
        let config = VolcanoConfig::default();
        let a = generate(&config, Timestamp::ZERO, 3);
        let b = generate(&config, Timestamp::ZERO, 3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].readings, b[0].readings);
    }
}
