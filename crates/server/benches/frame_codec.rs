//! Frame codec throughput: encode and incremental-decode of publish
//! frames at several batch sizes. This is the per-request CPU floor the
//! serving layer pays before any storage work happens.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_distrib::wire::WireMsg;
use pass_loadgen::workload;
use pass_server::frame::{encode_msg, FrameDecoder};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    group.sample_size(20);
    for sets in [1usize, 8, 64] {
        let msg = WireMsg::Publish { op: 1, sets: workload::batch(1, 1, sets, 4) };
        let bytes = encode_msg(&msg);
        group.bench_with_input(BenchmarkId::new("encode", sets), &msg, |b, msg| {
            b.iter(|| black_box(encode_msg(black_box(msg))))
        });
        group.bench_with_input(BenchmarkId::new("decode", sets), &bytes, |b, bytes| {
            b.iter(|| {
                let mut decoder = FrameDecoder::new();
                decoder.extend(black_box(bytes));
                let frame =
                    decoder.next_frame().expect("well-formed frame").expect("complete frame");
                black_box(
                    WireMsg::decode_body(frame.kind, &frame.payload).expect("well-formed body"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
