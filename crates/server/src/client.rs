//! A small blocking client for the framed protocol.
//!
//! One socket, one thread: requests are written inline and replies read
//! until the matching `op` arrives. Frames for *other* ops seen along
//! the way (subscription pushes, mostly) are buffered and surfaced via
//! [`Client::next_push`] — enough for tests, examples, and tools. The
//! open-loop load generator does **not** use this type: it needs
//! decoupled sender/receiver halves (see `pass-loadgen`).

use crate::error::{Result, ServerError};
use crate::frame::{encode_msg, FrameDecoder};
use pass_distrib::wire::{StatsBody, WireMsg};
use pass_model::{TupleSet, TupleSetId};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Outcome of a publish: committed, or explicitly shed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishOutcome {
    /// Committed; the content-addressed ids, in batch order.
    Committed(Vec<TupleSetId>),
    /// Shed by admission control — retry later.
    Overloaded,
}

/// Blocking protocol client.
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    pending: VecDeque<WireMsg>,
    next_op: u64,
    timeout: Duration,
}

impl Client {
    /// Connects with the default 5 s reply timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit reply timeout.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            next_op: 1,
            timeout,
        })
    }

    fn fresh_op(&mut self) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        op
    }

    /// Sends raw bytes on the socket — deliberately *not* framed, so
    /// tests can speak garbage, torn frames, and half-messages.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Sends one message as a frame.
    pub fn send(&mut self, msg: &WireMsg) -> Result<()> {
        self.send_raw(&encode_msg(msg))
    }

    /// Reads the next frame from the wire (buffered pushes first),
    /// waiting up to `timeout`. `Ok(None)` means the timeout passed.
    pub fn next_msg(&mut self, timeout: Duration) -> Result<Option<WireMsg>> {
        if let Some(msg) = self.pending.pop_front() {
            return Ok(Some(msg));
        }
        self.read_msg(timeout)
    }

    /// Reads the next frame from the *socket*, ignoring the pending
    /// buffer. [`Client::wait_reply`] must use this: it stashes
    /// non-matching frames into `pending` itself, so consulting
    /// `pending` here would hand it the same frame back forever and
    /// starve the socket.
    fn read_msg(&mut self, timeout: Duration) -> Result<Option<WireMsg>> {
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 16 << 10];
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(Some(WireMsg::decode_body(frame.kind, &frame.payload)?));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    if self.decoder.mid_frame() {
                        return Err(ServerError::Frame(self.decoder.torn()));
                    }
                    return Err(ServerError::Closed);
                }
                Ok(n) => self.decoder.extend(buf.get(..n).unwrap_or_default()),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(ServerError::Io(e)),
            }
        }
    }

    /// Reads until a reply for `op` arrives; everything else is buffered
    /// for [`Client::next_push`].
    fn wait_reply(&mut self, op: u64) -> Result<WireMsg> {
        let deadline = Instant::now() + self.timeout;
        // Drain buffered frames for this op first.
        if let Some(at) = self.pending.iter().position(|m| m.op() == op) {
            if let Some(msg) = self.pending.remove(at) {
                return Ok(msg);
            }
        }
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ServerError::Timeout);
            }
            match self.read_msg(left)? {
                Some(msg) if msg.op() == op => return Ok(msg),
                Some(msg) => self.pending.push_back(msg),
                None => return Err(ServerError::Timeout),
            }
        }
    }

    /// Publishes a batch of captured tuple sets.
    pub fn publish(&mut self, sets: Vec<TupleSet>) -> Result<PublishOutcome> {
        let op = self.fresh_op();
        self.send(&WireMsg::Publish { op, sets })?;
        match self.wait_reply(op)? {
            WireMsg::PublishOk { ids, .. } => Ok(PublishOutcome::Committed(ids)),
            WireMsg::Overloaded { .. } => Ok(PublishOutcome::Overloaded),
            WireMsg::Error { message, .. } => {
                Err(ServerError::Wire(pass_model::ModelError::Invalid(message)))
            }
            other => Err(ServerError::UnexpectedFrame { kind: other.kind() }),
        }
    }

    /// Runs one page of a query; returns `(ids, done)`.
    pub fn query_page(
        &mut self,
        query: &str,
        after: Option<TupleSetId>,
        limit: u64,
    ) -> Result<(Vec<TupleSetId>, bool)> {
        let op = self.fresh_op();
        self.send(&WireMsg::QueryPage { op, query: query.into(), after, limit })?;
        match self.wait_reply(op)? {
            WireMsg::ResultPage { ids, done, .. } => Ok((ids, done)),
            WireMsg::Error { message, .. } => {
                Err(ServerError::Wire(pass_model::ModelError::Invalid(message)))
            }
            other => Err(ServerError::UnexpectedFrame { kind: other.kind() }),
        }
    }

    /// Pages through a whole query, concatenating pages.
    pub fn query_all(&mut self, query: &str, page: u64) -> Result<Vec<TupleSetId>> {
        let mut out: Vec<TupleSetId> = Vec::new();
        let mut after = None;
        loop {
            let (ids, done) = self.query_page(query, after, page)?;
            after = ids.last().copied();
            out.extend(ids);
            if done {
                return Ok(out);
            }
        }
    }

    /// Opens a standing subscription; returns its op for matching the
    /// pushes surfaced by [`Client::next_push`].
    pub fn subscribe(&mut self, statement: &str) -> Result<u64> {
        let op = self.fresh_op();
        self.send(&WireMsg::Subscribe { op, statement: statement.into() })?;
        Ok(op)
    }

    /// The next server push (or any frame not consumed by a blocking
    /// call), waiting up to `timeout`.
    pub fn next_push(&mut self, timeout: Duration) -> Result<Option<WireMsg>> {
        self.next_msg(timeout)
    }

    /// Fetches the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsBody> {
        let op = self.fresh_op();
        self.send(&WireMsg::Stats { op })?;
        match self.wait_reply(op)? {
            WireMsg::StatsReply { stats, .. } => Ok(stats),
            WireMsg::Error { message, .. } => {
                Err(ServerError::Wire(pass_model::ModelError::Invalid(message)))
            }
            other => Err(ServerError::UnexpectedFrame { kind: other.kind() }),
        }
    }
}
