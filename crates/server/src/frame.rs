//! Length-framed, CRC-checked transport framing.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic        0x50 0xA5
//! 2       1     version      PROTO_VERSION (frames with another version are refused)
//! 3       1     kind         WireMsg kind tag
//! 4       4     payload len  u32 LE, must be <= MAX_FRAME
//! 8       4     crc          u32 LE, CRC32C over bytes [2..8] ++ payload
//! 12      len   payload      canonical WireMsg body encoding
//! ```
//!
//! The CRC covers the version, kind, and length bytes as well as the
//! payload, so a flipped header bit cannot silently redirect a payload
//! to another message kind. The length field is validated *before* the
//! payload is awaited: a corrupt length prefix claiming gigabytes fails
//! fast as [`FrameError::Oversized`] instead of stalling the connection
//! until a timeout.
//!
//! [`FrameDecoder`] is an incremental decoder over a growing byte
//! buffer: feed it whatever the socket produced and pull complete
//! frames. Torn input (EOF mid-frame) is detected by the caller via
//! [`FrameDecoder::mid_frame`]. Everything here follows the L1
//! discipline: hostile bytes produce [`FrameError`]s, never panics.

use pass_distrib::wire::{WireMsg, PROTO_VERSION};
use pass_storage::crc::Crc32c;
use std::fmt;

/// Frame magic: "P" for PASS, 0xA5 to stay asymmetric and non-ASCII.
pub const MAGIC: [u8; 2] = [0x50, 0xA5];

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Maximum accepted payload length. Generous for publish batches (a
/// 4096-set batch of typical sensor sets is ~4 MiB) while bounding what
/// a corrupt or hostile length prefix can make the server buffer.
pub const MAX_FRAME: usize = 16 << 20;

/// One decoded frame: the kind tag plus its raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind (dispatches the payload decoder).
    pub kind: u8,
    /// Canonical message-body bytes.
    pub payload: Vec<u8>,
}

/// Framing-layer failures. All of them are terminal for the connection:
/// after a framing error the byte stream can no longer be trusted.
#[derive(Debug)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 2],
    },
    /// The frame declares a protocol version this build does not speak.
    BadVersion {
        /// The declared version.
        found: u8,
    },
    /// The declared payload length exceeds [`MAX_FRAME`].
    Oversized {
        /// The declared length.
        declared: u64,
    },
    /// The CRC over header+payload did not match.
    CrcMismatch {
        /// CRC carried by the frame.
        stored: u32,
        /// CRC computed from the bytes.
        computed: u32,
    },
    /// The stream ended mid-frame (torn frame).
    Torn {
        /// Bytes still needed to complete the frame.
        needed: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found: [a, b] } => {
                write!(f, "bad frame magic {a:02x}{b:02x}")
            }
            FrameError::BadVersion { found } => {
                write!(f, "unsupported protocol version {found} (speaking {PROTO_VERSION})")
            }
            FrameError::Oversized { declared } => {
                write!(f, "declared payload length {declared} exceeds {MAX_FRAME}")
            }
            FrameError::CrcMismatch { stored, computed } => {
                write!(f, "frame crc mismatch: stored {stored:08x}, computed {computed:08x}")
            }
            FrameError::Torn { needed } => {
                write!(f, "stream ended mid-frame ({needed} bytes short)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes `msg` into one complete frame (header + payload).
pub fn encode_msg(msg: &WireMsg) -> Vec<u8> {
    let mut payload = Vec::new();
    msg.encode_body(&mut payload);
    encode_frame(msg.kind(), &payload)
}

/// Builds a frame around raw payload bytes.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(PROTO_VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(PROTO_VERSION, kind, payload.len() as u32, payload));
    out.extend_from_slice(payload);
    out
}

/// The frame CRC: CRC32C over the version, kind, and length bytes
/// followed by the payload, little-endian.
fn frame_crc(version: u8, kind: u8, len: u32, payload: &[u8]) -> [u8; 4] {
    let mut crc = Crc32c::new();
    crc.update(&[version, kind]);
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    crc.finish().to_le_bytes()
}

/// Reads a fixed-width little-endian u32 from the front of a slice.
fn u32_le_at(buf: &[u8], offset: usize) -> Option<u32> {
    let bytes = buf.get(offset..offset + 4)?;
    let arr: [u8; 4] = bytes.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Incremental frame decoder: feed bytes, pull complete frames.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// True when the buffer holds a partial frame — an EOF now would be
    /// a torn frame, not a clean close.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// A [`FrameError::Torn`] describing the current partial frame (for
    /// callers that observed EOF while [`Self::mid_frame`] is true).
    pub fn torn(&self) -> FrameError {
        let needed = match (self.buf.len(), u32_le_at(&self.buf, 4)) {
            (have, _) if have < HEADER_LEN => HEADER_LEN - have,
            (have, Some(len)) => (HEADER_LEN + len as usize).saturating_sub(have),
            (_, None) => 1,
        };
        FrameError::Torn { needed }
    }

    /// Decodes one complete frame from the front of the buffer, if the
    /// bytes for one have arrived. Header fields are validated as soon
    /// as the header is complete — a bad magic, version, or oversized
    /// length fails immediately, without waiting for the (possibly
    /// never-arriving) payload. Framing errors are terminal: the buffer
    /// contents are unspecified afterwards and the connection should be
    /// dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic: [u8; 2] = match self.buf.get(..2).and_then(|b| b.try_into().ok()) {
            Some(m) => m,
            None => return Ok(None),
        };
        if magic != MAGIC {
            return Err(FrameError::BadMagic { found: magic });
        }
        let version = self.buf.get(2).copied().unwrap_or_default();
        if version != PROTO_VERSION {
            return Err(FrameError::BadVersion { found: version });
        }
        let kind = self.buf.get(3).copied().unwrap_or_default();
        let len = match u32_le_at(&self.buf, 4) {
            Some(len) => len as usize,
            None => return Ok(None),
        };
        if len > MAX_FRAME {
            return Err(FrameError::Oversized { declared: len as u64 });
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let stored = match u32_le_at(&self.buf, 8) {
            Some(crc) => crc,
            None => return Ok(None),
        };
        let payload = self.buf.get(HEADER_LEN..HEADER_LEN + len).unwrap_or_default().to_vec();
        let computed = u32::from_le_bytes(frame_crc(version, kind, len as u32, &payload));
        if stored != computed {
            return Err(FrameError::CrcMismatch { stored, computed });
        }
        self.buf.drain(..HEADER_LEN + len);
        Ok(Some(Frame { kind, payload }))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pass_distrib::wire::WireMsg;

    fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
        let mut dec = FrameDecoder::new();
        dec.extend(bytes);
        let mut out = Vec::new();
        while let Some(frame) = dec.next_frame()? {
            out.push(frame);
        }
        Ok(out)
    }

    #[test]
    fn frame_round_trips_byte_at_a_time() {
        let msg = WireMsg::Error { op: 9, message: "x".repeat(300) };
        let bytes = encode_msg(&msg);
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            assert!(dec.next_frame().unwrap().is_none(), "no frame before byte {i}");
            dec.extend(&[*b]);
        }
        let frame = dec.next_frame().unwrap().expect("complete frame");
        assert_eq!(frame.kind, msg.kind());
        assert_eq!(WireMsg::decode_body(frame.kind, &frame.payload).unwrap(), msg);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn two_frames_in_one_read() {
        let a = encode_msg(&WireMsg::Stats { op: 1 });
        let b = encode_msg(&WireMsg::Overloaded { op: 2 });
        let mut bytes = a;
        bytes.extend_from_slice(&b);
        let frames = decode_all(&bytes).unwrap();
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode_msg(&WireMsg::Stats { op: 1 });
        bytes[0] ^= 0xff;
        assert!(matches!(decode_all(&bytes), Err(FrameError::BadMagic { .. })));
    }

    #[test]
    fn bad_version_detected() {
        let mut bytes = encode_msg(&WireMsg::Stats { op: 1 });
        bytes[2] = PROTO_VERSION + 1;
        assert!(matches!(decode_all(&bytes), Err(FrameError::BadVersion { .. })));
    }

    #[test]
    fn oversized_length_fails_without_payload() {
        // Header only: declares 1 GiB, supplies nothing. Must fail
        // immediately rather than waiting for a gigabyte.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(PROTO_VERSION);
        bytes.push(0x04);
        bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
        bytes.extend_from_slice(&[0; 4]);
        assert!(
            matches!(decode_all(&bytes), Err(FrameError::Oversized { declared }) if declared == 1 << 30)
        );
    }

    #[test]
    fn crc_mismatch_on_payload_flip() {
        let mut bytes = encode_msg(&WireMsg::Error { op: 1, message: "hello".into() });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(decode_all(&bytes), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn crc_mismatch_on_kind_flip() {
        // The kind byte is covered by the CRC: redirecting a payload to
        // another message kind must not pass.
        let mut bytes = encode_msg(&WireMsg::Stats { op: 1 });
        bytes[3] = 0x01;
        assert!(matches!(decode_all(&bytes), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn torn_reports_missing_bytes() {
        let bytes = encode_msg(&WireMsg::Error { op: 1, message: "payload".into() });
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..bytes.len() - 3]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.mid_frame());
        assert!(matches!(dec.torn(), FrameError::Torn { needed: 3 }));

        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..5]);
        assert!(matches!(dec.torn(), FrameError::Torn { needed: 7 }));
    }

    #[test]
    fn random_garbage_never_panics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xe24);
        for round in 0..500 {
            let n = rng.gen_range(0usize..200);
            let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0u64..256) as u8).collect();
            let mut dec = FrameDecoder::new();
            dec.extend(&bytes);
            // Either an error or (rarely) a structurally valid prefix —
            // never a panic. Drain until error or exhaustion.
            for _ in 0..4 {
                match dec.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
            let _ = round;
        }
    }
}
