//! Admission control: shed load explicitly instead of queueing toward
//! collapse.
//!
//! An open-loop world does not slow down because the server is busy —
//! arrivals keep coming at the offered rate. A server without admission
//! control converts a transient overload into an unbounded queue: every
//! request still gets served, but the p99 grows without limit and the
//! process eventually dies of memory. This gate gives the server an
//! explicit answer instead: when the work it has already accepted (by
//! bytes in flight) or a connection's outbound backlog (by queued
//! frames) crosses a threshold, new publishes are *rejected* with an
//! [`Overloaded`](pass_distrib::wire::WireMsg::Overloaded) reply the
//! client can retry — bounded latency for the work that is admitted,
//! explicit shed for the work that is not.
//!
//! Two thresholds, both cheap to evaluate on the hot path:
//!
//! * **in-flight bytes** (global): publish payload bytes admitted but
//!   not yet replied to, across all connections. Caps the commit work
//!   queued inside the store.
//! * **send-queue depth** (per connection): replies waiting for a slow
//!   reader. A client that does not drain its socket cannot pump more
//!   work in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Admission thresholds. Defaults are sized for a small host; E24
/// documents measured behavior at the knee.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Connections accepted concurrently; further connects are refused
    /// with a `Goodbye` frame at accept time.
    pub max_connections: usize,
    /// Global cap on publish payload bytes admitted but not yet
    /// replied to.
    pub max_in_flight_bytes: u64,
    /// Per-connection send-queue depth (frames) beyond which new
    /// publishes on that connection are shed.
    pub max_queued_frames: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_connections: 256,
            max_in_flight_bytes: 32 << 20,
            max_queued_frames: 256,
        }
    }
}

/// The shared gate: one per server.
#[derive(Debug)]
pub struct AdmissionGate {
    config: AdmissionConfig,
    in_flight_bytes: AtomicU64,
}

impl AdmissionGate {
    /// A gate enforcing `config`.
    pub fn new(config: AdmissionConfig) -> Arc<Self> {
        Arc::new(AdmissionGate { config, in_flight_bytes: AtomicU64::new(0) })
    }

    /// The thresholds in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Publish payload bytes currently admitted.
    pub fn in_flight_bytes(&self) -> u64 {
        self.in_flight_bytes.load(Ordering::Relaxed)
    }

    /// Tries to admit a publish of `bytes` payload bytes arriving on a
    /// connection whose send queue currently holds `queue_depth` frames.
    /// Returns a permit that releases the bytes on drop, or `None` when
    /// the request must be shed.
    ///
    /// The byte reservation is optimistic (`fetch_add` then check): two
    /// racing admits can transiently overshoot by one batch each, which
    /// is fine — the threshold is a shed point, not a hard memory bound.
    pub fn try_admit(self: &Arc<Self>, bytes: u64, queue_depth: usize) -> Option<AdmissionPermit> {
        if queue_depth > self.config.max_queued_frames {
            return None;
        }
        let before = self.in_flight_bytes.fetch_add(bytes, Ordering::Relaxed);
        if before.saturating_add(bytes) > self.config.max_in_flight_bytes {
            self.in_flight_bytes.fetch_sub(bytes, Ordering::Relaxed);
            return None;
        }
        Some(AdmissionPermit { gate: Arc::clone(self), bytes })
    }
}

/// RAII reservation of in-flight bytes; dropping it releases them.
#[derive(Debug)]
pub struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
    bytes: u64,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.gate.in_flight_bytes.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn byte_threshold_sheds_and_releases() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_in_flight_bytes: 100,
            ..AdmissionConfig::default()
        });
        let a = gate.try_admit(60, 0).expect("first admit");
        assert!(gate.try_admit(60, 0).is_none(), "over byte budget");
        drop(a);
        assert_eq!(gate.in_flight_bytes(), 0);
        assert!(gate.try_admit(60, 0).is_some(), "released bytes admit again");
    }

    #[test]
    fn queue_depth_threshold_sheds() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_queued_frames: 4,
            ..AdmissionConfig::default()
        });
        assert!(gate.try_admit(1, 4).is_some());
        assert!(gate.try_admit(1, 5).is_none());
    }
}
