//! Server-side counters, exposed via the `Stats` request frame.

use pass_distrib::wire::StatsBody;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counter block shared by every connection thread. Snapshots
/// are taken relaxed — the numbers are monitoring data, not a commit
/// protocol — but each counter individually never goes backwards (except
/// `conns_active`, which is a gauge).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub conns_accepted: AtomicU64,
    /// Connections refused at accept time (cap reached or draining).
    pub conns_rejected: AtomicU64,
    /// Connections currently open (gauge).
    pub conns_active: AtomicU64,
    /// Publish batches committed.
    pub publishes_ok: AtomicU64,
    /// Publish batches shed by admission control.
    pub publishes_rejected: AtomicU64,
    /// Records committed (sum of accepted batch sizes).
    pub records_ingested: AtomicU64,
    /// Query pages served.
    pub queries: AtomicU64,
    /// Subscriptions opened.
    pub subscriptions: AtomicU64,
    /// Push frames shed because a connection's send queue was full.
    pub queue_shed: AtomicU64,
    /// Frame bytes received (headers + payloads).
    pub bytes_in: AtomicU64,
    /// Frame bytes sent (headers + payloads).
    pub bytes_out: AtomicU64,
}

impl ServerStats {
    /// A fresh, zeroed counter block.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (saturating at zero is the caller's
    /// responsibility: every decrement pairs with an earlier increment).
    pub fn drop_gauge(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// A point-in-time copy in the wire shape.
    pub fn snapshot(&self) -> StatsBody {
        StatsBody {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            conns_active: self.conns_active.load(Ordering::Relaxed),
            publishes_ok: self.publishes_ok.load(Ordering::Relaxed),
            publishes_rejected: self.publishes_rejected.load(Ordering::Relaxed),
            records_ingested: self.records_ingested.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            subscriptions: self.subscriptions.load(Ordering::Relaxed),
            queue_shed: self.queue_shed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = ServerStats::new();
        ServerStats::bump(&stats.publishes_ok);
        ServerStats::add(&stats.records_ingested, 16);
        ServerStats::bump(&stats.conns_active);
        ServerStats::drop_gauge(&stats.conns_active);
        let snap = stats.snapshot();
        assert_eq!(snap.publishes_ok, 1);
        assert_eq!(snap.records_ingested, 16);
        assert_eq!(snap.conns_active, 0);
    }
}
