//! `pass-server` — the concurrent serving layer for PASS.
//!
//! Everything before this crate runs in one process: capture, commit,
//! query, and the simulated distribution layer. This crate puts a real
//! socket in front of [`pass_core::Pass`]:
//!
//! * **Framing** ([`frame`]): length-prefixed frames with a versioned
//!   12-byte header and a CRC32C over header metadata + payload. The
//!   decoder is incremental and panic-free on arbitrary bytes.
//! * **Messages** ([`pass_distrib::wire`]): the canonical binary codec
//!   for the request/response vocabulary (publish, paged query,
//!   subscribe, stats) that mirrors the simulator's `ArchMsg` shapes.
//! * **Connections** ([`conn`]): one reader and one writer thread per
//!   connection; requests dispatch inline on the reader, replies and
//!   pushes go through a bounded send queue. Replies apply
//!   backpressure; subscription pushes shed to `Lagged` frames so a
//!   slow subscriber never blocks ingest.
//! * **Admission control** ([`admission`]): global in-flight-byte and
//!   per-connection queue-depth thresholds. Over the line, publishes
//!   are refused with an explicit `Overloaded` reply instead of
//!   queueing toward collapse — the open-loop experiments (E24) measure
//!   exactly this knee.
//! * **Lifecycle** ([`server`]): accept loop, connection registry, and
//!   a graceful SIGTERM-style drain that finishes in-flight commits,
//!   closes subscriptions with a terminal frame, and flushes WALs.
//! * **Client** ([`client`]): a small blocking client for tests, tools,
//!   and examples.
//!
//! This crate is deliberately excluded from the determinism rule (L4):
//! it fronts real sockets and legitimately reads wall clocks for
//! timeouts. The simulation crates stay clock-free.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod conn;
pub mod error;
pub mod frame;
pub mod server;
pub mod stats;

pub use admission::{AdmissionConfig, AdmissionGate, AdmissionPermit};
pub use client::{Client, PublishOutcome};
pub use conn::ConnConfig;
pub use error::{Result, ServerError};
pub use frame::{encode_msg, Frame, FrameDecoder, FrameError, HEADER_LEN, MAX_FRAME};
pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::ServerStats;
