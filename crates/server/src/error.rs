//! Error surface of the serving layer.

use crate::frame::FrameError;
use std::fmt;

/// Anything that can go wrong speaking the protocol or serving requests.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Framing-layer failure (bad magic/version/CRC, torn frame, …).
    Frame(FrameError),
    /// A structurally valid frame whose body failed to decode.
    Wire(pass_model::ModelError),
    /// The underlying store rejected the operation.
    Pass(pass_core::PassError),
    /// The connection (or its send queue) is closed.
    Closed,
    /// A frame arrived whose kind makes no sense in this direction or
    /// state (e.g. a response kind sent by a client).
    UnexpectedFrame {
        /// The offending kind tag.
        kind: u8,
    },
    /// A blocking client call ran out of time.
    Timeout,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::Frame(e) => write!(f, "frame error: {e}"),
            ServerError::Wire(e) => write!(f, "wire decode error: {e}"),
            ServerError::Pass(e) => write!(f, "store error: {e}"),
            ServerError::Closed => write!(f, "connection closed"),
            ServerError::UnexpectedFrame { kind } => {
                write!(f, "unexpected frame kind 0x{kind:02x}")
            }
            ServerError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Frame(e) => Some(e),
            ServerError::Wire(e) => Some(e),
            ServerError::Pass(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<FrameError> for ServerError {
    fn from(e: FrameError) -> Self {
        ServerError::Frame(e)
    }
}

impl From<pass_model::ModelError> for ServerError {
    fn from(e: pass_model::ModelError) -> Self {
        ServerError::Wire(e)
    }
}

impl From<pass_core::PassError> for ServerError {
    fn from(e: pass_core::PassError) -> Self {
        ServerError::Pass(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServerError>;
