//! The server proper: listener, accept loop, connection registry, and
//! the graceful drain.

use crate::admission::{AdmissionConfig, AdmissionGate};
use crate::conn::{reader_loop, writer_loop, ConnConfig, ConnShared, SendQueue, ServerCtx};
use crate::error::{Result, ServerError};
use crate::frame::encode_msg;
use crate::stats::ServerStats;
use pass_core::Pass;
use pass_distrib::wire::{StatsBody, WireMsg};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Admission thresholds (connection cap, in-flight bytes, queue
    /// depth).
    pub admission: AdmissionConfig,
    /// Per-connection tuning (queue sizes, timeouts, page sizes).
    pub conn: ConnConfig,
}

struct ConnEntry {
    shared: Arc<ConnShared>,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

struct ServerShared {
    draining: Arc<AtomicBool>,
    conns: Mutex<Vec<ConnEntry>>,
    stats: Arc<ServerStats>,
    pass: Arc<Pass>,
}

/// A running server. Dropping the handle performs a graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

/// Binds a listener and starts serving `pass`.
///
/// `addr` is any `ToSocketAddrs` (use `"127.0.0.1:0"` for an ephemeral
/// port; the bound address is available via [`ServerHandle::addr`]).
pub fn serve(
    addr: impl ToSocketAddrs,
    pass: Arc<Pass>,
    config: ServerConfig,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let stats = Arc::new(ServerStats::new());
    let draining = Arc::new(AtomicBool::new(false));
    let gate = AdmissionGate::new(config.admission.clone());
    let shared = Arc::new(ServerShared {
        draining: Arc::clone(&draining),
        conns: Mutex::new(Vec::new()),
        stats: Arc::clone(&stats),
        pass: Arc::clone(&pass),
    });

    let ctx = Arc::new(ServerCtx {
        pass,
        stats: Arc::clone(&stats),
        gate,
        draining: Arc::clone(&draining),
        config: config.conn.clone(),
    });

    let accept_shared = Arc::clone(&shared);
    let max_conns = config.admission.max_connections;
    let accept = std::thread::Builder::new()
        .name("pass-server-accept".into())
        .spawn(move || accept_loop(listener, accept_shared, ctx, max_conns))?;

    Ok(ServerHandle { addr, shared, accept: Some(accept) })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    ctx: Arc<ServerCtx>,
    max_conns: usize,
) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                reap_finished(&shared);
                let active = shared.stats.conns_active.load(Ordering::Relaxed);
                if shared.draining.load(Ordering::Acquire) || active >= max_conns as u64 {
                    refuse(stream, &shared.stats);
                    continue;
                }
                if let Err(_e) = spawn_conn(stream, &shared, &ctx) {
                    // Socket configuration failed (peer likely already
                    // gone); nothing to serve.
                    ServerStats::bump(&shared.stats.conns_rejected);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    // Listener drops here: further connects are refused by the OS.
}

/// Refuses a connection at accept time with a terminal Goodbye frame.
fn refuse(mut stream: TcpStream, stats: &Arc<ServerStats>) {
    ServerStats::bump(&stats.conns_rejected);
    let farewell = encode_msg(&WireMsg::Goodbye { op: 0 });
    if let Err(_e) = stream.write_all(&farewell) {
        // Best effort: the refusal itself is the close that follows.
    }
}

fn spawn_conn(stream: TcpStream, shared: &Arc<ServerShared>, ctx: &Arc<ServerCtx>) -> Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(ctx.config.read_timeout))?;
    let write_half = stream.try_clone()?;

    ServerStats::bump(&shared.stats.conns_accepted);
    ServerStats::bump(&shared.stats.conns_active);

    let sendq = SendQueue::new(ctx.config.send_queue_frames, ctx.config.send_queue_bytes);
    let conn = Arc::new(ConnShared { sendq: Arc::clone(&sendq), done: AtomicBool::new(false) });

    let reader_conn = Arc::clone(&conn);
    let reader_ctx = Arc::clone(ctx);
    let reader = std::thread::Builder::new()
        .name("pass-server-reader".into())
        .spawn(move || reader_loop(stream, reader_conn, reader_ctx))?;
    let writer_stats = Arc::clone(&shared.stats);
    let writer = std::thread::Builder::new()
        .name("pass-server-writer".into())
        .spawn(move || writer_loop(write_half, sendq, writer_stats))?;

    shared.conns.lock().unwrap_or_else(PoisonError::into_inner).push(ConnEntry {
        shared: conn,
        reader,
        writer,
    });
    Ok(())
}

/// Joins and removes connections whose reader has exited, so the
/// registry does not grow with connection churn.
fn reap_finished(shared: &Arc<ServerShared>) {
    let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
    let mut kept = Vec::with_capacity(conns.len());
    for entry in conns.drain(..) {
        if entry.shared.done.load(Ordering::Acquire) {
            let _joined = entry.reader.join();
            let _joined = entry.writer.join();
        } else {
            kept.push(entry);
        }
    }
    *conns = kept;
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time counter snapshot (the in-process twin of the
    /// `Stats` request frame).
    pub fn stats(&self) -> StatsBody {
        self.shared.stats.snapshot()
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Graceful SIGTERM-style drain:
    ///
    /// 1. stop accepting (the listener closes; new connects are refused
    ///    by the OS, and racing accepts get a terminal `Goodbye`);
    /// 2. readers finish the request they are processing — in-flight
    ///    commits complete, nothing new is read;
    /// 3. subscription pumps stop, each terminating its stream with a
    ///    `SubClosed` frame, and every connection gets a terminal
    ///    `Goodbye` before its writer flushes and closes;
    /// 4. the store's WALs are flushed to disk.
    ///
    /// Idempotent; returns once every connection thread has exited and
    /// the flush is durable.
    pub fn shutdown(mut self) -> Result<()> {
        self.drain_inner()
    }

    fn drain_inner(&mut self) -> Result<()> {
        self.shared.draining.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            if accept.join().is_err() {
                return Err(ServerError::Closed);
            }
        }
        let entries: Vec<ConnEntry> = {
            let mut conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            conns.drain(..).collect()
        };
        for entry in entries {
            let _joined = entry.reader.join();
            let _joined = entry.writer.join();
        }
        self.shared.pass.flush()?;
        Ok(())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            let _result = self.drain_inner();
        }
    }
}
