//! Per-connection machinery: one reader thread, one writer thread, and
//! a bounded send queue between every producer and the socket.
//!
//! # Threading model
//!
//! Each accepted connection owns exactly two OS threads:
//!
//! * the **reader** blocks on the socket (with a short timeout so it can
//!   observe drain), decodes frames, and *dispatches inline* — publishes
//!   commit on the reader thread itself, so a connection's requests are
//!   processed in order and server-wide ingest concurrency equals the
//!   number of busy connections (the shard locks underneath provide the
//!   actual parallelism);
//! * the **writer** drains the send queue and owns all socket writes.
//!
//! Subscription pushes come from per-subscription **pump** threads that
//! drain a [`pass_core::Subscription`] and enqueue `Notify` frames.
//!
//! # Flow control
//!
//! The send queue is bounded in frames and bytes. The two producer
//! classes differ in what happens at the bound:
//!
//! * **replies** (responses to requests) wait for space — this is
//!   backpressure on the reader, and therefore on the client's request
//!   stream. A client that never drains its socket stalls its own
//!   replies and is disconnected after [`ConnConfig::reply_stall`];
//! * **pushes** (subscription notifications) are *shed*: ingest must
//!   never block on a slow subscriber, so the frame is dropped, the
//!   shed is counted, and the subscriber receives a `Lagged` frame
//!   accounting for the missed records once space reappears — the same
//!   contract as the in-process subscription queues.

use crate::admission::AdmissionGate;
use crate::frame::{encode_msg, FrameDecoder};
use crate::stats::ServerStats;
use pass_core::{Event, Pass};
use pass_distrib::wire::WireMsg;
use pass_model::codec::Reader;
use pass_model::TupleSetId;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection tuning. Embedded in `ServerConfig`.
#[derive(Debug, Clone)]
pub struct ConnConfig {
    /// Send-queue capacity in frames.
    pub send_queue_frames: usize,
    /// Send-queue capacity in bytes (whichever bound hits first).
    pub send_queue_bytes: usize,
    /// Socket read timeout: the reader's drain-check cadence, and the
    /// bound on how long a mid-frame stall can hold the thread.
    pub read_timeout: Duration,
    /// How long a reply may wait for send-queue space before the
    /// connection is declared dead (client not draining its socket).
    pub reply_stall: Duration,
    /// Page size used when a `QueryPage` request asks for `limit = 0`.
    pub default_page: usize,
    /// Hard cap on a single result page.
    pub max_page: usize,
    /// Capacity (ids) of one `Notify` frame; matches are coalesced up
    /// to this many per push.
    pub notify_batch: usize,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            send_queue_frames: 512,
            send_queue_bytes: 8 << 20,
            read_timeout: Duration::from_millis(50),
            reply_stall: Duration::from_secs(10),
            default_page: 32,
            max_page: 4096,
            notify_batch: 256,
        }
    }
}

/// Outcome of a non-blocking push enqueue.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushOutcome {
    /// Queued for the writer.
    Queued,
    /// Dropped: the queue was at capacity.
    Shed,
    /// The connection is closed.
    Closed,
}

/// Result of a writer-side dequeue.
enum Pop {
    Frame(Vec<u8>),
    Empty,
    Closed,
}

#[derive(Debug, Default)]
struct QueueInner {
    frames: VecDeque<Vec<u8>>,
    bytes: usize,
    closed: bool,
}

/// Bounded frame queue between producers (reader, pumps) and the writer.
#[derive(Debug)]
pub(crate) struct SendQueue {
    /// Lock order: leaf — nothing else is acquired while this is held.
    sendq: Mutex<QueueInner>,
    space: Condvar,
    ready: Condvar,
    cap_frames: usize,
    cap_bytes: usize,
}

impl SendQueue {
    pub(crate) fn new(cap_frames: usize, cap_bytes: usize) -> Arc<Self> {
        Arc::new(SendQueue {
            sendq: Mutex::new(QueueInner::default()),
            space: Condvar::new(),
            ready: Condvar::new(),
            cap_frames,
            cap_bytes,
        })
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.sendq.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Frames currently queued (the admission gate's queue-depth input).
    pub(crate) fn depth(&self) -> usize {
        self.locked().frames.len()
    }

    /// Enqueues a reply, waiting up to `stall` for space. `Err` means
    /// the connection is closed or the client stalled too long.
    pub(crate) fn push_reply(&self, frame: Vec<u8>, stall: Duration) -> Result<(), ()> {
        let deadline = Instant::now() + stall;
        let mut inner = self.locked();
        loop {
            if inner.closed {
                return Err(());
            }
            if inner.frames.len() < self.cap_frames && inner.bytes < self.cap_bytes {
                inner.bytes += frame.len();
                inner.frames.push_back(frame);
                self.ready.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (guard, _timeout) = self
                .space
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Enqueues a push if space allows; sheds otherwise.
    pub(crate) fn try_push(&self, frame: Vec<u8>) -> PushOutcome {
        let mut inner = self.locked();
        if inner.closed {
            return PushOutcome::Closed;
        }
        if inner.frames.len() >= self.cap_frames || inner.bytes >= self.cap_bytes {
            return PushOutcome::Shed;
        }
        inner.bytes += frame.len();
        inner.frames.push_back(frame);
        self.ready.notify_one();
        PushOutcome::Queued
    }

    /// Marks the queue closed. Already-queued frames are still drained
    /// by the writer; producers fail from now on.
    pub(crate) fn close(&self) {
        let mut inner = self.locked();
        inner.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Writer-side dequeue with a timeout.
    fn pop_timeout(&self, timeout: Duration) -> Pop {
        let mut inner = self.locked();
        if let Some(frame) = inner.frames.pop_front() {
            inner.bytes -= frame.len();
            self.space.notify_all();
            return Pop::Frame(frame);
        }
        if inner.closed {
            return Pop::Closed;
        }
        let (mut guard, _timeout) =
            self.ready.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        match guard.frames.pop_front() {
            Some(frame) => {
                guard.bytes -= frame.len();
                self.space.notify_all();
                Pop::Frame(frame)
            }
            None if guard.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }
}

/// State shared between one connection's threads.
pub(crate) struct ConnShared {
    pub(crate) sendq: Arc<SendQueue>,
    /// Set once the reader has exited (registry reaping).
    pub(crate) done: AtomicBool,
}

/// Everything a connection needs from the server.
pub(crate) struct ServerCtx {
    pub(crate) pass: Arc<Pass>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) gate: Arc<AdmissionGate>,
    pub(crate) draining: Arc<AtomicBool>,
    pub(crate) config: ConnConfig,
}

struct Pump {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// Why the reader loop ended (drives the teardown frames).
enum ReaderExit {
    /// Clean client close or client-side error: no farewell owed.
    Peer,
    /// Server drain: finish in-flight work, say goodbye.
    Drain,
    /// The send queue died (writer error / reply stall).
    QueueDead,
}

/// The reader thread body: frame decode loop + inline dispatch.
pub(crate) fn reader_loop(mut stream: TcpStream, conn: Arc<ConnShared>, ctx: Arc<ServerCtx>) {
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 16 << 10];
    let mut pumps: Vec<Pump> = Vec::new();
    let mut exit = ReaderExit::Peer;

    'conn: loop {
        if ctx.draining.load(Ordering::Acquire) {
            exit = ReaderExit::Drain;
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // Clean EOF between frames, torn frame inside one. A
                // torn frame is a protocol error, but the peer is gone:
                // there is nobody left to send it to, so it only ends
                // the connection (never panics, never hangs — the read
                // timeout bounds every wait).
                break;
            }
            Ok(n) => {
                ServerStats::add(&ctx.stats.bytes_in, n as u64);
                dec.extend(buf.get(..n).unwrap_or_default());
                loop {
                    match dec.next_frame() {
                        Ok(Some(frame)) => {
                            match dispatch(&frame.kind, &frame.payload, &conn, &ctx, &mut pumps) {
                                Ok(()) => {}
                                Err(()) => {
                                    exit = ReaderExit::QueueDead;
                                    break 'conn;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Framing is unrecoverable: the stream can
                            // no longer be trusted. Tell the client why
                            // (best effort) and drop the connection.
                            let farewell =
                                encode_msg(&WireMsg::Error { op: 0, message: e.to_string() });
                            let _queued = conn.sendq.try_push(farewell);
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }

    // Teardown. Order matters: pumps first (each sends its terminal
    // SubClosed), then the connection-terminal Goodbye on drain, then
    // close the queue so the writer flushes and exits.
    for pump in &pumps {
        pump.stop.store(true, Ordering::Release);
    }
    for pump in pumps {
        let _joined = pump.handle.join();
    }
    if matches!(exit, ReaderExit::Drain) {
        let _queued =
            conn.sendq.push_reply(encode_msg(&WireMsg::Goodbye { op: 0 }), ctx.config.reply_stall);
    }
    conn.sendq.close();
    if let Err(_e) = stream.shutdown(Shutdown::Read) {
        // Peer already gone; the writer half closes the rest.
    }
    ServerStats::drop_gauge(&ctx.stats.conns_active);
    conn.done.store(true, Ordering::Release);
}

/// The writer thread body: drain the queue, own all socket writes.
pub(crate) fn writer_loop(mut stream: TcpStream, sendq: Arc<SendQueue>, stats: Arc<ServerStats>) {
    loop {
        match sendq.pop_timeout(Duration::from_millis(100)) {
            Pop::Frame(bytes) => match stream.write_all(&bytes) {
                Ok(()) => ServerStats::add(&stats.bytes_out, bytes.len() as u64),
                Err(_) => {
                    // Peer unreachable: close the queue so producers
                    // fail fast instead of queueing into the void.
                    sendq.close();
                    break;
                }
            },
            Pop::Empty => continue,
            Pop::Closed => {
                if let Err(_e) = stream.flush() {
                    // Peer already gone; nothing further to deliver.
                }
                break;
            }
        }
    }
    if let Err(_e) = stream.shutdown(Shutdown::Write) {
        // Already closed by the peer or the reader half.
    }
}

/// Handles one decoded frame on the reader thread. `Err(())` means the
/// connection is dead (send queue closed or reply stalled out).
fn dispatch(
    kind: &u8,
    payload: &[u8],
    conn: &Arc<ConnShared>,
    ctx: &Arc<ServerCtx>,
    pumps: &mut Vec<Pump>,
) -> Result<(), ()> {
    let reply = |msg: &WireMsg| conn.sendq.push_reply(encode_msg(msg), ctx.config.reply_stall);

    // Peek the op (always the body's first varint) so sheds and decode
    // errors can name the operation without decoding the whole body.
    let op = {
        let mut r = Reader::new(payload);
        match r.take_varint("wire op") {
            Ok(op) => op,
            Err(e) => return reply(&WireMsg::Error { op: 0, message: e.to_string() }),
        }
    };

    // Admission control, before the batch is even decoded: shedding
    // must stay cheap when the server is busiest.
    if *kind == 0x01 {
        let permit = ctx.gate.try_admit(payload.len() as u64, conn.sendq.depth());
        let Some(_permit) = permit else {
            ServerStats::bump(&ctx.stats.publishes_rejected);
            return reply(&WireMsg::Overloaded { op });
        };
        let msg = match WireMsg::decode_body(*kind, payload) {
            Ok(msg) => msg,
            Err(e) => return reply(&WireMsg::Error { op, message: e.to_string() }),
        };
        let WireMsg::Publish { op, sets } = msg else {
            return reply(&WireMsg::Error { op, message: "kind/body mismatch".into() });
        };
        return match ctx.pass.ingest_batch(&sets) {
            Ok(ids) => {
                ServerStats::bump(&ctx.stats.publishes_ok);
                ServerStats::add(&ctx.stats.records_ingested, sets.len() as u64);
                reply(&WireMsg::PublishOk { op, ids })
            }
            Err(e) => reply(&WireMsg::Error { op, message: e.to_string() }),
        };
    }

    let msg = match WireMsg::decode_body(*kind, payload) {
        Ok(msg) => msg,
        Err(e) => return reply(&WireMsg::Error { op, message: e.to_string() }),
    };
    match msg {
        WireMsg::QueryPage { op, query, after, limit } => {
            ServerStats::bump(&ctx.stats.queries);
            let page = match limit as usize {
                0 => ctx.config.default_page,
                n => n.min(ctx.config.max_page),
            };
            let mut parsed = match pass_query::parse(&query) {
                Ok(q) => q,
                Err(e) => return reply(&WireMsg::Error { op, message: e.to_string() }),
            };
            parsed.limit = Some(page);
            if after.is_some() {
                parsed.after = after;
            }
            match ctx.pass.query(&parsed) {
                Ok(result) => {
                    let ids: Vec<TupleSetId> = result.ids();
                    let done = ids.len() < page;
                    reply(&WireMsg::ResultPage { op, ids, done })
                }
                Err(e) => reply(&WireMsg::Error { op, message: e.to_string() }),
            }
        }
        WireMsg::Subscribe { op, statement } => match ctx.pass.subscribe_text(&statement) {
            Ok(sub) => {
                ServerStats::bump(&ctx.stats.subscriptions);
                let stop = Arc::new(AtomicBool::new(false));
                let handle = spawn_pump(op, sub, Arc::clone(&stop), Arc::clone(conn), ctx);
                pumps.push(Pump { stop, handle });
                Ok(())
            }
            Err(e) => reply(&WireMsg::Error { op, message: e.to_string() }),
        },
        WireMsg::Stats { op } => reply(&WireMsg::StatsReply { op, stats: ctx.stats.snapshot() }),
        other => reply(&WireMsg::Error {
            op: other.op(),
            message: format!("kind 0x{:02x} is not a request", other.kind()),
        }),
    }
}

/// Spawns the pump thread for one subscription: drains events, coalesces
/// matches into `Notify` frames, sheds to `Lagged` when the send queue
/// is full, and always terminates the stream with `SubClosed`.
fn spawn_pump(
    op: u64,
    mut sub: pass_core::Subscription,
    stop: Arc<AtomicBool>,
    conn: Arc<ConnShared>,
    ctx: &Arc<ServerCtx>,
) -> JoinHandle<()> {
    let ctx = Arc::clone(ctx);
    std::thread::spawn(move || {
        // Records the pump knows were missed: queue sheds here, plus
        // in-process subscription lag. Reported in the next Lagged
        // frame that fits.
        let mut owed_lag: u64 = 0;
        'pump: loop {
            if stop.load(Ordering::Acquire) || ctx.draining.load(Ordering::Acquire) {
                break;
            }
            // Settle any lag debt first, so Lagged frames keep their
            // position in the stream.
            if owed_lag > 0 {
                match conn.sendq.try_push(encode_msg(&WireMsg::Lagged { op, missed: owed_lag })) {
                    PushOutcome::Queued => owed_lag = 0,
                    PushOutcome::Shed => {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    PushOutcome::Closed => break,
                }
            }
            let first = match sub.next_timeout(Duration::from_millis(50)) {
                Some(event) => event,
                None => continue,
            };
            match first {
                Event::CaughtUp { version } => {
                    match conn.sendq.try_push(encode_msg(&WireMsg::SubCaughtUp { op, version })) {
                        PushOutcome::Queued => {}
                        PushOutcome::Shed => {
                            // CaughtUp is a position marker; a shed here
                            // degrades to lag like anything else.
                            owed_lag += 1;
                        }
                        PushOutcome::Closed => break 'pump,
                    }
                }
                Event::Lagged(n) => owed_lag += n,
                Event::Match(record) => {
                    let mut ids = vec![record.id];
                    let mut caught_up = None;
                    while ids.len() < ctx.config.notify_batch {
                        match sub.try_next() {
                            Some(Event::Match(r)) => ids.push(r.id),
                            Some(Event::Lagged(n)) => {
                                owed_lag += n;
                                break;
                            }
                            Some(Event::CaughtUp { version }) => {
                                // Seen mid-coalesce (catch-up matches end
                                // here); the marker frame goes out right
                                // after this Notify.
                                caught_up = Some(version);
                                break;
                            }
                            None => break,
                        }
                    }
                    let missed = ids.len() as u64;
                    match conn.sendq.try_push(encode_msg(&WireMsg::Notify { op, ids })) {
                        PushOutcome::Queued => {}
                        PushOutcome::Shed => {
                            ServerStats::add(&ctx.stats.queue_shed, 1);
                            owed_lag += missed;
                        }
                        PushOutcome::Closed => break 'pump,
                    }
                    if let Some(version) = caught_up {
                        match conn.sendq.try_push(encode_msg(&WireMsg::SubCaughtUp { op, version }))
                        {
                            PushOutcome::Queued => {}
                            PushOutcome::Shed => owed_lag += 1,
                            PushOutcome::Closed => break 'pump,
                        }
                    }
                }
            }
        }
        // Terminal frame: subscribers can rely on SubClosed (or the
        // connection-level Goodbye) ending every subscription stream.
        let _queued =
            conn.sendq.push_reply(encode_msg(&WireMsg::SubClosed { op }), Duration::from_secs(1));
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn send_queue_sheds_pushes_but_blocks_replies() {
        let q = SendQueue::new(2, 1 << 20);
        assert_eq!(q.try_push(vec![1]), PushOutcome::Queued);
        assert_eq!(q.try_push(vec![2]), PushOutcome::Queued);
        assert_eq!(q.try_push(vec![3]), PushOutcome::Shed);
        // A reply waits for space and times out when nobody drains.
        assert!(q.push_reply(vec![4], Duration::from_millis(30)).is_err());
        // Drain one; both producer classes fit again.
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Frame(_)));
        assert_eq!(q.try_push(vec![5]), PushOutcome::Queued);
    }

    #[test]
    fn closed_queue_fails_producers_and_drains_consumers() {
        let q = SendQueue::new(8, 1 << 20);
        assert_eq!(q.try_push(vec![1]), PushOutcome::Queued);
        q.close();
        assert_eq!(q.try_push(vec![2]), PushOutcome::Closed);
        assert!(q.push_reply(vec![3], Duration::from_millis(10)).is_err());
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Frame(_)));
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Closed));
    }

    #[test]
    fn byte_cap_bounds_queue() {
        let q = SendQueue::new(100, 10);
        assert_eq!(q.try_push(vec![0; 10]), PushOutcome::Queued);
        assert_eq!(q.try_push(vec![0; 1]), PushOutcome::Shed);
    }
}
