//! Shared helpers for the server integration tests.
#![allow(dead_code, clippy::unwrap_used, clippy::expect_used)]

use pass_core::Pass;
use pass_model::SiteId;
use pass_server::{serve, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::sync::Arc;

/// Starts a server over a fresh in-memory store on an ephemeral port.
pub fn start_memory_server(config: ServerConfig) -> (ServerHandle, SocketAddr, Arc<Pass>) {
    let pass = Arc::new(Pass::open_memory(SiteId(1)));
    let server = serve("127.0.0.1:0", Arc::clone(&pass), config).expect("bind ephemeral");
    let addr = server.addr();
    (server, addr, pass)
}

/// A small unique publish batch (delegates to the loadgen workload
/// builder so test payloads match what E24 sends).
pub fn batch(conn: u32, seq: u64) -> Vec<pass_model::TupleSet> {
    pass_loadgen::workload::batch(conn, seq, 2, 2)
}
