//! Admission control under pressure: over-threshold publishes are shed
//! with explicit `Overloaded` replies, admitted work still commits, and
//! the server's rejection counters agree with what clients observed.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::{batch, start_memory_server};
use pass_server::{AdmissionConfig, Client, PublishOutcome, ServerConfig};
use std::time::Duration;

fn tiny_budget_config(max_in_flight_bytes: u64) -> ServerConfig {
    ServerConfig {
        admission: AdmissionConfig { max_in_flight_bytes, ..AdmissionConfig::default() },
        ..ServerConfig::default()
    }
}

#[test]
fn over_budget_publish_is_shed_not_hung() {
    // A byte budget smaller than any publish payload: everything sheds.
    let (server, addr, _pass) = start_memory_server(tiny_budget_config(16));
    let mut client = Client::connect(addr).expect("connect");

    for seq in 0..5u64 {
        match client.publish(batch(1, seq)).expect("publish answers") {
            PublishOutcome::Overloaded => {}
            PublishOutcome::Committed(_) => panic!("16-byte budget cannot admit a batch"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.publishes_rejected, 5);
    assert_eq!(stats.publishes_ok, 0);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn shed_is_explicit_and_recoverable() {
    // Generous enough for exactly one in-flight publish at a time; the
    // budget frees when the reply is sent, so sequential publishes all
    // commit. This pins the RAII release: shed would mean a leak.
    let (server, addr, _pass) = start_memory_server(tiny_budget_config(1 << 20));
    let mut client = Client::connect(addr).expect("connect");

    for seq in 0..10u64 {
        match client.publish(batch(2, seq)).expect("publish") {
            PublishOutcome::Committed(ids) => assert_eq!(ids.len(), 2),
            PublishOutcome::Overloaded => panic!("budget must be released between publishes"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.publishes_ok, 10);
    assert_eq!(stats.publishes_rejected, 0);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn mixed_sizes_shed_only_over_budget_batches() {
    // Budget sized between a small and a large batch: the gate sheds by
    // payload size, deterministically, while small work keeps flowing —
    // overload degrades service, it does not stop it.
    let small = pass_loadgen::workload::batch(3, 0, 1, 1);
    let small_payload = {
        use pass_distrib::wire::WireMsg;
        let mut buf = Vec::new();
        WireMsg::Publish { op: 1, sets: small.clone() }.encode_body(&mut buf);
        buf.len() as u64
    };
    let (server, addr, _pass) = start_memory_server(tiny_budget_config(small_payload * 4));
    let mut client = Client::connect(addr).expect("connect");

    let mut committed = 0u64;
    let mut shed = 0u64;
    for round in 0..6u64 {
        match client.publish(pass_loadgen::workload::batch(3, round * 2, 1, 1)).expect("small") {
            PublishOutcome::Committed(_) => committed += 1,
            PublishOutcome::Overloaded => panic!("small batches fit the budget"),
        }
        match client.publish(pass_loadgen::workload::batch(3, round * 2 + 1, 64, 8)).expect("large")
        {
            PublishOutcome::Overloaded => shed += 1,
            PublishOutcome::Committed(_) => panic!("64-set batches exceed the budget"),
        }
    }
    assert_eq!((committed, shed), (6, 6));

    let stats = server.stats();
    assert_eq!(stats.publishes_ok, committed);
    assert_eq!(stats.publishes_rejected, shed);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn open_loop_run_accounts_for_every_publish() {
    // An open-loop burst against a modest byte budget. Whether or not
    // the gate fires on this host, the books must balance: committed +
    // overloaded = sent, client and server counters agree, and nothing
    // errors or goes unanswered.
    let (server, addr, _pass) = start_memory_server(tiny_budget_config(8 << 10));

    let config = pass_loadgen::LoadConfig {
        offered_rate: 400.0,
        duration: Duration::from_secs(2),
        connections: 4,
        sets_per_batch: 4,
        readings_per_set: 4,
        seed: 7,
        drain: Duration::from_secs(5),
    };
    let report = pass_loadgen::run(addr, &config).expect("load run");

    assert!(report.sent > 0, "generator sent something");
    assert_eq!(report.errors, 0, "no protocol errors under load");
    assert_eq!(
        report.committed + report.overloaded,
        report.sent,
        "every publish answered within the drain window (unanswered={})",
        report.unanswered
    );
    assert!(report.latency.count == report.committed);

    let stats = server.stats();
    assert_eq!(stats.publishes_rejected, report.overloaded, "shed counters agree");
    assert_eq!(stats.publishes_ok, report.committed, "commit counters agree");
    server.shutdown().expect("clean shutdown");
}
