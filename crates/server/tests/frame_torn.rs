//! Decoder robustness over real sockets: garbage, torn frames,
//! oversized length prefixes, CRC flips, and mid-frame disconnects must
//! surface as protocol errors (or clean closes) — never panics, never
//! hangs, and never poisoning *other* connections.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::{batch, start_memory_server};
use pass_distrib::wire::{WireMsg, PROTO_VERSION};
use pass_server::frame::{encode_msg, MAGIC};
use pass_server::{Client, PublishOutcome, ServerConfig, ServerError};
use std::time::Duration;

/// Sends `bytes` raw and expects an `Error` reply followed by a closed
/// connection.
fn expect_protocol_error(addr: std::net::SocketAddr, bytes: &[u8], expect_in_message: &str) {
    let mut client = Client::connect(addr).expect("connect");
    client.send_raw(bytes).expect("send raw bytes");
    let mut saw_error = false;
    loop {
        match client.next_msg(Duration::from_secs(5)) {
            Ok(Some(WireMsg::Error { message, .. })) => {
                assert!(
                    message.contains(expect_in_message),
                    "error message {message:?} should mention {expect_in_message:?}"
                );
                saw_error = true;
            }
            Ok(Some(other)) => panic!("unexpected reply {other:?}"),
            Ok(None) => panic!("server went silent instead of replying or closing"),
            Err(ServerError::Closed) | Err(ServerError::Io(_)) | Err(ServerError::Frame(_)) => {
                break;
            }
            Err(other) => panic!("unexpected client error {other}"),
        }
    }
    assert!(saw_error, "server explained the protocol error before closing");
}

#[test]
fn garbage_bytes_get_error_then_close() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    expect_protocol_error(addr, &[0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3, 4, 5, 6, 7], "magic");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn wrong_version_gets_error_then_close() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut bytes = encode_msg(&WireMsg::Stats { op: 1 });
    bytes[2] = PROTO_VERSION + 9;
    expect_protocol_error(addr, &bytes, "version");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn oversized_length_prefix_fails_fast() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    // A header declaring a 1 GiB payload, with no payload following. The
    // server must reject on the header alone — within the 5 s client
    // timeout — rather than buffering toward a gigabyte that never comes.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(PROTO_VERSION);
    bytes.push(0x01);
    bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 4]);
    expect_protocol_error(addr, &bytes, "exceeds");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn crc_flip_is_rejected() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut bytes = encode_msg(&WireMsg::Publish { op: 7, sets: batch(1, 0) });
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    expect_protocol_error(addr, &bytes, "crc");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn mid_frame_disconnect_leaves_server_healthy() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());

    // Half a frame, then vanish.
    {
        let mut rude = Client::connect(addr).expect("connect");
        let bytes = encode_msg(&WireMsg::Publish { op: 1, sets: batch(1, 0) });
        rude.send_raw(&bytes[..bytes.len() / 2]).expect("send half frame");
    } // dropped here: TCP FIN mid-frame

    // The server shrugs it off; a well-behaved client is unaffected.
    let mut polite = Client::connect(addr).expect("connect after rude peer");
    match polite.publish(batch(1, 1)).expect("publish") {
        PublishOutcome::Committed(ids) => assert_eq!(ids.len(), 2),
        PublishOutcome::Overloaded => panic!("default thresholds should admit"),
    }
    server.shutdown().expect("clean shutdown");
}

#[test]
fn stalled_mid_frame_peer_does_not_block_others() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());

    // A peer that sends half a frame and then just… waits.
    let mut stalled = Client::connect(addr).expect("connect staller");
    let bytes = encode_msg(&WireMsg::Publish { op: 1, sets: batch(2, 0) });
    stalled.send_raw(&bytes[..bytes.len() - 5]).expect("send most of a frame");

    // Meanwhile other connections make full round trips.
    let mut worker = Client::connect(addr).expect("connect worker");
    for seq in 0..3u64 {
        match worker.publish(batch(3, seq)).expect("publish") {
            PublishOutcome::Committed(_) => {}
            PublishOutcome::Overloaded => panic!("default thresholds should admit"),
        }
    }

    // The staller can still finish its frame later — a slow peer is not
    // a protocol error.
    stalled.send_raw(&bytes[bytes.len() - 5..]).expect("finish frame");
    match stalled.next_msg(Duration::from_secs(5)).expect("reply") {
        Some(WireMsg::PublishOk { op, ids }) => {
            assert_eq!(op, 1);
            assert_eq!(ids.len(), 2);
        }
        other => panic!("expected PublishOk, got {other:?}"),
    }
    server.shutdown().expect("clean shutdown");
}

#[test]
fn valid_then_garbage_processes_the_valid_frame_first() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let mut bytes = encode_msg(&WireMsg::Publish { op: 5, sets: batch(4, 0) });
    bytes.extend_from_slice(&[0xff; 16]);
    client.send_raw(&bytes).expect("send frame + garbage");

    match client.next_msg(Duration::from_secs(5)).expect("first reply") {
        Some(WireMsg::PublishOk { op, .. }) => assert_eq!(op, 5),
        other => panic!("expected PublishOk, got {other:?}"),
    }
    match client.next_msg(Duration::from_secs(5)) {
        Ok(Some(WireMsg::Error { message, .. })) => {
            assert!(message.contains("magic"), "{message:?}")
        }
        Ok(other) => panic!("expected Error for trailing garbage, got {other:?}"),
        Err(ServerError::Closed) | Err(ServerError::Io(_)) => {}
        Err(other) => panic!("unexpected client error {other}"),
    }
    server.shutdown().expect("clean shutdown");
}
