//! Graceful SIGTERM-style drain: no new connections, in-flight work
//! finishes, subscriptions end with a terminal frame, WALs are flushed
//! and the data survives a reopen.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::batch;
use pass_core::{Pass, PassConfig};
use pass_distrib::wire::WireMsg;
use pass_model::SiteId;
use pass_server::{serve, Client, PublishOutcome, ServerConfig};
use pass_storage::tempdir::TempDir;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn drain_closes_subscriptions_flushes_wal_and_refuses_new_connects() {
    let dir = TempDir::new("server-drain");
    let pass =
        Arc::new(Pass::open(PassConfig::disk(SiteId(1), dir.path())).expect("open disk store"));
    let server = serve("127.0.0.1:0", Arc::clone(&pass), ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    let sub_op = client.subscribe(r#"SUBSCRIBE FIND WHERE domain = "loadgen""#).expect("subscribe");
    let committed = match client.publish(batch(1, 0)).expect("publish") {
        PublishOutcome::Committed(ids) => ids,
        PublishOutcome::Overloaded => panic!("default thresholds should admit"),
    };
    assert_eq!(committed.len(), 2);

    // Collect the client's view of the drain on a side thread while the
    // main thread runs the blocking shutdown.
    let collector = std::thread::spawn(move || {
        let mut frames = Vec::new();
        loop {
            match client.next_msg(Duration::from_secs(10)) {
                Ok(Some(msg)) => frames.push(msg),
                Ok(None) => break, // silent timeout: drain stalled
                Err(_) => break,   // clean close after the farewell
            }
        }
        frames
    });

    std::thread::sleep(Duration::from_millis(100));
    assert!(!server.is_draining());
    server.shutdown().expect("drain completes");

    let frames = collector.join().expect("collector thread");
    let closed_at = frames
        .iter()
        .position(|m| matches!(m, WireMsg::SubClosed { op } if *op == sub_op))
        .expect("subscription ended with a terminal SubClosed frame");
    let goodbye_at = frames
        .iter()
        .position(|m| matches!(m, WireMsg::Goodbye { .. }))
        .expect("connection ended with a terminal Goodbye frame");
    assert!(closed_at < goodbye_at, "SubClosed precedes the connection farewell");

    // The listener is gone: new connections are refused at the OS level.
    assert!(TcpStream::connect(addr).is_err(), "post-drain connects must be refused, not accepted");

    // The drain flushed the WAL: a fresh engine over the same directory
    // sees every committed set.
    drop(pass);
    let reopened = Pass::open(PassConfig::disk(SiteId(1), dir.path())).expect("reopen after drain");
    let result = reopened.query_text(r#"FIND WHERE domain = "loadgen""#).expect("query");
    let mut survived = result.ids();
    survived.sort();
    let mut expected = committed;
    expected.sort();
    assert_eq!(survived, expected, "committed sets survive the drain");
}

#[test]
fn drain_with_no_connections_is_immediate_and_idempotent_via_drop() {
    let pass = Arc::new(Pass::open_memory(SiteId(1)));
    let server = serve("127.0.0.1:0", Arc::clone(&pass), ServerConfig::default()).expect("bind");
    let addr = server.addr();
    assert!(TcpStream::connect(addr).is_ok());
    server.shutdown().expect("drain with no connections");
    // ServerHandle::drop after shutdown must not double-drain (shutdown
    // consumed the handle; this exercises the Drop guard on a second
    // handle as well).
    let again = serve("127.0.0.1:0", pass, ServerConfig::default()).expect("rebind");
    drop(again);
}

#[test]
fn connections_accepted_during_lifetime_finish_their_reply_before_drain() {
    let (server, addr, _pass) = common::start_memory_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // Publish right as the drain starts; the already-read request must
    // be answered (in-flight work finishes), not dropped.
    let publisher = std::thread::spawn(move || {
        let mut answered = 0u64;
        for seq in 0..50u64 {
            match client.publish(batch(2, seq)) {
                Ok(PublishOutcome::Committed(_)) => answered += 1,
                Ok(PublishOutcome::Overloaded) => {}
                Err(_) => break, // drain closed the connection between requests
            }
        }
        answered
    });
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown().expect("drain during traffic");
    let answered = publisher.join().expect("publisher thread");
    assert!(answered > 0, "at least the pre-drain publishes were answered");
}
