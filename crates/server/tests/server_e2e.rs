//! End-to-end protocol tests over real sockets: publish, paged query,
//! subscription push, and stats.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::{batch, start_memory_server};
use pass_distrib::wire::WireMsg;
use pass_server::{Client, PublishOutcome, ServerConfig};
use std::collections::BTreeSet;
use std::time::Duration;

#[test]
fn publish_then_query_round_trip() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let sets = batch(1, 0);
    let want: usize = sets.len();
    let outcome = client.publish(sets).expect("publish");
    let PublishOutcome::Committed(ids) = outcome else {
        panic!("expected commit, got {outcome:?}");
    };
    assert_eq!(ids.len(), want);

    let (got, done) =
        client.query_page(r#"FIND WHERE domain = "loadgen""#, None, 16).expect("query");
    assert!(done);
    assert_eq!(
        got.iter().collect::<BTreeSet<_>>(),
        ids.iter().collect::<BTreeSet<_>>(),
        "query returns exactly the published sets"
    );
    server.shutdown().expect("clean shutdown");
}

#[test]
fn query_pages_cover_everything_exactly_once() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let mut published = BTreeSet::new();
    for seq in 0..20u64 {
        match client.publish(batch(2, seq)).expect("publish") {
            PublishOutcome::Committed(ids) => published.extend(ids),
            PublishOutcome::Overloaded => panic!("default thresholds should admit"),
        }
    }
    assert_eq!(published.len(), 40, "20 batches x 2 sets, all unique");

    // Page size 7 exercises several partial pages and the final short one.
    let all = client.query_all(r#"FIND WHERE domain = "loadgen""#, 7).expect("paged query");
    assert_eq!(all.len(), published.len(), "no duplicates, no gaps");
    assert_eq!(all.iter().collect::<BTreeSet<_>>(), published.iter().collect());
    server.shutdown().expect("clean shutdown");
}

#[test]
fn subscription_pushes_matches() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut publisher = Client::connect(addr).expect("connect publisher");
    let mut subscriber = Client::connect(addr).expect("connect subscriber");

    let sub_op =
        subscriber.subscribe(r#"SUBSCRIBE FIND WHERE domain = "loadgen""#).expect("subscribe");

    // The subscription starts against an empty store; it signals
    // caught-up before live matches flow.
    let mut caught_up = false;
    let mut notified = BTreeSet::new();
    let published: BTreeSet<_> = match publisher.publish(batch(3, 0)).expect("publish") {
        PublishOutcome::Committed(ids) => ids.into_iter().collect(),
        PublishOutcome::Overloaded => panic!("default thresholds should admit"),
    };

    // Order depends on timing: a pre-subscription commit arrives as a
    // catch-up Notify *before* SubCaughtUp; a post-subscription commit
    // arrives after it. Collect until both have been seen.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while (!caught_up || notified.len() < published.len()) && std::time::Instant::now() < deadline {
        match subscriber.next_push(Duration::from_millis(200)).expect("push stream") {
            Some(WireMsg::SubCaughtUp { op, .. }) => {
                assert_eq!(op, sub_op);
                caught_up = true;
            }
            Some(WireMsg::Notify { op, ids }) => {
                assert_eq!(op, sub_op);
                notified.extend(ids);
            }
            Some(other) => panic!("unexpected push {other:?}"),
            None => {}
        }
    }
    assert!(caught_up, "subscription reported catch-up");
    assert_eq!(notified, published, "every committed set was pushed");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn stats_frame_reports_server_counters() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    for seq in 0..3u64 {
        client.publish(batch(4, seq)).expect("publish");
    }
    client.query_page(r#"FIND WHERE domain = "loadgen""#, None, 8).expect("query");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.publishes_ok, 3);
    assert_eq!(stats.records_ingested, 6);
    assert_eq!(stats.queries, 1);
    assert_eq!(stats.conns_accepted, 1);
    assert_eq!(stats.conns_active, 1);
    assert_eq!(stats.publishes_rejected, 0);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);

    // The in-process snapshot and the wire snapshot agree.
    let local = server.stats();
    assert_eq!(local.publishes_ok, stats.publishes_ok);
    assert_eq!(local.records_ingested, stats.records_ingested);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn malformed_statement_gets_error_not_disconnect() {
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let err = client.query_page("THIS IS NOT A QUERY", None, 8);
    assert!(err.is_err(), "parse failure surfaces as an Error reply");

    // The connection survives a bad statement: only framing errors are
    // terminal.
    match client.publish(batch(5, 0)).expect("publish after error") {
        PublishOutcome::Committed(ids) => assert_eq!(ids.len(), 2),
        PublishOutcome::Overloaded => panic!("default thresholds should admit"),
    }
    server.shutdown().expect("clean shutdown");
}

#[test]
fn same_connection_publishes_while_subscribed() {
    // Regression: with a subscription pushing frames on the SAME
    // connection, `wait_reply` once re-read its own pending buffer
    // instead of the socket and spun until timeout. Interleave pushes
    // and replies on one connection and require both to flow.
    let (server, addr, _pass) = start_memory_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let sub_op = client.subscribe(r#"SUBSCRIBE FIND WHERE domain = "loadgen""#).expect("subscribe");

    let mut published = BTreeSet::new();
    for seq in 0..3 {
        match client.publish(batch(6, seq)).expect("publish with live subscription") {
            PublishOutcome::Committed(ids) => published.extend(ids),
            PublishOutcome::Overloaded => panic!("default thresholds should admit"),
        }
    }

    // Every commit also comes back as a push on the same connection
    // (catch-up or live, depending on timing).
    let mut notified = BTreeSet::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while notified.len() < published.len() && std::time::Instant::now() < deadline {
        match client.next_push(Duration::from_millis(200)).expect("push stream") {
            Some(WireMsg::Notify { op, ids }) => {
                assert_eq!(op, sub_op);
                notified.extend(ids);
            }
            Some(WireMsg::SubCaughtUp { op, .. }) => assert_eq!(op, sub_op),
            Some(other) => panic!("unexpected push {other:?}"),
            None => {}
        }
    }
    assert_eq!(notified, published, "pushes and replies share the connection");
    server.shutdown().expect("clean shutdown");
}
