//! Network traffic accounting.
//!
//! The paper's resource-consumption criterion (§IV) is about bytes on the
//! wire, split by purpose: "if distributed, updates may use a lot of
//! network bandwidth; if centralized, query traffic may instead."
//! Messages are tagged with a [`TrafficClass`] so experiment E7 can report
//! exactly that split.

use std::collections::HashMap;

/// Why a message was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Index updates (new tuple sets, catalog publishes).
    Update,
    /// Query requests and responses.
    Query,
    /// Background upkeep (stabilization, soft-state refresh, replication).
    Maintenance,
}

impl TrafficClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Update => "update",
            TrafficClass::Query => "query",
            TrafficClass::Maintenance => "maintenance",
        }
    }
}

/// Counters for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

/// Cumulative traffic counters for a simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    total: ClassCounters,
    by_class: HashMap<TrafficClass, ClassCounters>,
    dropped: u64,
}

impl NetMetrics {
    /// Fresh counters.
    pub fn new() -> Self {
        NetMetrics::default()
    }

    /// Records one sent message.
    pub fn record(&mut self, class: TrafficClass, bytes: u64) {
        self.total.messages += 1;
        self.total.bytes += bytes;
        let c = self.by_class.entry(class).or_default();
        c.messages += 1;
        c.bytes += bytes;
    }

    /// Records a message dropped (down node, partition).
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Overall counters.
    pub fn total(&self) -> ClassCounters {
        self.total
    }

    /// Counters for one class.
    pub fn class(&self, class: TrafficClass) -> ClassCounters {
        self.by_class.get(&class).copied().unwrap_or_default()
    }

    /// Messages dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Resets all counters (e.g. after a warm-up phase).
    pub fn reset(&mut self) {
        *self = NetMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_class() {
        let mut m = NetMetrics::new();
        m.record(TrafficClass::Update, 100);
        m.record(TrafficClass::Update, 50);
        m.record(TrafficClass::Query, 10);
        assert_eq!(m.total().messages, 3);
        assert_eq!(m.total().bytes, 160);
        assert_eq!(m.class(TrafficClass::Update).bytes, 150);
        assert_eq!(m.class(TrafficClass::Query).messages, 1);
        assert_eq!(m.class(TrafficClass::Maintenance), ClassCounters::default());
    }

    #[test]
    fn drops_and_reset() {
        let mut m = NetMetrics::new();
        m.record(TrafficClass::Query, 5);
        m.record_drop();
        assert_eq!(m.dropped(), 1);
        m.reset();
        assert_eq!(m.total().messages, 0);
        assert_eq!(m.dropped(), 0);
    }
}
