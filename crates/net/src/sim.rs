//! The discrete-event simulator core.
//!
//! Nodes are state machines driven by [`Input`]s (start, message, timer);
//! their effects ([`Ctx::send`], [`Ctx::set_timer`], [`Ctx::complete`])
//! are collected and scheduled. Delivery time is
//! `now + propagation + transmission`, and each node is a single server
//! with a deterministic service time per message — so queueing delay and
//! saturation *emerge* (experiment E6 measures exactly that), rather than
//! being scripted.
//!
//! Everything is deterministic: the event heap breaks ties by sequence
//! number and the only randomness comes from the seeded RNG handed to
//! nodes through their context.

use crate::metrics::{NetMetrics, TrafficClass};
use crate::time::SimTime;
use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel "node id" for driver-injected events.
pub const EXTERNAL: NodeId = usize::MAX;

/// What a node can receive.
#[derive(Debug, Clone)]
pub enum Input<M> {
    /// Delivered once at simulation start, and again on recovery after a
    /// crash.
    Start,
    /// A message from another node (or [`EXTERNAL`]).
    Message {
        /// Sender.
        from: NodeId,
        /// Payload.
        msg: M,
    },
    /// A timer set earlier by this node.
    Timer {
        /// The tag passed to [`Ctx::set_timer`].
        tag: u64,
    },
}

/// A node behavior.
pub trait Node<M> {
    /// Handles one input, emitting effects through `ctx`.
    fn on_input(&mut self, ctx: &mut Ctx<'_, M>, input: Input<M>);

    /// Called when the simulator crashes this node; implementations should
    /// drop volatile state. Durable state (if any) may be kept.
    fn on_crash(&mut self) {}
}

/// A completed client operation, reported by a node via [`Ctx::complete`].
#[derive(Debug, Clone)]
pub struct Completion<M> {
    /// The operation id the architecture threaded through its messages.
    pub op: u64,
    /// Node that reported completion.
    pub node: NodeId,
    /// Completion time.
    pub at: SimTime,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Optional result payload.
    pub payload: Option<M>,
}

enum Effect<M> {
    Send { to: NodeId, msg: M, bytes: u64, class: TrafficClass },
    Timer { delay_us: u64, tag: u64 },
    Complete { op: u64, ok: bool, payload: Option<M> },
}

/// The effect-collection context handed to node handlers.
pub struct Ctx<'a, M> {
    /// Current simulated time.
    pub now: SimTime,
    /// The handling node's id.
    pub self_id: NodeId,
    effects: &'a mut Vec<Effect<M>>,
    rng: &'a mut StdRng,
    node_count: usize,
}

impl<M> Ctx<'_, M> {
    /// Sends `msg` (`bytes` long, accounted under `class`) to `to`.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: u64, class: TrafficClass) {
        self.effects.push(Effect::Send { to, msg, bytes, class });
    }

    /// Schedules a timer `delay_us` from now with an opaque tag.
    pub fn set_timer(&mut self, delay_us: u64, tag: u64) {
        self.effects.push(Effect::Timer { delay_us, tag });
    }

    /// Reports a client operation as finished.
    pub fn complete(&mut self, op: u64, ok: bool) {
        self.effects.push(Effect::Complete { op, ok, payload: None });
    }

    /// Reports a client operation as finished, with a result payload.
    pub fn complete_with(&mut self, op: u64, ok: bool, payload: M) {
        self.effects.push(Effect::Complete { op, ok, payload: Some(payload) });
    }

    /// Deterministic per-simulation randomness.
    pub fn rand_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

/// Per-message service cost at the receiving node.
#[derive(Debug, Clone, Copy)]
pub struct ServiceModel {
    /// Fixed CPU cost per message, microseconds.
    pub per_msg_us: u64,
    /// Additional cost per KiB of payload, microseconds.
    pub per_kib_us: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel { per_msg_us: 50, per_kib_us: 10 }
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M, bytes: u64 },
    Timer { node: NodeId, tag: u64 },
    Start { node: NodeId },
    Crash { node: NodeId },
    Recover { node: NodeId },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator.
pub struct Simulator<M> {
    topology: Topology,
    nodes: Vec<Box<dyn Node<M>>>,
    up: Vec<bool>,
    busy_until: Vec<SimTime>,
    clock: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    metrics: NetMetrics,
    completions: Vec<Completion<M>>,
    rng: StdRng,
    service: ServiceModel,
    effects_scratch: Vec<Effect<M>>,
    events_processed: u64,
}

impl<M: Clone> Simulator<M> {
    /// Builds a simulator; every node receives [`Input::Start`] at t=0.
    pub fn new(topology: Topology, nodes: Vec<Box<dyn Node<M>>>, seed: u64) -> Self {
        assert_eq!(topology.len(), nodes.len(), "one topology slot per node");
        let n = nodes.len();
        let mut sim = Simulator {
            topology,
            nodes,
            up: vec![true; n],
            busy_until: vec![SimTime::ZERO; n],
            clock: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            metrics: NetMetrics::new(),
            completions: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            service: ServiceModel::default(),
            effects_scratch: Vec::new(),
            events_processed: 0,
        };
        for node in 0..n {
            sim.push(SimTime::ZERO, EventKind::Start { node });
        }
        sim
    }

    /// Overrides the service model.
    pub fn with_service(mut self, service: ServiceModel) -> Self {
        self.service = service;
        self
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, kind }));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Resets traffic counters (e.g. after warm-up).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up[node]
    }

    /// Injects a message to `node` at `now + delay_us`, bypassing network
    /// accounting (driver-side client injection).
    pub fn inject(&mut self, node: NodeId, msg: M, delay_us: u64) {
        let at = self.clock + delay_us;
        self.push(at, EventKind::Deliver { from: EXTERNAL, to: node, msg, bytes: 0 });
    }

    /// Schedules a crash.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Crash { node });
    }

    /// Schedules a recovery.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Recover { node });
    }

    /// Drains completions reported since the last call.
    pub fn take_completions(&mut self) -> Vec<Completion<M>> {
        std::mem::take(&mut self.completions)
    }

    /// Immutable access to a node behavior (for driver-side inspection).
    pub fn node(&self, id: NodeId) -> &dyn Node<M> {
        self.nodes[id].as_ref()
    }

    /// Mutable access to a node behavior (for driver-side seeding).
    pub fn node_mut(&mut self, id: NodeId) -> &mut (dyn Node<M> + '_) {
        self.nodes[id].as_mut()
    }

    /// Runs until the event queue empties or the clock passes `limit`,
    /// then advances the clock to `limit`. Returns the final clock
    /// value. Advancing across idle gaps matters for periodic drivers:
    /// a poll loop slower than the next scheduled timer must still see
    /// virtual time pass, exactly as wall-clock time would.
    pub fn run_until(&mut self, limit: SimTime) -> SimTime {
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > limit {
                break;
            }
            let Reverse(event) = self.heap.pop().expect("peeked event exists");
            self.clock = self.clock.max(event.at);
            self.dispatch(event);
        }
        self.clock = self.clock.max(limit);
        self.clock
    }

    /// Runs until the queue is empty (panics after `max_events` as a
    /// runaway guard).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> SimTime {
        let start = self.events_processed;
        while let Some(Reverse(head)) = self.heap.peek() {
            let at = head.at;
            let Reverse(event) = self.heap.pop().expect("peeked event exists");
            self.clock = self.clock.max(at);
            self.dispatch(event);
            assert!(
                self.events_processed - start <= max_events,
                "simulation did not quiesce within {max_events} events"
            );
        }
        self.clock
    }

    fn dispatch(&mut self, event: Scheduled<M>) {
        self.events_processed += 1;
        match event.kind {
            EventKind::Start { node } => {
                if self.up[node] {
                    self.deliver_input(node, Input::Start);
                }
            }
            EventKind::Timer { node, tag } => {
                if self.up[node] {
                    self.deliver_input(node, Input::Timer { tag });
                }
            }
            EventKind::Deliver { from, to, msg, bytes } => {
                if !self.up[to] {
                    self.metrics.record_drop();
                    return;
                }
                // Single-server queueing: if the node is busy, the message
                // waits; re-schedule at the free point.
                if self.busy_until[to] > event.at {
                    let at = self.busy_until[to];
                    self.push(at, EventKind::Deliver { from, to, msg, bytes });
                    return;
                }
                let service = self.service.per_msg_us + self.service.per_kib_us * (bytes / 1024);
                self.busy_until[to] = event.at + service;
                self.deliver_input(to, Input::Message { from, msg });
            }
            EventKind::Crash { node } => {
                if self.up[node] {
                    self.up[node] = false;
                    self.nodes[node].on_crash();
                }
            }
            EventKind::Recover { node } => {
                if !self.up[node] {
                    self.up[node] = true;
                    self.busy_until[node] = self.clock;
                    self.deliver_input(node, Input::Start);
                }
            }
        }
    }

    fn deliver_input(&mut self, node: NodeId, input: Input<M>) {
        let mut effects = std::mem::take(&mut self.effects_scratch);
        effects.clear();
        {
            let mut ctx = Ctx {
                now: self.clock,
                self_id: node,
                effects: &mut effects,
                rng: &mut self.rng,
                node_count: self.nodes.len(),
            };
            self.nodes[node].on_input(&mut ctx, input);
        }
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg, bytes, class } => {
                    self.metrics.record(class, bytes);
                    let latency =
                        self.topology.latency_us(node, to) + self.topology.transmission_us(bytes);
                    let at = self.clock + latency;
                    self.push(at, EventKind::Deliver { from: node, to, msg, bytes });
                }
                Effect::Timer { delay_us, tag } => {
                    let at = self.clock + delay_us;
                    self.push(at, EventKind::Timer { node, tag });
                }
                Effect::Complete { op, ok, payload } => {
                    self.completions.push(Completion { op, node, at: self.clock, ok, payload });
                }
            }
        }
        self.effects_scratch = effects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong behavior: node 0 sends `hops` pings; each receiver
    /// replies until the counter runs out, then completes op 1.
    #[derive(Debug)]
    struct PingPong {
        peer: NodeId,
        remaining: u32,
        initiator: bool,
    }

    impl Node<u32> for PingPong {
        fn on_input(&mut self, ctx: &mut Ctx<'_, u32>, input: Input<u32>) {
            match input {
                Input::Start => {
                    if self.initiator {
                        ctx.send(self.peer, self.remaining, 100, TrafficClass::Query);
                    }
                }
                Input::Message { from, msg } => {
                    if msg == 0 {
                        ctx.complete(1, true);
                    } else {
                        ctx.send(from, msg - 1, 100, TrafficClass::Query);
                    }
                }
                Input::Timer { .. } => {}
            }
        }
    }

    fn ping_pong_sim(hops: u32) -> Simulator<u32> {
        let topo = Topology::uniform(2, 10.0); // 10 ms pairwise
        let nodes: Vec<Box<dyn Node<u32>>> = vec![
            Box::new(PingPong { peer: 1, remaining: hops, initiator: true }),
            Box::new(PingPong { peer: 0, remaining: 0, initiator: false }),
        ];
        Simulator::new(topo, nodes, 42)
    }

    #[test]
    fn ping_pong_latency_accumulates() {
        let mut sim = ping_pong_sim(4);
        sim.run_to_quiescence(1_000);
        let completions = sim.take_completions();
        assert_eq!(completions.len(), 1);
        // 5 messages × ≥10 ms each.
        assert!(completions[0].at.as_micros() >= 50_000);
        assert_eq!(sim.metrics().total().messages, 5);
        assert_eq!(sim.metrics().total().bytes, 500);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let mut a = ping_pong_sim(10);
        let mut b = ping_pong_sim(10);
        a.run_to_quiescence(10_000);
        b.run_to_quiescence(10_000);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.metrics().total(), b.metrics().total());
    }

    /// A sink node that counts received messages.
    #[derive(Debug, Default)]
    struct Sink {
        received: u64,
        last_at_us: u64,
    }

    impl Node<u32> for Sink {
        fn on_input(&mut self, ctx: &mut Ctx<'_, u32>, input: Input<u32>) {
            if let Input::Message { .. } = input {
                self.received += 1;
                self.last_at_us = ctx.now.as_micros();
                ctx.complete(self.received, true);
            }
        }
    }

    #[test]
    fn service_time_queues_bursts() {
        // 100 simultaneous messages into one node with 1 ms service time:
        // the last completion must be ~100 ms after the first.
        let topo = Topology::uniform(2, 1.0);
        let nodes: Vec<Box<dyn Node<u32>>> =
            vec![Box::new(Sink::default()), Box::new(Sink::default())];
        let mut sim = Simulator::new(topo, nodes, 7)
            .with_service(ServiceModel { per_msg_us: 1_000, per_kib_us: 0 });
        for _ in 0..100 {
            sim.inject(0, 1, 0);
        }
        sim.run_to_quiescence(10_000);
        let completions = sim.take_completions();
        assert_eq!(completions.len(), 100);
        let first = completions.first().unwrap().at.as_micros();
        let last = completions.last().unwrap().at.as_micros();
        assert!(last - first >= 99 * 1_000, "queueing delay must accumulate: {first}..{last}");
    }

    #[test]
    fn crashed_nodes_drop_messages_and_recover() {
        let topo = Topology::uniform(2, 1.0);
        let nodes: Vec<Box<dyn Node<u32>>> =
            vec![Box::new(Sink::default()), Box::new(Sink::default())];
        let mut sim = Simulator::new(topo, nodes, 7);
        sim.schedule_crash(SimTime::from_millis(1), 0);
        sim.inject(0, 1, 2_000); // arrives while down
        sim.schedule_recover(SimTime::from_millis(5), 0);
        sim.inject(0, 1, 8_000); // arrives after recovery
        sim.run_to_quiescence(1_000);
        assert_eq!(sim.metrics().dropped(), 1);
        let completions = sim.take_completions();
        assert_eq!(completions.len(), 1);
        assert!(sim.is_up(0));
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Default)]
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node<u32> for TimerNode {
            fn on_input(&mut self, ctx: &mut Ctx<'_, u32>, input: Input<u32>) {
                match input {
                    Input::Start => {
                        ctx.set_timer(3_000, 3);
                        ctx.set_timer(1_000, 1);
                        ctx.set_timer(2_000, 2);
                    }
                    Input::Timer { tag } => {
                        self.fired.push(tag);
                        if self.fired.len() == 3 {
                            ctx.complete(9, true);
                        }
                    }
                    _ => {}
                }
            }
        }
        let topo = Topology::uniform(1, 1.0);
        let mut sim: Simulator<u32> = Simulator::new(topo, vec![Box::new(TimerNode::default())], 1);
        sim.run_to_quiescence(100);
        assert_eq!(sim.take_completions().len(), 1);
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut sim = ping_pong_sim(1_000);
        let t = sim.run_until(SimTime::from_millis(55));
        assert!(t <= SimTime::from_millis(55));
        assert!(sim.take_completions().is_empty(), "not finished yet");
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.take_completions().len(), 1);
    }
}
