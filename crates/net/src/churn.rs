//! Churn schedules: exponential up/down session generation.
//!
//! §IV-C's DHT critique hinges on participant instability. A churn
//! schedule gives each node alternating up-sessions and down-times drawn
//! from exponential distributions, producing the Poisson-ish arrival and
//! departure pattern measured on real peer-to-peer systems.

use crate::time::SimTime;
use crate::topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled availability transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which node.
    pub node: NodeId,
    /// `true` ⇒ the node comes up; `false` ⇒ it goes down.
    pub up: bool,
}

/// Draws from Exp(1/mean) via inverse transform.
fn exp_sample(rng: &mut StdRng, mean_us: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-mean_us * u.ln()) as u64
}

/// Generates a churn schedule for nodes `first..last` (inclusive range of
/// ids) over `[0, horizon]`. Nodes start up; sessions last
/// `Exp(mean_session)`, downtimes `Exp(mean_downtime)`. Events are sorted
/// by time.
pub fn schedule(
    seed: u64,
    nodes: std::ops::Range<NodeId>,
    mean_session: SimTime,
    mean_downtime: SimTime,
    horizon: SimTime,
) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    for node in nodes {
        let mut t = SimTime::ZERO;
        let mut up = true;
        loop {
            let mean = if up { mean_session } else { mean_downtime };
            t += exp_sample(&mut rng, mean.as_micros() as f64).max(1);
            if t > horizon {
                break;
            }
            up = !up;
            events.push(ChurnEvent { at: t, node, up });
        }
    }
    events.sort_by_key(|e| (e.at, e.node));
    events
}

/// Applies a schedule to a simulator.
pub fn apply<M: Clone>(sim: &mut crate::sim::Simulator<M>, events: &[ChurnEvent]) {
    for e in events {
        if e.up {
            sim.schedule_recover(e.at, e.node);
        } else {
            sim.schedule_crash(e.at, e.node);
        }
    }
}

/// Fraction of `horizon` each node spends up under a schedule (analytic
/// check for tests and experiment sanity).
pub fn availability(events: &[ChurnEvent], node: NodeId, horizon: SimTime) -> f64 {
    let mut up_since = Some(SimTime::ZERO);
    let mut up_total = 0u64;
    for e in events.iter().filter(|e| e.node == node) {
        match (up_since, e.up) {
            (Some(since), false) => {
                up_total += e.at - since;
                up_since = None;
            }
            (None, true) => up_since = Some(e.at),
            _ => {}
        }
    }
    if let Some(since) = up_since {
        up_total += horizon - since;
    }
    up_total as f64 / horizon.as_micros() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_alternates_and_is_sorted() {
        let events = schedule(
            1,
            0..8,
            SimTime::from_secs(10),
            SimTime::from_secs(5),
            SimTime::from_secs(120),
        );
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        for node in 0..8 {
            let mine: Vec<_> = events.iter().filter(|e| e.node == node).collect();
            // Starting up, the first transition must be a crash, then strictly
            // alternate.
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.up, i % 2 == 1, "node {node} event {i}");
            }
        }
    }

    #[test]
    fn availability_tracks_session_downtime_ratio() {
        // Mean session 30 s, mean downtime 10 s ⇒ availability ≈ 0.75.
        let horizon = SimTime::from_secs(10_000);
        let events = schedule(7, 0..50, SimTime::from_secs(30), SimTime::from_secs(10), horizon);
        let mean: f64 = (0..50).map(|n| availability(&events, n, horizon)).sum::<f64>() / 50.0;
        assert!((mean - 0.75).abs() < 0.05, "availability {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a =
            schedule(9, 0..4, SimTime::from_secs(1), SimTime::from_secs(1), SimTime::from_secs(60));
        let b =
            schedule(9, 0..4, SimTime::from_secs(1), SimTime::from_secs(1), SimTime::from_secs(60));
        assert_eq!(a, b);
        let c = schedule(
            10,
            0..4,
            SimTime::from_secs(1),
            SimTime::from_secs(1),
            SimTime::from_secs(60),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn no_churn_beyond_horizon() {
        let horizon = SimTime::from_secs(30);
        let events = schedule(3, 0..10, SimTime::from_secs(5), SimTime::from_secs(5), horizon);
        assert!(events.iter().all(|e| e.at <= horizon));
    }
}
