//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulated instant, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since start (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference in microseconds.
    pub fn micros_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, other: SimTime) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis(), 1);
        assert!((SimTime::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(1);
        let b = a + 500;
        assert!(b > a);
        assert_eq!(b - a, 500);
        assert_eq!(a - b, 0, "saturating");
        assert_eq!(b.micros_since(a), 500);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime(500).to_string(), "500µs");
        assert_eq!(SimTime(2_500).to_string(), "2.5ms");
        assert_eq!(SimTime(1_500_000).to_string(), "1.500s");
    }
}
