//! Network topologies: who is where, and how far apart.
//!
//! Placement experiments need geography ("Boston traffic data belongs in
//! Boston", §III-D), so topologies assign each node a position and derive
//! pairwise latency from distance plus a base cost. Three shapes cover
//! the paper's scenarios:
//!
//! * [`Topology::star`] — clients around a central warehouse (§IV-A).
//! * [`Topology::clustered`] — metro regions with cheap intra-region and
//!   expensive inter-region links (federations, soft-state zones).
//! * [`Topology::uniform`] — a flat WAN where everyone is equally far
//!   from everyone (the implicit DHT assumption §IV-C criticizes).

/// Node index within a simulation.
pub type NodeId = usize;

/// A network topology: positions, latency, bandwidth.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Node positions in abstract plane coordinates (1 unit ≈ 1 ms of
    /// propagation delay).
    positions: Vec<(f64, f64)>,
    /// Fixed per-hop cost in microseconds (serialization, switching).
    base_latency_us: u64,
    /// Link bandwidth in bytes per microsecond (e.g. 125 = 1 Gbps).
    bandwidth_bytes_per_us: u64,
    /// Cluster id per node (used by locality-aware placement).
    cluster_of: Vec<usize>,
}

impl Topology {
    /// `n` nodes in a star: node 0 at the center, everyone else at
    /// `radius_ms` from it (and `2 × radius_ms` from each other).
    pub fn star(n: usize, radius_ms: f64) -> Self {
        assert!(n >= 1);
        let mut positions = vec![(0.0, 0.0)];
        for i in 1..n {
            let angle = 2.0 * std::f64::consts::PI * (i as f64) / ((n - 1).max(1) as f64);
            positions.push((radius_ms * angle.cos(), radius_ms * angle.sin()));
        }
        Topology {
            positions,
            base_latency_us: 100,
            bandwidth_bytes_per_us: 125,
            cluster_of: vec![0; n],
        }
    }

    /// `clusters × per_cluster` nodes; nodes within a cluster sit
    /// `intra_ms` apart, cluster centers `inter_ms` apart on a ring.
    pub fn clustered(clusters: usize, per_cluster: usize, intra_ms: f64, inter_ms: f64) -> Self {
        assert!(clusters >= 1 && per_cluster >= 1);
        let mut positions = Vec::with_capacity(clusters * per_cluster);
        let mut cluster_of = Vec::with_capacity(clusters * per_cluster);
        // Ring radius chosen so adjacent centers are ~inter_ms apart.
        let ring_r = if clusters > 1 {
            inter_ms / (2.0 * (std::f64::consts::PI / clusters as f64).sin())
        } else {
            0.0
        };
        for c in 0..clusters {
            let angle = 2.0 * std::f64::consts::PI * (c as f64) / (clusters as f64);
            let (cx, cy) = (ring_r * angle.cos(), ring_r * angle.sin());
            for i in 0..per_cluster {
                let local = 2.0 * std::f64::consts::PI * (i as f64) / (per_cluster as f64);
                positions.push((
                    cx + (intra_ms / 2.0) * local.cos(),
                    cy + (intra_ms / 2.0) * local.sin(),
                ));
                cluster_of.push(c);
            }
        }
        Topology { positions, base_latency_us: 100, bandwidth_bytes_per_us: 125, cluster_of }
    }

    /// `n` nodes all `pairwise_ms` apart (complete graph, uniform cost).
    pub fn uniform(n: usize, pairwise_ms: f64) -> Self {
        // Realized by overriding distance: place everyone at the origin
        // and fold the pairwise cost into base latency.
        Topology {
            positions: vec![(0.0, 0.0); n],
            base_latency_us: (pairwise_ms * 1_000.0) as u64 + 100,
            bandwidth_bytes_per_us: 125,
            cluster_of: vec![0; n],
        }
    }

    /// Overrides the per-hop base latency.
    pub fn with_base_latency_us(mut self, us: u64) -> Self {
        self.base_latency_us = us;
        self
    }

    /// Overrides link bandwidth.
    pub fn with_bandwidth_bytes_per_us(mut self, bpu: u64) -> Self {
        self.bandwidth_bytes_per_us = bpu.max(1);
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// One-way propagation latency between two nodes, in microseconds.
    pub fn latency_us(&self, from: NodeId, to: NodeId) -> u64 {
        if from == to {
            // Loopback: negligible propagation, keep a small floor so
            // event ordering stays strictly causal.
            return 1;
        }
        let (ax, ay) = self.positions[from];
        let (bx, by) = self.positions[to];
        let dist_ms = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        self.base_latency_us + (dist_ms * 1_000.0) as u64
    }

    /// Transmission delay for a payload, in microseconds.
    pub fn transmission_us(&self, bytes: u64) -> u64 {
        bytes / self.bandwidth_bytes_per_us
    }

    /// The cluster a node belongs to.
    pub fn cluster(&self, node: NodeId) -> usize {
        self.cluster_of[node]
    }

    /// Nodes in a given cluster.
    pub fn cluster_members(&self, cluster: usize) -> Vec<NodeId> {
        (0..self.len()).filter(|&n| self.cluster_of[n] == cluster).collect()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.cluster_of.iter().copied().max().map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_center_is_closer_than_rim_pairs() {
        let t = Topology::star(8, 20.0);
        assert_eq!(t.len(), 8);
        let center_leaf = t.latency_us(0, 3);
        let leaf_leaf = t.latency_us(1, 5);
        assert!(center_leaf < leaf_leaf, "{center_leaf} vs {leaf_leaf}");
        // Roughly 20 ms to the center.
        assert!((center_leaf as i64 - 20_100).abs() < 1_000, "{center_leaf}");
    }

    #[test]
    fn clustered_intra_beats_inter() {
        let t = Topology::clustered(4, 3, 1.0, 50.0);
        assert_eq!(t.len(), 12);
        assert_eq!(t.cluster_count(), 4);
        let intra = t.latency_us(0, 1);
        let inter = t.latency_us(0, 3);
        assert!(intra < inter / 5, "intra {intra} vs inter {inter}");
        assert_eq!(t.cluster(0), t.cluster(1));
        assert_ne!(t.cluster(0), t.cluster(3));
        assert_eq!(t.cluster_members(0), vec![0, 1, 2]);
    }

    #[test]
    fn uniform_is_uniform() {
        let t = Topology::uniform(5, 30.0);
        let expected = t.latency_us(0, 1);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(t.latency_us(a, b), expected);
                }
            }
        }
        assert!(expected >= 30_000);
    }

    #[test]
    fn loopback_is_cheap_and_symmetric_latency() {
        let t = Topology::clustered(2, 2, 1.0, 40.0);
        assert_eq!(t.latency_us(2, 2), 1);
        assert_eq!(t.latency_us(0, 3), t.latency_us(3, 0));
    }

    #[test]
    fn transmission_scales_with_bytes() {
        let t = Topology::uniform(2, 1.0).with_bandwidth_bytes_per_us(100);
        assert_eq!(t.transmission_us(1_000), 10);
        assert_eq!(t.transmission_us(0), 0);
    }
}
