//! # pass-net — discrete-event network simulation substrate
//!
//! The paper's design-space walk (§IV) makes quantitative claims about
//! wide-area systems: central indexers saturate under sensor-scale update
//! volume, DHT placement destroys locality, soft-state catalogs go stale,
//! churn breaks lookups. Checking those claims (experiments E5–E9, E11,
//! E13–E15) needs a network, and this crate is that network:
//!
//! * [`Simulator`] — deterministic event loop with per-node single-server
//!   queueing, so saturation emerges from the model.
//! * [`Topology`] — star / clustered / uniform geographies with
//!   distance-derived latency and explicit bandwidth.
//! * [`NetMetrics`] — messages and bytes on the wire, split into update /
//!   query / maintenance traffic (§IV's resource-consumption criterion).
//! * [`churn`] — exponential session/downtime schedules (§IV-C).
//!
//! The simulator knows nothing about provenance; `pass-dht` and
//! `pass-distrib` define the node behaviors.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod metrics;
pub mod sim;
pub mod time;
pub mod topology;

pub use metrics::{ClassCounters, NetMetrics, TrafficClass};
pub use sim::{Completion, Ctx, Input, Node, ServiceModel, Simulator, EXTERNAL};
pub use time::SimTime;
pub use topology::{NodeId, Topology};
