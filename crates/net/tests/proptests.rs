//! Property tests for the simulator: determinism, causality, and
//! conservation of messages.

use pass_net::{Ctx, Input, Node, NodeId, SimTime, Simulator, Topology, TrafficClass};
use proptest::prelude::*;

/// A node that relays each received token to a scripted next hop until
/// the token's TTL runs out, then completes.
struct Relay {
    plan: Vec<NodeId>,
}

impl Node<(u32, u64)> for Relay {
    fn on_input(&mut self, ctx: &mut Ctx<'_, (u32, u64)>, input: Input<(u32, u64)>) {
        if let Input::Message { msg: (ttl, op), .. } = input {
            if ttl == 0 {
                ctx.complete(op, true);
            } else {
                let next = self.plan[(ttl as usize) % self.plan.len()];
                ctx.send(next, (ttl - 1, op), 64, TrafficClass::Query);
            }
        }
    }
}

fn build(plan_seed: Vec<u8>, n: usize) -> Simulator<(u32, u64)> {
    let topology = Topology::clustered((n / 2).max(1), 2, 1.0, 30.0);
    let n = topology.len();
    let nodes: Vec<Box<dyn Node<(u32, u64)>>> = (0..n)
        .map(|i| {
            let plan: Vec<NodeId> = plan_seed.iter().map(|&b| (b as usize + i) % n).collect();
            Box::new(Relay { plan: if plan.is_empty() { vec![0] } else { plan } })
                as Box<dyn Node<(u32, u64)>>
        })
        .collect();
    Simulator::new(topology, nodes, 99)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical inputs ⇒ identical traces, completions, and clocks.
    #[test]
    fn simulation_is_deterministic(
        plan in proptest::collection::vec(any::<u8>(), 1..6),
        tokens in proptest::collection::vec((0u32..20, 0usize..6), 1..10),
    ) {
        let run = |plan: &[u8], tokens: &[(u32, usize)]| {
            let mut sim = build(plan.to_vec(), 3);
            let n = sim.topology().len();
            for (i, &(ttl, at)) in tokens.iter().enumerate() {
                sim.inject(at % n, (ttl, i as u64), (i as u64) * 10);
            }
            sim.run_to_quiescence(2_000_000);
            let completions: Vec<(u64, u64)> =
                sim.take_completions().into_iter().map(|c| (c.op, c.at.as_micros())).collect();
            (completions, sim.now().as_micros(), sim.metrics().total())
        };
        let a = run(&plan, &tokens);
        let b = run(&plan, &tokens);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// Every injected token completes exactly once, and messages on the
    /// wire equal the sum of TTLs (each hop is one message).
    #[test]
    fn tokens_complete_once_and_messages_are_conserved(
        plan in proptest::collection::vec(any::<u8>(), 1..6),
        tokens in proptest::collection::vec((0u32..20, 0usize..6), 1..10),
    ) {
        let mut sim = build(plan.clone(), 3);
        let n = sim.topology().len();
        for (i, &(ttl, at)) in tokens.iter().enumerate() {
            sim.inject(at % n, (ttl, i as u64), 0);
        }
        sim.run_to_quiescence(2_000_000);
        let completions = sim.take_completions();
        prop_assert_eq!(completions.len(), tokens.len());
        let mut ops: Vec<u64> = completions.iter().map(|c| c.op).collect();
        ops.sort_unstable();
        ops.dedup();
        prop_assert_eq!(ops.len(), tokens.len(), "no duplicate completions");
        let expected_msgs: u64 = tokens.iter().map(|&(ttl, _)| u64::from(ttl)).sum();
        prop_assert_eq!(sim.metrics().total().messages, expected_msgs);
    }

    /// Completion times never precede injection and are monotone with the
    /// event clock.
    #[test]
    fn causality_holds(
        plan in proptest::collection::vec(any::<u8>(), 1..4),
        ttl in 1u32..30,
        delay in 0u64..10_000,
    ) {
        let mut sim = build(plan, 3);
        sim.inject(0, (ttl, 1), delay);
        sim.run_to_quiescence(2_000_000);
        let completions = sim.take_completions();
        prop_assert_eq!(completions.len(), 1);
        // Hops may be loopbacks (1 µs floor), so the bound is per-hop 1 µs.
        prop_assert!(completions[0].at >= SimTime::from_micros(delay + u64::from(ttl)));
        prop_assert!(completions[0].at <= sim.now());
    }
}
