//! Property-based tests for the model layer: the canonical codec must
//! round-trip every representable value, and identity must be a function
//! of provenance content alone.

use pass_model::codec::{Decode, Encode};
use pass_model::{
    Attributes, Digest128, GeoPoint, ProvenanceBuilder, Reading, SensorId, SiteId, Timestamp,
    ToolDescriptor, TupleSet, TupleSetId, Value,
};
use proptest::prelude::*;

fn arb_value(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 _.-]{0,24}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        any::<u64>().prop_map(|t| Value::Time(Timestamp(t))),
        (any::<f64>(), any::<f64>()).prop_map(|(a, b)| Value::Geo(GeoPoint::new(a, b))),
    ];
    leaf.prop_recursive(depth, 16, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

fn arb_attributes() -> impl Strategy<Value = Attributes> {
    proptest::collection::btree_map("[a-z][a-z0-9._]{0,12}", arb_value(2), 0..8)
        .prop_map(|m| m.into_iter().collect())
}

fn arb_reading() -> impl Strategy<Value = Reading> {
    (any::<u64>(), any::<u64>(), proptest::collection::vec(("[a-z]{1,8}", arb_value(1)), 0..4))
        .prop_map(|(s, t, fields)| Reading { sensor: SensorId(s), time: Timestamp(t), fields })
}

proptest! {
    #[test]
    fn value_codec_round_trips(v in arb_value(3)) {
        let enc = v.encode_to_vec();
        let dec = Value::decode_all(&enc).unwrap();
        prop_assert_eq!(v, dec);
    }

    #[test]
    fn attributes_codec_round_trips(a in arb_attributes()) {
        let enc = a.encode_to_vec();
        let dec = Attributes::decode_all(&enc).unwrap();
        prop_assert_eq!(a, dec);
    }

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(2), b in arb_value(2), c in arb_value(2)) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot check through one permutation).
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // Equality agrees with ordering.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }

    #[test]
    fn reading_codec_round_trips(r in arb_reading()) {
        let enc = r.encode_to_vec();
        let dec = Reading::decode_all(&enc).unwrap();
        prop_assert_eq!(r, dec);
    }

    #[test]
    fn tuple_set_codec_round_trips(
        attrs in arb_attributes(),
        readings in proptest::collection::vec(arb_reading(), 0..8),
        origin in any::<u32>(),
        created in any::<u64>(),
    ) {
        let record = ProvenanceBuilder::new(SiteId(origin), Timestamp(created))
            .attrs(&attrs)
            .build(TupleSet::content_digest_of(&readings));
        let ts = TupleSet::new(record, readings).unwrap();
        let enc = ts.encode_to_vec();
        let dec = TupleSet::decode_all(&enc).unwrap();
        prop_assert_eq!(ts, dec);
    }

    #[test]
    fn identity_depends_on_content(
        attrs in arb_attributes(),
        data_a in proptest::collection::vec(any::<u8>(), 1..64),
        data_b in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(data_a != data_b);
        let builder = ProvenanceBuilder::new(SiteId(0), Timestamp(0)).attrs(&attrs);
        let a = builder.clone().build(Digest128::of(&data_a));
        let b = builder.build(Digest128::of(&data_b));
        // PASS property 3 under arbitrary attribute sets.
        prop_assert_ne!(a.id, b.id);
        prop_assert!(a.verify_identity());
        prop_assert!(b.verify_identity());
    }

    #[test]
    fn identity_ignores_annotations(attrs in arb_attributes(), note in "[ -~]{0,40}") {
        let mut rec = ProvenanceBuilder::new(SiteId(1), Timestamp(9))
            .attrs(&attrs)
            .derived_from(TupleSetId(77), ToolDescriptor::new("t", "1"))
            .build(Digest128::of(b"data"));
        let id = rec.id;
        rec.annotate(pass_model::Annotation::new(Timestamp(1), "author", note));
        prop_assert_eq!(rec.id, id);
        prop_assert!(rec.verify_identity());
    }

    #[test]
    fn id_byte_order_matches_numeric_order(a in any::<u128>(), b in any::<u128>()) {
        let (ia, ib) = (TupleSetId(a), TupleSetId(b));
        prop_assert_eq!(ia.cmp(&ib), ia.to_be_bytes().cmp(&ib.to_be_bytes()));
    }

    #[test]
    fn flatname_parse_never_panics(s in "[ -~]{0,64}") {
        let _ = pass_model::flatname::parse(&s);
    }

    #[test]
    fn truncated_encodings_error_not_panic(
        attrs in arb_attributes(),
        cut in 0usize..64,
    ) {
        let rec = ProvenanceBuilder::new(SiteId(2), Timestamp(3))
            .attrs(&attrs)
            .build(Digest128::of(b"x"));
        let enc = rec.encode_to_vec();
        let cut = cut.min(enc.len().saturating_sub(1));
        // Decoding any strict prefix must fail cleanly, never panic.
        let res = pass_model::ProvenanceRecord::decode_all(&enc[..cut]);
        prop_assert!(res.is_err());
    }
}
