//! 128-bit content digests.
//!
//! Tuple-set identity is the digest of a canonical provenance encoding
//! (§II-A "provenance as name"). We use MurmurHash3's x64 128-bit variant:
//! fast, well-distributed, and deterministic across platforms. It is *not*
//! cryptographic; PASS identity is a uniqueness mechanism, not an integrity
//! proof, and at simulator scales (≪ 2^64 objects) accidental collisions
//! are negligible.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 128-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Digest128(pub u128);

impl Digest128 {
    /// Digests a byte slice with seed 0.
    pub fn of(bytes: &[u8]) -> Self {
        Digest128(murmur3_x64_128(bytes, 0))
    }

    /// Digests a byte slice with an explicit seed (used to derive
    /// independent hash families, e.g. for bloom filters).
    pub fn with_seed(bytes: &[u8], seed: u64) -> Self {
        Digest128(murmur3_x64_128(bytes, seed))
    }

    /// Low 64 bits.
    pub fn low64(self) -> u64 {
        self.0 as u64
    }

    /// High 64 bits.
    pub fn high64(self) -> u64 {
        (self.0 >> 64) as u64
    }
}

impl fmt::Debug for Digest128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "digest:{:032x}", self.0)
    }
}

impl fmt::Display for Digest128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// MurmurHash3 x64 128-bit, as published by Austin Appleby (public domain).
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> u128 {
    let len = data.len();
    let mut h1 = seed;
    let mut h2 = seed;

    let mut chunks = data.chunks_exact(16);
    for block in &mut chunks {
        let mut k1 = u64::from_le_bytes(block[0..8].try_into().expect("8-byte block half"));
        let mut k2 = u64::from_le_bytes(block[8..16].try_into().expect("8-byte block half"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &b) in tail.iter().enumerate() {
        if i < 8 {
            k1 |= u64::from(b) << (8 * i);
        } else {
            k2 |= u64::from(b) << (8 * (i - 8));
        }
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    (u128::from(h2) << 64) | u128::from(h1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_seed_zero_is_zero() {
        // Known property of murmur3 x64 128: all-zero state, zero length.
        assert_eq!(Digest128::of(b""), Digest128(0));
    }

    #[test]
    fn deterministic() {
        let a = Digest128::of(b"provenance is the name of the data set");
        let b = Digest128::of(b"provenance is the name of the data set");
        assert_eq!(a, b);
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let base = b"sensor reading block".to_vec();
        let d0 = Digest128::of(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(Digest128::of(&flipped), d0, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn seed_separates_hash_families() {
        let d1 = Digest128::with_seed(b"key", 1);
        let d2 = Digest128::with_seed(b"key", 2);
        assert_ne!(d1, d2);
    }

    #[test]
    fn tail_lengths_all_distinct() {
        // Exercise every tail-length code path (0..=15 bytes past a block).
        let data: Vec<u8> = (0u8..48).collect();
        let mut seen = std::collections::HashSet::new();
        for n in 0..=data.len() {
            assert!(seen.insert(murmur3_x64_128(&data[..n], 0)), "collision at len {n}");
        }
    }

    #[test]
    fn length_extension_differs() {
        // "abc" vs "abc\0" must differ (length participates in finalization).
        assert_ne!(Digest128::of(b"abc"), Digest128::of(b"abc\0"));
    }
}
