//! First-class provenance records (§II-A, §V).
//!
//! A [`ProvenanceRecord`] is the identity-bearing object of PASS: its
//! attributes and ancestry *are* the name of the tuple set it describes.
//! The four PASS properties (§V) map onto this module as follows:
//!
//! 1. *Provenance is a first-class object* — it is a standalone record,
//!    stored and indexed independently of the readings it describes.
//! 2. *Provenance can be queried* — every attribute, derivation edge, and
//!    annotation is reachable by `pass-index` / `pass-query`.
//! 3. *Nonidentical data items do not have identical provenance* — the
//!    content digest of the readings participates in the identity hash
//!    ([`ProvenanceBuilder::build`]).
//! 4. *Provenance is not lost if ancestor objects are removed* — records
//!    refer to parents by [`TupleSetId`], never by physical location, and
//!    `pass-core` keeps records alive after data deletion.

use crate::attr::Attributes;
use crate::codec::{self, Decode, Encode, Reader};
use crate::digest::Digest128;
use crate::error::ModelError;
use crate::ids::{SiteId, TupleSetId};
use crate::keys;
use crate::time::{TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

/// Identifies the program (or physical process) that produced a tuple set
/// from its parents.
///
/// `abstracted` implements the paper's §V observation that "it is far more
/// useful for this information to be reported as *gcc 3.3.3* rather than as
/// a detailed record of gcc's own provenance": lineage traversals stop at
/// abstracted tools instead of expanding the tool's own history.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ToolDescriptor {
    /// Tool name, e.g. `"sharpen"` or `"gcc"`.
    pub name: String,
    /// Tool version, e.g. `"3.3.3"`.
    pub version: String,
    /// Configuration parameters the tool ran with.
    pub params: Attributes,
    /// When true, this descriptor is an abstraction boundary: queries
    /// report the name/version and do not chase the tool's own provenance.
    pub abstracted: bool,
}

impl ToolDescriptor {
    /// A concrete tool whose own provenance remains expandable.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        ToolDescriptor {
            name: name.into(),
            version: version.into(),
            params: Attributes::new(),
            abstracted: false,
        }
    }

    /// An abstracted tool ("gcc 3.3.3"-style summary; §V).
    pub fn abstracted(name: impl Into<String>, version: impl Into<String>) -> Self {
        ToolDescriptor { abstracted: true, ..ToolDescriptor::new(name, version) }
    }

    /// Adds a parameter, returning `self` for chaining.
    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<crate::Value>) -> Self {
        self.params.set(name, value);
        self
    }

    /// `name vVERSION` display form.
    pub fn label(&self) -> String {
        format!("{} v{}", self.name, self.version)
    }
}

/// One ancestry edge: this tuple set was derived from `parent` by `tool`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Derivation {
    /// The input tuple set.
    pub parent: TupleSetId,
    /// The program that performed the derivation.
    pub tool: ToolDescriptor,
}

impl Derivation {
    /// Creates an edge.
    pub fn new(parent: TupleSetId, tool: ToolDescriptor) -> Self {
        Derivation { parent, tool }
    }
}

/// A post-hoc note attached to a record (sensor replacements, software
/// upgrades, analyst remarks — §I). Annotations do not participate in
/// identity: they describe the record, they do not change what it names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Annotation {
    /// When the annotation was made.
    pub at: Timestamp,
    /// Who made it.
    pub author: String,
    /// Free text; indexed by the keyword index.
    pub text: String,
}

impl Annotation {
    /// Creates an annotation.
    pub fn new(at: Timestamp, author: impl Into<String>, text: impl Into<String>) -> Self {
        Annotation { at, author: author.into(), text: text.into() }
    }
}

/// The provenance of one tuple set: its name, rendered as data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Identity: digest of the canonical encoding of everything below
    /// except `annotations` (which are mutable post-hoc).
    pub id: TupleSetId,
    /// Descriptive name-value pairs.
    pub attributes: Attributes,
    /// Edges to the tuple sets this one was derived from. Empty for raw
    /// sensor captures.
    pub ancestry: Vec<Derivation>,
    /// Post-hoc notes; excluded from identity.
    pub annotations: Vec<Annotation>,
    /// The site where this tuple set was produced (placement experiments
    /// key off this; "Boston traffic data belongs in Boston", §III-D).
    pub origin: SiteId,
    /// Production time.
    pub created_at: Timestamp,
    /// Digest of the canonical encoding of the readings. Ensures PASS
    /// property 3: different data ⇒ different identity.
    pub content_digest: Digest128,
}

impl ProvenanceRecord {
    /// True for raw captures (no ancestry).
    pub fn is_raw(&self) -> bool {
        self.ancestry.is_empty()
    }

    /// Parent ids in ancestry order.
    pub fn parents(&self) -> impl Iterator<Item = TupleSetId> + '_ {
        self.ancestry.iter().map(|d| d.parent)
    }

    /// The covered time window, when the conventional `time.start` /
    /// `time.end` attributes are present and well-formed.
    pub fn time_range(&self) -> Option<TimeRange> {
        let start = self.attributes.get_time(keys::TIME_START)?;
        let end = self.attributes.get_time(keys::TIME_END)?;
        (start <= end).then_some(TimeRange { start, end })
    }

    /// Recomputes the identity this record *should* have and compares.
    /// Detects index/data inconsistencies (§IV-A warns that loosely coupled
    /// indexes let "inconsistencies creep in").
    pub fn verify_identity(&self) -> bool {
        let recomputed = identity_digest(
            &self.attributes,
            &self.ancestry,
            self.origin,
            self.created_at,
            self.content_digest,
        );
        recomputed == self.id
    }

    /// Adds an annotation (does not change identity).
    pub fn annotate(&mut self, annotation: Annotation) {
        self.annotations.push(annotation);
    }
}

/// Computes a record identity from its identity-bearing fields.
fn identity_digest(
    attributes: &Attributes,
    ancestry: &[Derivation],
    origin: SiteId,
    created_at: Timestamp,
    content_digest: Digest128,
) -> TupleSetId {
    let mut buf = Vec::with_capacity(attributes.len() * 16 + ancestry.len() * 24 + 48);
    attributes.encode_into(&mut buf);
    codec::put_varint(&mut buf, ancestry.len() as u64);
    for d in ancestry {
        d.encode_into(&mut buf);
    }
    origin.encode_into(&mut buf);
    created_at.encode_into(&mut buf);
    buf.extend_from_slice(&content_digest.0.to_be_bytes());
    TupleSetId(Digest128::of(&buf).0)
}

/// Builder for [`ProvenanceRecord`]s.
///
/// ```
/// use pass_model::{ProvenanceBuilder, Digest128, SiteId, Timestamp};
///
/// let record = ProvenanceBuilder::new(SiteId(3), Timestamp::from_secs(60))
///     .attr("domain", "traffic")
///     .attr("region", "london")
///     .build(Digest128::of(b"...readings..."));
/// assert!(record.verify_identity());
/// ```
#[derive(Debug, Clone)]
pub struct ProvenanceBuilder {
    attributes: Attributes,
    ancestry: Vec<Derivation>,
    origin: SiteId,
    created_at: Timestamp,
}

impl ProvenanceBuilder {
    /// Starts a record produced at `origin` at time `created_at`.
    pub fn new(origin: SiteId, created_at: Timestamp) -> Self {
        ProvenanceBuilder {
            attributes: Attributes::new(),
            ancestry: Vec::new(),
            origin,
            created_at,
        }
    }

    /// Sets one attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<crate::Value>) -> Self {
        self.attributes.set(name, value);
        self
    }

    /// Sets many attributes at once (merged over any already present).
    pub fn attrs(mut self, attrs: &Attributes) -> Self {
        self.attributes.merge(attrs);
        self
    }

    /// Declares the conventional time window attributes.
    pub fn time_range(self, range: TimeRange) -> Self {
        self.attr(keys::TIME_START, range.start).attr(keys::TIME_END, range.end)
    }

    /// Adds an ancestry edge.
    pub fn derived_from(mut self, parent: TupleSetId, tool: ToolDescriptor) -> Self {
        self.ancestry.push(Derivation::new(parent, tool));
        self
    }

    /// Finalizes the record. `content_digest` must be the digest of the
    /// canonical encoding of the readings this record describes (use
    /// [`crate::TupleSet::content_digest_of`]); it binds identity to data.
    pub fn build(self, content_digest: Digest128) -> ProvenanceRecord {
        let id = identity_digest(
            &self.attributes,
            &self.ancestry,
            self.origin,
            self.created_at,
            content_digest,
        );
        ProvenanceRecord {
            id,
            attributes: self.attributes,
            ancestry: self.ancestry,
            annotations: Vec::new(),
            origin: self.origin,
            created_at: self.created_at,
            content_digest,
        }
    }
}

// ---------------------------------------------------------------------------
// Codec impls
// ---------------------------------------------------------------------------

impl Encode for ToolDescriptor {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        codec::put_str(buf, &self.name);
        codec::put_str(buf, &self.version);
        self.params.encode_into(buf);
        self.abstracted.encode_into(buf);
    }
}

impl Decode for ToolDescriptor {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(ToolDescriptor {
            name: codec::take_string(r, "tool name")?,
            version: codec::take_string(r, "tool version")?,
            params: Attributes::decode_from(r)?,
            abstracted: bool::decode_from(r)?,
        })
    }
}

impl Encode for Derivation {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.parent.encode_into(buf);
        self.tool.encode_into(buf);
    }
}

impl Decode for Derivation {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(Derivation {
            parent: TupleSetId::decode_from(r)?,
            tool: ToolDescriptor::decode_from(r)?,
        })
    }
}

impl Encode for Annotation {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.at.encode_into(buf);
        codec::put_str(buf, &self.author);
        codec::put_str(buf, &self.text);
    }
}

impl Decode for Annotation {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(Annotation {
            at: Timestamp::decode_from(r)?,
            author: codec::take_string(r, "annotation author")?,
            text: codec::take_string(r, "annotation text")?,
        })
    }
}

impl Encode for ProvenanceRecord {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.id.encode_into(buf);
        self.attributes.encode_into(buf);
        self.ancestry.encode_into(buf);
        self.annotations.encode_into(buf);
        self.origin.encode_into(buf);
        self.created_at.encode_into(buf);
        buf.extend_from_slice(&self.content_digest.0.to_be_bytes());
    }
}

impl Decode for ProvenanceRecord {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(ProvenanceRecord {
            id: TupleSetId::decode_from(r)?,
            attributes: Attributes::decode_from(r)?,
            ancestry: Vec::<Derivation>::decode_from(r)?,
            annotations: Vec::<Annotation>::decode_from(r)?,
            origin: SiteId::decode_from(r)?,
            created_at: Timestamp::decode_from(r)?,
            content_digest: Digest128(r.take_u128_be("content digest")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sample_record() -> ProvenanceRecord {
        ProvenanceBuilder::new(SiteId(7), Timestamp::from_secs(100))
            .attr(keys::DOMAIN, "traffic")
            .attr(keys::REGION, "london")
            .time_range(TimeRange::new(Timestamp::from_secs(40), Timestamp::from_secs(100)))
            .derived_from(TupleSetId(1234), ToolDescriptor::new("dedupe", "1.2"))
            .build(Digest128::of(b"readings"))
    }

    #[test]
    fn identity_is_stable_and_verifiable() {
        let r1 = sample_record();
        let r2 = sample_record();
        assert_eq!(r1.id, r2.id, "same provenance, same name");
        assert!(r1.verify_identity());
    }

    #[test]
    fn different_content_different_identity() {
        // PASS property 3: nonidentical data items do not share provenance.
        let base = ProvenanceBuilder::new(SiteId(1), Timestamp(5)).attr("k", "v");
        let a = base.clone().build(Digest128::of(b"data A"));
        let b = base.build(Digest128::of(b"data B"));
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn different_attributes_different_identity() {
        let digest = Digest128::of(b"same data");
        let a = ProvenanceBuilder::new(SiteId(1), Timestamp(5)).attr("k", "v1").build(digest);
        let b = ProvenanceBuilder::new(SiteId(1), Timestamp(5)).attr("k", "v2").build(digest);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn annotations_do_not_change_identity() {
        let mut r = sample_record();
        let id = r.id;
        r.annotate(Annotation::new(Timestamp(999), "ops", "sensor 12 replaced"));
        assert_eq!(r.id, id);
        assert!(r.verify_identity(), "identity check ignores annotations");
    }

    #[test]
    fn tampered_attributes_fail_verification() {
        let mut r = sample_record();
        r.attributes.set("k", "tampered");
        assert!(!r.verify_identity());
    }

    #[test]
    fn record_round_trips_through_codec() {
        let mut r = sample_record();
        r.annotate(Annotation::new(Timestamp(1), "a", "note"));
        let enc = r.encode_to_vec();
        let dec = ProvenanceRecord::decode_all(&enc).unwrap();
        assert_eq!(r, dec);
    }

    #[test]
    fn time_range_helper_reads_conventional_attrs() {
        let r = sample_record();
        let range = r.time_range().unwrap();
        assert_eq!(range.start, Timestamp::from_secs(40));
        assert_eq!(range.end, Timestamp::from_secs(100));
    }

    #[test]
    fn time_range_helper_rejects_inverted_window() {
        let r = ProvenanceBuilder::new(SiteId(0), Timestamp(0))
            .attr(keys::TIME_START, Value::Time(Timestamp(10)))
            .attr(keys::TIME_END, Value::Time(Timestamp(5)))
            .build(Digest128::of(b"x"));
        assert_eq!(r.time_range(), None);
    }

    #[test]
    fn abstracted_tool_flag_round_trips() {
        let t = ToolDescriptor::abstracted("gcc", "3.3.3").with_param("opt", "O2");
        let dec = ToolDescriptor::decode_all(&t.encode_to_vec()).unwrap();
        assert!(dec.abstracted);
        assert_eq!(dec.label(), "gcc v3.3.3");
        assert_eq!(dec.params.get_str("opt"), Some("O2"));
    }

    #[test]
    fn parents_iterates_ancestry() {
        let r = sample_record();
        let parents: Vec<_> = r.parents().collect();
        assert_eq!(parents, vec![TupleSetId(1234)]);
        assert!(!r.is_raw());
    }
}
