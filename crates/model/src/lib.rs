//! # pass-model — the PASS provenance data model
//!
//! This crate defines the vocabulary of a Provenance-Aware Storage System
//! (PASS) as proposed by Ledlie et al., *Provenance-Aware Sensor Data
//! Storage* (NetDB'05 / ICDE 2005):
//!
//! * [`Value`] / [`Attributes`] — provenance is represented "fully as a
//!   collection of name-value pairs" (§II-A), not as an unstructured string.
//! * [`ProvenanceRecord`] — the first-class provenance object: descriptive
//!   attributes, ancestry edges ([`Derivation`]), and post-hoc
//!   [`Annotation`]s.
//! * [`TupleSet`] — the unit of indexing: a collection of sensor
//!   [`Reading`]s grouped by some property, typically time (§II).
//! * [`TupleSetId`] — the identity of a tuple set, *derived from its
//!   provenance*: the paper's "provenance as name" principle. Nonidentical
//!   data items never share an id because the content digest participates
//!   in the hash (PASS property 3, §V).
//! * [`codec`] — a canonical, deterministic binary encoding used for
//!   storage, wire-size accounting, and identity digests.
//! * [`flatname`] — the §II-A strawman: conventional self-describing
//!   filenames such as `volcano_vesuvius_10_11_04`, kept as a measurable
//!   baseline for experiment E2.
//!
//! The model layer has no storage or networking dependencies; every other
//! PASS crate builds on it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attr;
pub mod codec;
pub mod digest;
pub mod error;
pub mod flatname;
pub mod ids;
pub mod keys;
pub mod provenance;
pub mod time;
pub mod tuple;
pub mod value;

pub use attr::Attributes;
pub use digest::Digest128;
pub use error::ModelError;
pub use ids::{SensorId, SiteId, TupleSetId};
pub use provenance::{Annotation, Derivation, ProvenanceBuilder, ProvenanceRecord, ToolDescriptor};
pub use time::{TimeRange, Timestamp};
pub use tuple::{Reading, TupleSet};
pub use value::{GeoPoint, Value};
