//! Canonical binary encoding.
//!
//! One encoding serves three purposes:
//!
//! 1. **Storage** — `pass-storage` persists encoded records.
//! 2. **Wire accounting** — `pass-net` charges message sizes from encoded
//!    lengths, so the resource-consumption experiments (E7) measure real
//!    byte counts, not guesses.
//! 3. **Identity** — tuple-set ids are digests of encodings, so the
//!    encoding must be *canonical*: one logical value, one byte string.
//!    Map iteration is sorted ([`crate::Attributes`]), integers use
//!    fixed-rule varints, and there is no self-describing fluff.
//!
//! The format is deliberately simple: LEB128 varints, zigzag for signed,
//! length-prefixed strings/bytes, tag bytes for enums.

use crate::error::ModelError;

/// Maximum declared length accepted for any single string/bytes/list.
/// Guards decoders against corrupt length prefixes. 64 MiB is far above
/// anything PASS writes.
pub const MAX_LEN: u64 = 64 << 20;

/// Types that can write themselves into a canonical byte stream.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Encoded size in bytes (computed by encoding; override if a cheaper
    /// computation exists).
    fn encoded_len(&self) -> usize {
        self.encode_to_vec().len()
    }
}

/// Types that can read themselves back from a canonical byte stream.
pub trait Decode: Sized {
    /// Decodes one value from the front of the reader.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError>;

    /// Convenience: decodes from a slice and requires full consumption.
    fn decode_all(bytes: &[u8]) -> Result<Self, ModelError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(ModelError::Invalid(format!(
                "{} trailing bytes after decode",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

/// A bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the underlying slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads exactly `n` bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ModelError> {
        if self.remaining() < n {
            return Err(ModelError::UnexpectedEof { decoding: what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, ModelError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a LEB128 varint.
    pub fn take_varint(&mut self, what: &'static str) -> Result<u64, ModelError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.take_u8(what)?;
            if shift == 63 && b > 1 {
                return Err(ModelError::VarintOverflow);
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(ModelError::VarintOverflow);
            }
        }
    }

    /// Reads a length prefix, bounded by [`MAX_LEN`] and by the bytes that
    /// actually remain (a declared length can never exceed the input).
    pub fn take_len(&mut self, what: &'static str) -> Result<usize, ModelError> {
        let n = self.take_varint(what)?;
        if n > MAX_LEN || n > self.remaining() as u64 {
            return Err(ModelError::LengthOverflow { decoding: what, declared: n });
        }
        Ok(n as usize)
    }

    /// Reads a fixed-width little-endian u64.
    pub fn take_u64_le(&mut self, what: &'static str) -> Result<u64, ModelError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a fixed-width big-endian u128.
    pub fn take_u128_be(&mut self, what: &'static str) -> Result<u128, ModelError> {
        let b = self.take(16, what)?;
        Ok(u128::from_be_bytes(b.try_into().expect("16 bytes")))
    }
}

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Number of bytes [`put_varint`] writes for `v`.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (64 - v.leading_zeros() as usize).div_ceil(7)
}

/// Zigzag-encodes a signed integer so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Reads a length-prefixed byte string.
pub fn take_bytes<'a>(r: &mut Reader<'a>, what: &'static str) -> Result<&'a [u8], ModelError> {
    let n = r.take_len(what)?;
    r.take(n, what)
}

/// Reads a length-prefixed UTF-8 string.
pub fn take_string(r: &mut Reader<'_>, what: &'static str) -> Result<String, ModelError> {
    let b = take_bytes(r, what)?;
    String::from_utf8(b.to_vec()).map_err(|_| ModelError::InvalidUtf8)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Encode for u64 {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }
}

impl Decode for u64 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        r.take_varint("u64")
    }
}

impl Encode for i64 {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, zigzag(*self));
    }
}

impl Decode for i64 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(unzigzag(r.take_varint("i64")?))
    }
}

impl Encode for String {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_str(buf, self);
    }
}

impl Decode for String {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        take_string(r, "string")
    }
}

impl Encode for bool {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        match r.take_u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ModelError::InvalidTag { decoding: "bool", tag }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode_into(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        let n = r.take_varint("vec length")?;
        if n > MAX_LEN {
            return Err(ModelError::LengthOverflow { decoding: "vec", declared: n });
        }
        // Defensive cap: each element takes at least one byte.
        if n > r.remaining() as u64 {
            return Err(ModelError::LengthOverflow { decoding: "vec", declared: n });
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode_into(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        match r.take_u8("option")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            tag => Err(ModelError::InvalidTag { decoding: "option", tag }),
        }
    }
}

// ---------------------------------------------------------------------------
// Model-type impls
// ---------------------------------------------------------------------------

use crate::attr::Attributes;
use crate::ids::{SensorId, SiteId, TupleSetId};
use crate::time::{TimeRange, Timestamp};
use crate::value::{GeoPoint, Value};

impl Encode for Timestamp {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.0);
    }
}

impl Decode for Timestamp {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(Timestamp(r.take_varint("timestamp")?))
    }
}

impl Encode for TimeRange {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.start.0);
        // Delta encoding keeps common (short) ranges to a couple of bytes.
        put_varint(buf, self.end.0 - self.start.0);
    }
}

impl Decode for TimeRange {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        let start = r.take_varint("time range start")?;
        let delta = r.take_varint("time range delta")?;
        let end = start
            .checked_add(delta)
            .ok_or_else(|| ModelError::Invalid("time range overflows u64".into()))?;
        Ok(TimeRange { start: Timestamp(start), end: Timestamp(end) })
    }
}

impl Encode for TupleSetId {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn encoded_len(&self) -> usize {
        TupleSetId::WIDTH
    }
}

impl Decode for TupleSetId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(TupleSetId(r.take_u128_be("tuple set id")?))
    }
}

impl Encode for SensorId {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.0);
    }
}

impl Decode for SensorId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(SensorId(r.take_varint("sensor id")?))
    }
}

impl Encode for SiteId {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, u64::from(self.0));
    }
}

impl Decode for SiteId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        let v = r.take_varint("site id")?;
        u32::try_from(v)
            .map(SiteId)
            .map_err(|_| ModelError::Invalid(format!("site id {v} exceeds u32")))
    }
}

impl Encode for Value {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
        match self {
            Value::Null => {}
            Value::Bool(b) => buf.push(u8::from(*b)),
            Value::Int(i) => put_varint(buf, zigzag(*i)),
            Value::Float(x) => buf.extend_from_slice(&x.to_bits().to_le_bytes()),
            Value::Str(s) => put_str(buf, s),
            Value::Bytes(b) => put_bytes(buf, b),
            Value::Time(t) => put_varint(buf, t.0),
            Value::Geo(g) => {
                buf.extend_from_slice(&g.lat.to_bits().to_le_bytes());
                buf.extend_from_slice(&g.lon.to_bits().to_le_bytes());
            }
            Value::List(vs) => {
                put_varint(buf, vs.len() as u64);
                for v in vs {
                    v.encode_into(buf);
                }
            }
        }
    }
}

impl Decode for Value {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        let tag = r.take_u8("value tag")?;
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Bool(bool::decode_from(r)?),
            2 => Value::Int(unzigzag(r.take_varint("int value")?)),
            3 => Value::Float(f64::from_bits(r.take_u64_le("float value")?)),
            4 => Value::Str(take_string(r, "str value")?),
            5 => Value::Bytes(take_bytes(r, "bytes value")?.to_vec()),
            6 => Value::Time(Timestamp(r.take_varint("time value")?)),
            7 => {
                let lat = f64::from_bits(r.take_u64_le("geo lat")?);
                let lon = f64::from_bits(r.take_u64_le("geo lon")?);
                Value::Geo(GeoPoint::new(lat, lon))
            }
            8 => {
                let n = r.take_varint("list length")?;
                if n > r.remaining() as u64 {
                    return Err(ModelError::LengthOverflow { decoding: "list", declared: n });
                }
                let mut vs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    vs.push(Value::decode_from(r)?);
                }
                Value::List(vs)
            }
            tag => return Err(ModelError::InvalidTag { decoding: "value", tag }),
        })
    }
}

impl Encode for Attributes {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        // BTreeMap iteration is sorted: the encoding is canonical.
        for (k, v) in self.iter() {
            put_str(buf, k);
            v.encode_into(buf);
        }
    }
}

impl Decode for Attributes {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        let n = r.take_varint("attribute count")?;
        if n > r.remaining() as u64 {
            return Err(ModelError::LengthOverflow { decoding: "attributes", declared: n });
        }
        let mut attrs = Attributes::new();
        for _ in 0..n {
            let k = take_string(r, "attribute name")?;
            let v = Value::decode_from(r)?;
            attrs.set(k, v);
        }
        Ok(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "length prediction for {v}");
            let mut r = Reader::new(&buf);
            assert_eq!(r.take_varint("test").unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // Eleven continuation bytes cannot encode a u64.
        let buf = [0xffu8; 11];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.take_varint("test"), Err(ModelError::VarintOverflow)));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456, 123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn value_round_trips() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(3.25),
            Value::Float(f64::NAN),
            Value::Str("αβγ traffic".into()),
            Value::Bytes(vec![0, 1, 2, 255]),
            Value::Time(Timestamp(99_999)),
            Value::Geo(GeoPoint::new(51.5, -0.12)),
            Value::List(vec![Value::Int(1), Value::Str("x".into()), Value::List(vec![])]),
        ];
        for v in values {
            let enc = v.encode_to_vec();
            let dec = Value::decode_all(&enc).unwrap();
            assert_eq!(v, dec, "round trip of {v}");
        }
    }

    #[test]
    fn attributes_encoding_is_canonical() {
        let a = Attributes::new().with("b", 2i64).with("a", 1i64);
        let b = Attributes::new().with("a", 1i64).with("b", 2i64);
        assert_eq!(a.encode_to_vec(), b.encode_to_vec());
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut enc = Value::Int(7).encode_to_vec();
        enc.push(0);
        assert!(Value::decode_all(&enc).is_err());
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert!(matches!(
            Value::decode_all(&[200]),
            Err(ModelError::InvalidTag { decoding: "value", tag: 200 })
        ));
    }

    #[test]
    fn decode_rejects_lying_length_prefix() {
        // Claims a 100-byte string but provides 2 bytes.
        let mut enc = vec![4u8]; // Str tag
        put_varint(&mut enc, 100);
        enc.extend_from_slice(b"ab");
        assert!(Value::decode_all(&enc).is_err());
    }

    #[test]
    fn time_range_delta_encoding_round_trips() {
        let r0 = TimeRange::new(Timestamp(1_000), Timestamp(1_060));
        let enc = r0.encode_to_vec();
        assert!(enc.len() <= 3, "short ranges encode compactly, got {}", enc.len());
        assert_eq!(TimeRange::decode_all(&enc).unwrap(), r0);
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<String>> = vec![None, Some("x".into())];
        let enc = v.encode_to_vec();
        assert_eq!(Vec::<Option<String>>::decode_all(&enc).unwrap(), v);
    }

    #[test]
    fn float_nan_payload_preserved() {
        let bits = 0x7ff8_0000_dead_beefu64;
        let v = Value::Float(f64::from_bits(bits));
        let dec = Value::decode_all(&v.encode_to_vec()).unwrap();
        match dec {
            Value::Float(x) => assert_eq!(x.to_bits(), bits),
            other => panic!("expected float, got {other}"),
        }
    }
}
