//! Error types for the model layer.

use std::fmt;

/// Errors raised while encoding, decoding, or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The byte stream ended before a complete object was decoded.
    UnexpectedEof {
        /// What was being decoded when the stream ran out.
        decoding: &'static str,
    },
    /// A tag byte did not correspond to any known variant.
    InvalidTag {
        /// What was being decoded.
        decoding: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded the sanity limit for its context.
    LengthOverflow {
        /// What was being decoded.
        decoding: &'static str,
        /// The declared length.
        declared: u64,
    },
    /// Bytes declared as UTF-8 were not valid UTF-8.
    InvalidUtf8,
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// A semantic validation failed (e.g. a time range with end < start).
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnexpectedEof { decoding } => {
                write!(f, "unexpected end of input while decoding {decoding}")
            }
            ModelError::InvalidTag { decoding, tag } => {
                write!(f, "invalid tag {tag:#04x} while decoding {decoding}")
            }
            ModelError::LengthOverflow { decoding, declared } => {
                write!(f, "length {declared} too large while decoding {decoding}")
            }
            ModelError::InvalidUtf8 => write!(f, "invalid UTF-8 in encoded string"),
            ModelError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            ModelError::Invalid(msg) => write!(f, "invalid model object: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}
