//! Identifiers used across PASS.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The identity of a tuple set.
///
/// Per the paper's "provenance as name" principle (§II-A), this is not an
/// arbitrary surrogate: it is the 128-bit digest of the canonical encoding
/// of the tuple set's provenance (attributes, ancestry, origin, creation
/// time, and the digest of the data itself). Two tuple sets therefore share
/// an id only if their provenance — and their contents — are identical,
/// which is exactly PASS property 3 (§V).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TupleSetId(pub u128);

impl TupleSetId {
    /// Byte width of the big-endian storage encoding.
    pub const WIDTH: usize = 16;

    /// Big-endian bytes; lexicographic order equals numeric order, so ids
    /// can be used directly as storage keys.
    pub fn to_be_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Inverse of [`TupleSetId::to_be_bytes`].
    pub fn from_be_bytes(b: [u8; 16]) -> Self {
        TupleSetId(u128::from_be_bytes(b))
    }

    /// Short hex prefix used in display output and the query language
    /// (`ts:3f2a…`).
    pub fn short_hex(&self) -> String {
        format!("{:08x}", (self.0 >> 96) as u32)
    }

    /// Full 32-digit hex form.
    pub fn full_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a full or prefix hex form as produced by [`full_hex`]
    /// (prefixes are zero-extended on the right, matching `short_hex`).
    ///
    /// [`full_hex`]: TupleSetId::full_hex
    pub fn parse_hex(s: &str) -> Option<TupleSetId> {
        if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        Some(TupleSetId(v << (4 * (32 - s.len()))))
    }
}

impl fmt::Debug for TupleSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.short_hex())
    }
}

impl fmt::Display for TupleSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// A physical sensor device.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SensorId(pub u64);

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sensor#{}", self.0)
    }
}

/// A storage/index site (one participant in the distributed system).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_bytes_round_trip_preserves_order() {
        let a = TupleSetId(42);
        let b = TupleSetId(u128::MAX - 7);
        assert_eq!(TupleSetId::from_be_bytes(a.to_be_bytes()), a);
        assert_eq!(TupleSetId::from_be_bytes(b.to_be_bytes()), b);
        assert!(a < b);
        assert!(a.to_be_bytes() < b.to_be_bytes(), "byte order mirrors numeric order");
    }

    #[test]
    fn hex_round_trip() {
        let id = TupleSetId(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let full = id.full_hex();
        assert_eq!(full.len(), 32);
        assert_eq!(TupleSetId::parse_hex(&full), Some(id));
    }

    #[test]
    fn hex_prefix_parse_is_left_aligned() {
        let id = TupleSetId::parse_hex("ff").unwrap();
        assert_eq!(id.0 >> 120, 0xff);
    }

    #[test]
    fn hex_parse_rejects_garbage() {
        assert_eq!(TupleSetId::parse_hex(""), None);
        assert_eq!(TupleSetId::parse_hex("xyz"), None);
        assert_eq!(TupleSetId::parse_hex(&"0".repeat(33)), None);
    }

    #[test]
    fn short_hex_is_prefix_of_full_hex() {
        let id = TupleSetId(0xdead_beef_0000_0000_0000_0000_0000_0001);
        assert!(id.full_hex().starts_with(&id.short_hex()));
    }
}
