//! Well-known attribute names.
//!
//! Provenance schemas are community-specific (§II-A), but the PASS crates
//! agree on a small set of conventional names so that indexes, placement
//! policies, and the flat-name baseline know where to look. Domains are
//! free to add arbitrary further attributes.

/// Application domain, e.g. `"traffic"`, `"weather"`, `"medical"`.
pub const DOMAIN: &str = "domain";
/// Geographic region label, e.g. `"london"`, `"boston"`.
pub const REGION: &str = "region";
/// Kind of tuple set within a domain, e.g. `"car_sighting"`, `"vitals"`.
pub const TYPE: &str = "type";
/// Sensor modality, e.g. `"camera"`, `"magnetometer"`, `"pulse_oximeter"`.
pub const SENSOR_TYPE: &str = "sensor.type";
/// Inclusive start of the covered time window ([`crate::Value::Time`]).
pub const TIME_START: &str = "time.start";
/// Inclusive end of the covered time window ([`crate::Value::Time`]).
pub const TIME_END: &str = "time.end";
/// Collection site location ([`crate::Value::Geo`]).
pub const LOCATION: &str = "location";
/// Free-text description.
pub const DESCRIPTION: &str = "description";
/// For medical data: opaque patient identifier.
pub const PATIENT: &str = "patient";
/// Responsible operator/EMT/researcher.
pub const OPERATOR: &str = "operator";
/// Hardware/software revision of the producing sensor (§I: "one might mark
/// when individual sensors were replaced with newer models").
pub const SENSOR_REVISION: &str = "sensor.revision";
/// Number of readings in the tuple set.
pub const READING_COUNT: &str = "reading.count";

/// Attribute names that every conforming record should carry; used by
/// validation helpers and the flat-name baseline.
pub const CONVENTIONAL: &[&str] = &[DOMAIN, REGION, TYPE, TIME_START, TIME_END];
