//! Logical timestamps and time ranges.
//!
//! PASS experiments run against simulated clocks, so timestamps are plain
//! milliseconds on a logical epoch rather than wall-clock instants. Tuple
//! sets are "collections of readings grouped by some property, typically
//! time" (§II), which makes [`TimeRange`] the most common grouping key.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A logical timestamp in milliseconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The epoch itself.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000)
    }

    /// Builds a timestamp from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Milliseconds since the epoch.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating difference in milliseconds.
    pub fn millis_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, ms: u64) -> Timestamp {
        Timestamp(self.0 + ms)
    }
}

impl Sub<u64> for Timestamp {
    type Output = Timestamp;
    fn sub(self, ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(ms))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

/// A closed time interval `[start, end]`, both ends inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Inclusive upper bound; always `>= start`.
    pub end: Timestamp,
}

impl TimeRange {
    /// Creates a range, normalizing a reversed pair.
    pub fn new(a: Timestamp, b: Timestamp) -> Self {
        if a <= b {
            TimeRange { start: a, end: b }
        } else {
            TimeRange { start: b, end: a }
        }
    }

    /// A degenerate range covering a single instant.
    pub fn instant(t: Timestamp) -> Self {
        TimeRange { start: t, end: t }
    }

    /// Length of the interval in milliseconds.
    pub fn duration_millis(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True when the two closed intervals share at least one instant.
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// True when `t` lies within the interval.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// True when `other` lies entirely within `self`.
    pub fn covers(&self, other: &TimeRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// The smallest range covering both inputs.
    pub fn union(&self, other: &TimeRange) -> TimeRange {
        TimeRange { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(2);
        assert_eq!(t.as_millis(), 2_000);
        assert_eq!((t + 500).as_millis(), 2_500);
        assert_eq!((t - 500).as_millis(), 1_500);
        assert_eq!((t - 5_000).as_millis(), 0, "subtraction saturates");
        assert_eq!(t.millis_since(Timestamp::from_millis(1_500)), 500);
        assert_eq!(Timestamp::from_millis(1_500).millis_since(t), 0);
    }

    #[test]
    fn range_normalizes_reversed_endpoints() {
        let r = TimeRange::new(Timestamp(10), Timestamp(3));
        assert_eq!(r.start, Timestamp(3));
        assert_eq!(r.end, Timestamp(10));
    }

    #[test]
    fn range_overlap_cases() {
        let a = TimeRange::new(Timestamp(0), Timestamp(10));
        let b = TimeRange::new(Timestamp(10), Timestamp(20));
        let c = TimeRange::new(Timestamp(11), Timestamp(20));
        assert!(a.overlaps(&b), "closed intervals touch at 10");
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn range_contains_and_covers() {
        let r = TimeRange::new(Timestamp(5), Timestamp(15));
        assert!(r.contains(Timestamp(5)));
        assert!(r.contains(Timestamp(15)));
        assert!(!r.contains(Timestamp(16)));
        assert!(r.covers(&TimeRange::new(Timestamp(6), Timestamp(14))));
        assert!(!r.covers(&TimeRange::new(Timestamp(6), Timestamp(16))));
    }

    #[test]
    fn range_union_spans_both() {
        let a = TimeRange::new(Timestamp(0), Timestamp(4));
        let b = TimeRange::new(Timestamp(10), Timestamp(12));
        let u = a.union(&b);
        assert_eq!(u, TimeRange::new(Timestamp(0), Timestamp(12)));
    }

    #[test]
    fn instant_is_degenerate() {
        let r = TimeRange::instant(Timestamp(7));
        assert_eq!(r.duration_millis(), 0);
        assert!(r.contains(Timestamp(7)));
    }
}
