//! Attribute collections: provenance as name-value pairs (§II-A).

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered collection of name-value pairs.
///
/// Backed by a `BTreeMap` so iteration order is canonical: encoding the
/// same logical attribute set always produces the same bytes, which is what
/// makes provenance digests — and therefore tuple-set identity — stable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Attributes(BTreeMap<String, Value>);

impl Attributes {
    /// An empty collection.
    pub fn new() -> Self {
        Attributes(BTreeMap::new())
    }

    /// Inserts or replaces an attribute, returning `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Inserts or replaces an attribute.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.0.insert(name.into(), value.into())
    }

    /// Looks up an attribute by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.0.get(name)
    }

    /// Removes an attribute.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.0.remove(name)
    }

    /// True when the attribute is present.
    pub fn contains(&self, name: &str) -> bool {
        self.0.contains_key(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no attributes are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates in canonical (sorted-name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names only, in canonical order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(String::as_str)
    }

    /// Merges `other` into `self`; on conflict `other` wins. Used when a
    /// derived tuple set inherits, then overrides, parent attributes.
    pub fn merge(&mut self, other: &Attributes) {
        for (k, v) in other.iter() {
            self.0.insert(k.to_owned(), v.clone());
        }
    }

    /// Convenience string accessor.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Convenience integer accessor.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    /// Convenience time accessor.
    pub fn get_time(&self, name: &str) -> Option<crate::time::Timestamp> {
        self.get(name).and_then(Value::as_time)
    }
}

impl FromIterator<(String, Value)> for Attributes {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Attributes(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Attributes {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Attributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chaining_and_lookup() {
        let a = Attributes::new()
            .with("domain", "traffic")
            .with("count", 42i64)
            .with("calibrated", true);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get_str("domain"), Some("traffic"));
        assert_eq!(a.get_int("count"), Some(42));
        assert_eq!(a.get("calibrated"), Some(&Value::Bool(true)));
        assert!(!a.contains("missing"));
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let a = Attributes::new().with("z", 1i64).with("a", 2i64).with("m", 3i64);
        let names: Vec<_> = a.names().collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn insertion_order_does_not_affect_equality() {
        let a = Attributes::new().with("x", 1i64).with("y", 2i64);
        let b = Attributes::new().with("y", 2i64).with("x", 1i64);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_other_wins_on_conflict() {
        let mut a = Attributes::new().with("k", 1i64).with("only_a", true);
        let b = Attributes::new().with("k", 2i64).with("only_b", false);
        a.merge(&b);
        assert_eq!(a.get_int("k"), Some(2));
        assert!(a.contains("only_a"));
        assert!(a.contains("only_b"));
    }

    #[test]
    fn display_renders_pairs() {
        let a = Attributes::new().with("b", 1i64).with("a", "x");
        assert_eq!(a.to_string(), "{a=\"x\", b=1}");
    }
}
