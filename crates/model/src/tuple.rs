//! Tuple sets: the unit of indexing (§II).
//!
//! "A better solution is to index tuple sets, collections of readings
//! grouped by some property, typically time." A [`TupleSet`] pairs the
//! readings with the [`ProvenanceRecord`] that names them.

use crate::codec::{self, Decode, Encode, Reader};
use crate::digest::Digest128;
use crate::error::ModelError;
use crate::ids::SensorId;
use crate::provenance::ProvenanceRecord;
use crate::time::{TimeRange, Timestamp};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// One sensor reading: who measured, when, and a small set of named fields
/// (e.g. `speed_kmh=42.0`, or `hr=88, spo2=97`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// The producing sensor.
    pub sensor: SensorId,
    /// Measurement time.
    pub time: Timestamp,
    /// Named measurement fields, in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Reading {
    /// Creates a reading with no fields.
    pub fn new(sensor: SensorId, time: Timestamp) -> Self {
        Reading { sensor, time, fields: Vec::new() }
    }

    /// Adds a field, returning `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// Looks up a field by name (first match).
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

impl Encode for Reading {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.sensor.encode_into(buf);
        self.time.encode_into(buf);
        codec::put_varint(buf, self.fields.len() as u64);
        for (name, value) in &self.fields {
            codec::put_str(buf, name);
            value.encode_into(buf);
        }
    }
}

impl Decode for Reading {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        let sensor = SensorId::decode_from(r)?;
        let time = Timestamp::decode_from(r)?;
        let n = r.take_varint("reading field count")?;
        if n > r.remaining() as u64 {
            return Err(ModelError::LengthOverflow { decoding: "reading fields", declared: n });
        }
        let mut fields = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = codec::take_string(r, "field name")?;
            let value = Value::decode_from(r)?;
            fields.push((name, value));
        }
        Ok(Reading { sensor, time, fields })
    }
}

/// A named collection of readings: provenance + data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleSet {
    /// The record that names this data (identity, attributes, ancestry).
    pub provenance: ProvenanceRecord,
    /// The readings themselves.
    pub readings: Vec<Reading>,
}

impl TupleSet {
    /// Pairs a provenance record with its readings.
    ///
    /// Returns an error when the record's content digest does not match the
    /// readings — catching exactly the "linkage back from the index to the
    /// data might … end up pointing to the wrong thing" failure the paper
    /// warns about (§IV-A).
    pub fn new(provenance: ProvenanceRecord, readings: Vec<Reading>) -> Result<Self, ModelError> {
        let digest = Self::content_digest_of(&readings);
        if digest != provenance.content_digest {
            return Err(ModelError::Invalid(format!(
                "content digest mismatch: record names {}, data hashes to {}",
                provenance.content_digest, digest
            )));
        }
        Ok(TupleSet { provenance, readings })
    }

    /// Pairs without verifying (for trusted paths, e.g. decoding from the
    /// engine's own storage, where verification already happened on write).
    pub fn new_unchecked(provenance: ProvenanceRecord, readings: Vec<Reading>) -> Self {
        TupleSet { provenance, readings }
    }

    /// The canonical digest of a reading sequence; this is what binds data
    /// to identity (PASS property 3).
    pub fn content_digest_of(readings: &[Reading]) -> Digest128 {
        let mut buf = Vec::with_capacity(readings.len() * 24 + 8);
        codec::put_varint(&mut buf, readings.len() as u64);
        for reading in readings {
            reading.encode_into(&mut buf);
        }
        Digest128::of(&buf)
    }

    /// Number of readings.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// True when the set holds no readings.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// The observed time span of the readings (min..max measurement time),
    /// if any readings exist.
    pub fn observed_range(&self) -> Option<TimeRange> {
        let first = self.readings.first()?;
        let (mut lo, mut hi) = (first.time, first.time);
        for reading in &self.readings[1..] {
            lo = lo.min(reading.time);
            hi = hi.max(reading.time);
        }
        Some(TimeRange { start: lo, end: hi })
    }
}

impl Encode for TupleSet {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.provenance.encode_into(buf);
        self.readings.encode_into(buf);
    }
}

impl Decode for TupleSet {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(TupleSet {
            provenance: ProvenanceRecord::decode_from(r)?,
            readings: Vec::<Reading>::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::ProvenanceBuilder;
    use crate::SiteId;

    fn readings() -> Vec<Reading> {
        vec![
            Reading::new(SensorId(1), Timestamp(10)).with("speed", 42.5),
            Reading::new(SensorId(2), Timestamp(5)).with("speed", 38.0).with("lane", 2i64),
        ]
    }

    fn record_for(readings: &[Reading]) -> ProvenanceRecord {
        ProvenanceBuilder::new(SiteId(0), Timestamp(100))
            .attr("domain", "traffic")
            .build(TupleSet::content_digest_of(readings))
    }

    #[test]
    fn construction_verifies_content_digest() {
        let rs = readings();
        let record = record_for(&rs);
        assert!(TupleSet::new(record, rs).is_ok());
    }

    #[test]
    fn construction_rejects_mismatched_data() {
        let rs = readings();
        let record = record_for(&rs);
        let tampered = vec![Reading::new(SensorId(9), Timestamp(1)).with("speed", 0.0)];
        let err = TupleSet::new(record, tampered).unwrap_err();
        assert!(matches!(err, ModelError::Invalid(_)));
    }

    #[test]
    fn content_digest_is_order_sensitive() {
        // Tuple sets are sequences, not bags: reordering is different data.
        let rs = readings();
        let mut reversed = rs.clone();
        reversed.reverse();
        assert_ne!(TupleSet::content_digest_of(&rs), TupleSet::content_digest_of(&reversed));
    }

    #[test]
    fn observed_range_spans_min_max() {
        let rs = readings();
        let ts = TupleSet::new(record_for(&rs), rs).unwrap();
        let range = ts.observed_range().unwrap();
        assert_eq!(range, TimeRange::new(Timestamp(5), Timestamp(10)));
    }

    #[test]
    fn empty_set_has_no_observed_range() {
        let record = record_for(&[]);
        let ts = TupleSet::new(record, vec![]).unwrap();
        assert!(ts.is_empty());
        assert_eq!(ts.observed_range(), None);
    }

    #[test]
    fn tuple_set_round_trips_through_codec() {
        let rs = readings();
        let ts = TupleSet::new(record_for(&rs), rs).unwrap();
        let dec = TupleSet::decode_all(&ts.encode_to_vec()).unwrap();
        assert_eq!(ts, dec);
    }

    #[test]
    fn reading_field_lookup() {
        let r = Reading::new(SensorId(1), Timestamp(0)).with("a", 1i64).with("b", 2i64);
        assert_eq!(r.field("b"), Some(&Value::Int(2)));
        assert_eq!(r.field("missing"), None);
    }
}
