//! Dynamically-typed attribute values.
//!
//! Provenance metadata is "application-specific or at least
//! community-specific" (§II-A): the model cannot fix a schema, so attribute
//! values are a small dynamic type. The one hard requirement, imposed by
//! the index layer, is a *total* order over every value (floats included),
//! so that any attribute can key a range index.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A geographic coordinate. Sensor data is "locale specific" (§III-D);
/// placement experiments need positions on every tuple set.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Degrees latitude, positive north.
    pub lat: f64,
    /// Degrees longitude, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point; does not validate bounds (simulated worlds may use
    /// abstract planar coordinates).
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Euclidean distance in degree-space. Good enough for the simulator's
    /// abstract geography; not a geodesic.
    pub fn distance(&self, other: &GeoPoint) -> f64 {
        let dl = self.lat - other.lat;
        let dn = self.lon - other.lon;
        (dl * dl + dn * dn).sqrt()
    }
}

impl PartialEq for GeoPoint {
    fn eq(&self, other: &Self) -> bool {
        self.lat.total_cmp(&other.lat) == Ordering::Equal
            && self.lon.total_cmp(&other.lon) == Ordering::Equal
    }
}

impl Eq for GeoPoint {}

impl PartialOrd for GeoPoint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GeoPoint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.lat.total_cmp(&other.lat).then_with(|| self.lon.total_cmp(&other.lon))
    }
}

impl Hash for GeoPoint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.lat.to_bits().hash(state);
        self.lon.to_bits().hash(state);
    }
}

/// An attribute value.
///
/// The ordering across *different* variants follows the variant tag order
/// below; within a variant it is the natural order of the payload (floats
/// use IEEE `total_cmp`). This yields the total order the indexes need.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub enum Value {
    /// Explicit absence (distinct from a missing attribute).
    #[default]
    Null,
    /// Boolean flag.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Opaque bytes (e.g. raw waveform digests).
    Bytes(Vec<u8>),
    /// Timestamp, for `time.start` / `time.end` style attributes.
    Time(Timestamp),
    /// Geographic coordinate.
    Geo(GeoPoint),
    /// Ordered list of values.
    List(Vec<Value>),
}

impl Value {
    /// Small integer identifying the variant; doubles as the codec tag and
    /// the cross-variant ordering rank.
    pub fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
            Value::Time(_) => 6,
            Value::Geo(_) => 7,
            Value::List(_) => 8,
        }
    }

    /// Human-readable name of the variant.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::Time(_) => "time",
            Value::Geo(_) => "geo",
            Value::List(_) => "list",
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload; `Int` coerces losslessly where possible.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the timestamp payload, if this is a `Time`.
    pub fn as_time(&self) -> Option<Timestamp> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Returns the geo payload, if this is a `Geo`.
    pub fn as_geo(&self) -> Option<GeoPoint> {
        match self {
            Value::Geo(g) => Some(*g),
            _ => None,
        }
    }

    /// Returns the bool payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (Geo(a), Geo(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.tag().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::Time(t) => t.hash(state),
            Value::Geo(g) => g.hash(state),
            Value::List(vs) => vs.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
            Value::Time(t) => write!(f, "{t}"),
            Value::Geo(g) => write!(f, "({}, {})", g.lat, g.lon),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Timestamp> for Value {
    fn from(t: Timestamp) -> Self {
        Value::Time(t)
    }
}
impl From<GeoPoint> for Value {
    fn from(g: GeoPoint) -> Self {
        Value::Geo(g)
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(vs: Vec<T>) -> Self {
        Value::List(vs.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_variant_order_follows_tags() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(0.0),
            Value::Str("a".into()),
            Value::Bytes(vec![1]),
            Value::Time(Timestamp(3)),
            Value::Geo(GeoPoint::new(0.0, 0.0)),
            Value::List(vec![]),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn float_ordering_is_total_including_nan() {
        let nan = Value::Float(f64::NAN);
        let inf = Value::Float(f64::INFINITY);
        let one = Value::Float(1.0);
        assert!(one < inf);
        assert!(inf < nan, "total_cmp puts positive NaN above +inf");
        assert_eq!(nan.cmp(&nan), Ordering::Equal, "NaN equals itself under total order");
    }

    #[test]
    fn negative_zero_and_positive_zero_are_distinct_under_total_order() {
        let nz = Value::Float(-0.0);
        let pz = Value::Float(0.0);
        assert!(nz < pz);
        assert_ne!(nz, pz);
    }

    #[test]
    fn int_float_coercion() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::from("x").to_string(), "\"x\"");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_string(), "0xab01");
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::from(vec![1i64, 2]);
        let b = Value::from(vec![1i64, 3]);
        let c = Value::from(vec![1i64, 2, 0]);
        assert!(a < b);
        assert!(a < c, "prefix sorts first");
    }

    #[test]
    fn geo_distance() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}
