//! The §II-A strawman: conventional self-describing filenames.
//!
//! The paper opens its naming argument with names like
//! `volcano_vesuvius_10_11_04` and enumerates their failure modes:
//! complicated conventions, arbitrary length, no enforcement, hidden
//! structure, inexpressible metadata, unrecognizable relationships. This
//! module implements that convention *honestly* — building the best
//! flat name we can, and parsing it back as well as a convention-following
//! tool could — so that experiment E2 can measure, rather than assert, the
//! precision/recall and cost gap against structured provenance.

use crate::attr::Attributes;
use crate::keys;
use crate::provenance::ProvenanceRecord;
use crate::time::Timestamp;
use crate::value::Value;

/// The naming convention: which attributes appear, in which order.
///
/// The convention must pick a fixed significance ordering — exactly the
/// §IV-B complaint about hierarchical naming. Attributes outside the
/// convention simply cannot be expressed.
pub const NAME_FIELDS: &[&str] = &[keys::DOMAIN, keys::REGION, keys::TYPE, keys::SENSOR_TYPE];

/// Separator between fields. Values containing the separator are mangled
/// (replaced by `-`), which is one source of recall loss.
pub const SEP: char = '_';

/// Builds the conventional flat filename for a record.
///
/// Format: `domain_region_type_sensortype_STARTSECS_ENDSECS`. Missing
/// attributes render as `x` (the convention has no way to say "absent"
/// unambiguously — `x` is itself a legal value, another honesty tax).
pub fn build(record: &ProvenanceRecord) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(NAME_FIELDS.len() + 2);
    for field in NAME_FIELDS {
        let part = match record.attributes.get(field) {
            Some(Value::Str(s)) => mangle(s),
            Some(other) => mangle(&other.to_string()),
            None => "x".to_owned(),
        };
        parts.push(part);
    }
    let (start, end) = match record.time_range() {
        Some(range) => (range.start.as_secs(), range.end.as_secs()),
        None => (0, 0),
    };
    parts.push(start.to_string());
    parts.push(end.to_string());
    parts.join(&SEP.to_string())
}

fn mangle(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| if c == SEP || c.is_whitespace() { '-' } else { c })
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '.')
        .collect();
    if cleaned.is_empty() {
        "x".to_owned()
    } else {
        cleaned
    }
}

/// What a convention-following parser can recover from a flat name.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedName {
    /// Recovered attributes (strings only — the convention erases types).
    pub attributes: Attributes,
    /// Recovered time window, seconds precision only.
    pub start: Timestamp,
    /// End of window.
    pub end: Timestamp,
}

/// Parses a flat name back into attributes.
///
/// Lossy by construction: types are gone (everything is a string), mangled
/// characters are unrecoverable, `x` is ambiguous between "absent" and the
/// literal value, and any attribute outside [`NAME_FIELDS`] never made it
/// into the name at all.
pub fn parse(name: &str) -> Option<ParsedName> {
    let parts: Vec<&str> = name.split(SEP).collect();
    if parts.len() != NAME_FIELDS.len() + 2 {
        return None;
    }
    let mut attributes = Attributes::new();
    for (field, part) in NAME_FIELDS.iter().zip(&parts) {
        if *part != "x" {
            attributes.set(*field, Value::Str((*part).to_owned()));
        }
    }
    let start = parts[NAME_FIELDS.len()].parse::<u64>().ok()?;
    let end = parts[NAME_FIELDS.len() + 1].parse::<u64>().ok()?;
    Some(ParsedName {
        attributes,
        start: Timestamp::from_secs(start),
        end: Timestamp::from_secs(end),
    })
}

/// Does a flat name *appear* to match `attr = value`, judged the only way
/// a filename index can: by parsing the name. Used as the E2 baseline
/// matcher; compare with true attribute matching to measure precision and
/// recall.
pub fn name_matches(name: &str, attr: &str, value: &Value) -> bool {
    let Some(parsed) = parse(name) else {
        return false;
    };
    match parsed.attributes.get(attr) {
        Some(Value::Str(s)) => match value {
            Value::Str(v) => s == &mangle(v),
            other => s == &mangle(&other.to_string()),
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::Digest128;
    use crate::provenance::ProvenanceBuilder;
    use crate::time::TimeRange;
    use crate::SiteId;

    fn record(domain: &str, region: &str) -> ProvenanceRecord {
        ProvenanceBuilder::new(SiteId(1), Timestamp::from_secs(50))
            .attr(keys::DOMAIN, domain)
            .attr(keys::REGION, region)
            .attr(keys::TYPE, "eruption")
            .attr(keys::SENSOR_TYPE, "seismometer")
            .time_range(TimeRange::new(Timestamp::from_secs(10), Timestamp::from_secs(20)))
            .build(Digest128::of(b"data"))
    }

    #[test]
    fn build_produces_conventional_name() {
        let name = build(&record("volcano", "vesuvius"));
        assert_eq!(name, "volcano_vesuvius_eruption_seismometer_10_20");
    }

    #[test]
    fn parse_round_trips_clean_names() {
        let rec = record("volcano", "vesuvius");
        let parsed = parse(&build(&rec)).unwrap();
        assert_eq!(parsed.attributes.get_str(keys::DOMAIN), Some("volcano"));
        assert_eq!(parsed.attributes.get_str(keys::REGION), Some("vesuvius"));
        assert_eq!(parsed.start, Timestamp::from_secs(10));
        assert_eq!(parsed.end, Timestamp::from_secs(20));
    }

    #[test]
    fn separator_in_value_is_lossy() {
        // "new_york" mangles to "new-york": the round trip loses the value.
        let rec = record("traffic", "new_york");
        let name = build(&rec);
        let parsed = parse(&name).unwrap();
        assert_eq!(parsed.attributes.get_str(keys::REGION), Some("new-york"));
        assert_ne!(parsed.attributes.get_str(keys::REGION), Some("new_york"));
    }

    #[test]
    fn missing_attribute_is_ambiguous() {
        let rec = ProvenanceBuilder::new(SiteId(1), Timestamp(0))
            .attr(keys::DOMAIN, "weather")
            .build(Digest128::of(b"d"));
        let name = build(&rec);
        assert!(name.contains("_x_"), "missing fields render as x: {name}");
        let parsed = parse(&name).unwrap();
        assert!(!parsed.attributes.contains(keys::REGION));
    }

    #[test]
    fn unconventional_attribute_never_appears() {
        let rec = ProvenanceBuilder::new(SiteId(1), Timestamp(0))
            .attr(keys::DOMAIN, "medical")
            .attr("patient", "p-17") // not in NAME_FIELDS
            .build(Digest128::of(b"d"));
        let name = build(&rec);
        assert!(!name.contains("p-17"));
        let parsed = parse(&name).unwrap();
        assert!(!parsed.attributes.contains("patient"));
    }

    #[test]
    fn parse_rejects_wrong_arity() {
        assert_eq!(parse("too_few_parts"), None);
        assert_eq!(parse(""), None);
    }

    #[test]
    fn name_matches_is_exact_on_clean_values() {
        let rec = record("volcano", "vesuvius");
        let name = build(&rec);
        assert!(name_matches(&name, keys::REGION, &Value::Str("vesuvius".into())));
        assert!(!name_matches(&name, keys::REGION, &Value::Str("etna".into())));
    }

    #[test]
    fn name_matches_false_positive_on_mangled_values() {
        // Two distinct regions that mangle identically: a precision loss
        // the flat scheme cannot avoid.
        let a = record("traffic", "new_york");
        let b = record("traffic", "new-york");
        let (na, nb) = (build(&a), build(&b));
        assert!(name_matches(&na, keys::REGION, &Value::Str("new-york".into())));
        assert!(name_matches(&nb, keys::REGION, &Value::Str("new_york".into())));
    }
}
