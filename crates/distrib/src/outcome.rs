//! Operation outcomes and latency statistics.

use pass_model::TupleSetId;
use pass_net::SimTime;

/// One finished operation, as seen by the driver.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Operation id.
    pub op: u64,
    /// Success flag.
    pub ok: bool,
    /// Completion time.
    pub at: SimTime,
    /// Result ids (empty for publishes).
    pub ids: Vec<TupleSetId>,
}

/// Latency distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Mean, microseconds.
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Maximum, microseconds.
    pub max_us: u64,
}

impl LatencyStats {
    /// Computes stats from raw latencies (microseconds). Returns zeros
    /// for an empty sample.
    pub fn from_latencies(mut samples: Vec<u64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats { count: 0, mean_us: 0.0, p50_us: 0, p99_us: 0, max_us: 0 };
        }
        samples.sort_unstable();
        let count = samples.len();
        let mean_us = samples.iter().sum::<u64>() as f64 / count as f64;
        let pct = |p: f64| samples[(((count - 1) as f64) * p).round() as usize];
        LatencyStats {
            count,
            mean_us,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            max_us: *samples.last().expect("non-empty"),
        }
    }

    /// Median in milliseconds (convenience for tables).
    pub fn p50_ms(&self) -> f64 {
        self.p50_us as f64 / 1_000.0
    }

    /// p99 in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_us as f64 / 1_000.0
    }
}

/// Precision/recall against a ground-truth id set (§IV's query-result
/// quality criterion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultQuality {
    /// Fraction of returned results that are relevant.
    pub precision: f64,
    /// Fraction of relevant results that were returned.
    pub recall: f64,
}

impl ResultQuality {
    /// Compares a returned id set against the relevant set.
    pub fn compare(returned: &[TupleSetId], relevant: &[TupleSetId]) -> ResultQuality {
        use std::collections::HashSet;
        let returned_set: HashSet<_> = returned.iter().collect();
        let relevant_set: HashSet<_> = relevant.iter().collect();
        let hits = returned_set.intersection(&relevant_set).count();
        ResultQuality {
            precision: if returned_set.is_empty() {
                1.0
            } else {
                hits as f64 / returned_set.len() as f64
            },
            recall: if relevant_set.is_empty() {
                1.0
            } else {
                hits as f64 / relevant_set.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles() {
        let stats = LatencyStats::from_latencies((1..=100).collect());
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_us, 51, "nearest-rank median of 1..=100");
        assert_eq!(stats.p99_us, 99);
        assert_eq!(stats.max_us, 100);
        assert!((stats.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_latencies_are_zero() {
        let stats = LatencyStats::from_latencies(vec![]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.max_us, 0);
    }

    #[test]
    fn quality_cases() {
        let relevant = vec![TupleSetId(1), TupleSetId(2), TupleSetId(3)];
        let q = ResultQuality::compare(&[TupleSetId(1), TupleSetId(2)], &relevant);
        assert!((q.precision - 1.0).abs() < 1e-9);
        assert!((q.recall - 2.0 / 3.0).abs() < 1e-9);

        let q = ResultQuality::compare(&[TupleSetId(1), TupleSetId(9)], &relevant);
        assert!((q.precision - 0.5).abs() < 1e-9);

        let q = ResultQuality::compare(&[], &relevant);
        assert!((q.precision - 1.0).abs() < 1e-9, "empty answer is vacuously precise");
        assert!((q.recall - 0.0).abs() < 1e-9);

        let q = ResultQuality::compare(&[], &[]);
        assert!((q.recall - 1.0).abs() < 1e-9);
    }
}
