//! The common driver-facing interface of the §IV architecture models.

use crate::outcome::Outcome;
use pass_model::{ProvenanceRecord, TupleSetId};
use pass_net::{NetMetrics, SimTime};
use pass_query::Query;

/// One architectural model under simulation.
///
/// The driver publishes provenance records from origin sites, issues
/// queries from client sites, advances simulated time, and harvests
/// [`Outcome`]s. Architectures differ only in routing — which sites hold
/// index state and which sites a query touches.
pub trait Architecture {
    /// Model name for tables.
    fn name(&self) -> &'static str;

    /// Number of sites.
    fn sites(&self) -> usize;

    /// Publishes a record from its origin site. Returns the op id; an
    /// [`Outcome`] with that id appears once the index accepted it.
    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64;

    /// Publishes a whole batch of records from one origin site,
    /// mirroring the local group-commit ingest path across sites.
    ///
    /// The default degrades to N independent publishes; architectures
    /// with a real batched transfer (e.g. the centralized warehouse's
    /// single `StoreBatch` message) override it and return one op id for
    /// the whole batch.
    fn publish_batch(&mut self, origin_site: usize, records: &[ProvenanceRecord]) -> Vec<u64> {
        records.iter().map(|r| self.publish(origin_site, r)).collect()
    }

    /// Runs a query on behalf of a client local to `client_site`.
    fn query(&mut self, client_site: usize, query: &Query) -> u64;

    /// Opens a standing subscription at `client_site`: the architecture
    /// pushes a notification (an [`Outcome`] bearing the returned op id,
    /// once per matching commit) whenever a subsequently published
    /// record matches `query`'s filter. Returns `None` when the
    /// architecture has no push path — callers fall back to poll loops,
    /// which is exactly the trade E22 measures.
    fn subscribe(&mut self, _client_site: usize, _query: &Query) -> Option<u64> {
        None
    }

    /// Ancestors-of closure from `client_site`.
    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64;

    /// Advances simulated time by `duration`.
    fn run_for(&mut self, duration: SimTime);

    /// Runs until no events remain (bounded internally against runaways).
    fn run_quiet(&mut self);

    /// Drains outcomes produced since the last call.
    fn outcomes(&mut self) -> Vec<Outcome>;

    /// Network counters.
    fn net(&self) -> NetMetrics;

    /// Resets network counters (e.g. after warm-up).
    fn reset_net(&mut self);

    /// Current simulated time.
    fn now(&self) -> SimTime;
}
