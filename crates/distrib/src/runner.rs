//! The experiment runner: one workload, six architectures, comparable
//! numbers.
//!
//! Builds a deterministic corpus (traffic + weather records with lineage
//! chains per metro cluster), publishes it through an architecture,
//! replays a query/lineage mix, and reports latency distributions,
//! traffic split by class (§IV's resource-consumption criterion), and
//! precision/recall against a ground-truth index (§IV's result-quality
//! criterion).

use crate::arch::Architecture;
use crate::centralized::Centralized;
use crate::dhtarch::DhtIndex;
use crate::distdb::DistributedDb;
use crate::federated::Federated;
use crate::hierarchy::Hierarchical;
use crate::meta::MetaIndex;
use crate::outcome::{LatencyStats, ResultQuality};
use crate::softstate::SoftState;
use pass_model::{
    keys, Attributes, ProvenanceBuilder, ProvenanceRecord, SiteId, Timestamp, ToolDescriptor,
    TupleSet, TupleSetId,
};
use pass_net::{ClassCounters, SimTime, Topology, TrafficClass};
use pass_query::{parse, Query};
use pass_sensor::gen::rng_for;
use pass_sensor::traffic::{self, TrafficConfig};
use pass_sensor::weather::{self, WeatherConfig};
use rand::Rng;
use std::collections::HashMap;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Metro clusters (regions).
    pub clusters: usize,
    /// Sites per cluster.
    pub per_cluster: usize,
    /// Raw capture windows per site.
    pub windows_per_site: usize,
    /// Derivation chain length layered over each site's captures.
    pub lineage_depth: usize,
    /// Attribute queries to run.
    pub queries: usize,
    /// Ancestors chases to run.
    pub lineage_ops: usize,
    /// Spacing between injected operations.
    pub op_spacing: SimTime,
    /// Publish group size: consecutive same-site records are shipped
    /// through [`Architecture::publish_batch`] in chunks of this many
    /// (1 = the historical per-record path).
    pub publish_batch: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            clusters: 4,
            per_cluster: 2,
            windows_per_site: 4,
            lineage_depth: 3,
            queries: 24,
            lineage_ops: 8,
            op_spacing: SimTime::from_millis(20),
            publish_batch: 1,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// Total sites.
    pub fn sites(&self) -> usize {
        self.clusters * self.per_cluster
    }

    /// The standard topology for this spec: metro clusters 2 ms wide,
    /// 40 ms apart.
    pub fn topology(&self) -> Topology {
        Topology::clustered(self.clusters, self.per_cluster, 2.0, 40.0)
    }
}

/// A deterministic corpus plus ground truth.
pub struct Corpus {
    /// `(origin site, record)` in publish order.
    pub records: Vec<(usize, ProvenanceRecord)>,
    /// Ground-truth index over every record.
    pub truth: MetaIndex,
    /// Region labels, one per cluster.
    pub regions: Vec<String>,
    /// Ids of lineage-chain leaves (chase roots).
    pub leaves: Vec<TupleSetId>,
}

/// Builds the corpus for a spec.
pub fn build_corpus(spec: &WorkloadSpec) -> Corpus {
    let mut records: Vec<(usize, ProvenanceRecord)> = Vec::new();
    let mut truth = MetaIndex::new();
    let mut regions = Vec::with_capacity(spec.clusters);
    let mut leaves = Vec::new();

    for cluster in 0..spec.clusters {
        let region = format!("metro-{cluster}");
        regions.push(region.clone());
        for member in 0..spec.per_cluster {
            let site = cluster * spec.per_cluster + member;
            // Raw captures: traffic on even members, weather on odd.
            let specs = if member % 2 == 0 {
                traffic::generate(
                    &TrafficConfig {
                        region: region.clone(),
                        sensors: 2,
                        sensor_base: (site as u64) * 100,
                        seed: spec.seed + site as u64,
                        ..TrafficConfig::default()
                    },
                    Timestamp::ZERO,
                    spec.windows_per_site,
                )
            } else {
                weather::generate(
                    &WeatherConfig {
                        region: region.clone(),
                        stations: 2,
                        sensor_base: 10_000 + (site as u64) * 100,
                        seed: spec.seed + site as u64,
                        ..WeatherConfig::default()
                    },
                    Timestamp::ZERO,
                    spec.windows_per_site,
                )
            };
            let mut site_ids = Vec::new();
            for capture in &specs {
                let record = ProvenanceBuilder::new(SiteId(site as u32), capture.at)
                    .attrs(&capture.attrs)
                    .build(TupleSet::content_digest_of(&capture.readings));
                truth.insert(&record);
                site_ids.push(record.id);
                records.push((site, record));
            }
            // A derivation chain over this site's captures.
            let mut parents = site_ids.clone();
            for level in 1..=spec.lineage_depth {
                let tool = ToolDescriptor::new("aggregate", format!("{level}.0"));
                let attrs = Attributes::new()
                    .with(keys::DOMAIN, "analysis")
                    .with(keys::REGION, region.clone())
                    .with(keys::TYPE, format!("rollup-{level}"));
                let mut builder = ProvenanceBuilder::new(
                    SiteId(site as u32),
                    Timestamp::from_secs(1_000 + level as u64),
                )
                .attrs(&attrs);
                for &p in &parents {
                    builder = builder.derived_from(p, tool.clone());
                }
                let record = builder
                    .build(pass_model::Digest128::of(format!("rollup-{site}-{level}").as_bytes()));
                truth.insert(&record);
                records.push((site, record.clone()));
                if level == spec.lineage_depth {
                    leaves.push(record.id);
                }
                parents = vec![record.id];
            }
        }
    }
    Corpus { records, truth, regions, leaves }
}

/// Query mix used for architecture comparison. Every query is expressible
/// on all six architectures (equality on DHT-indexed attributes).
pub fn comparison_queries(corpus: &Corpus, spec: &WorkloadSpec) -> Vec<Query> {
    let mut rng = rng_for(spec.seed, "runner-queries");
    let mut out = Vec::with_capacity(spec.queries);
    for i in 0..spec.queries {
        let region = &corpus.regions[rng.gen_range(0..corpus.regions.len())];
        let text = match i % 3 {
            0 => format!(r#"FIND WHERE region = "{region}""#),
            1 => format!(r#"FIND WHERE domain = "traffic" AND region = "{region}""#),
            _ => r#"FIND WHERE domain = "weather""#.to_owned(),
        };
        out.push(parse(&text).expect("runner queries are well-formed"));
    }
    out
}

/// Per-architecture workload results.
#[derive(Debug, Clone)]
pub struct ArchReport {
    /// Architecture name.
    pub name: &'static str,
    /// Sites simulated.
    pub sites: usize,
    /// Publish (index-update) latency.
    pub publish: LatencyStats,
    /// Attribute-query latency.
    pub query: LatencyStats,
    /// Ancestors-chase latency.
    pub lineage: LatencyStats,
    /// Update traffic on the wire.
    pub update_traffic: ClassCounters,
    /// Query traffic on the wire.
    pub query_traffic: ClassCounters,
    /// Maintenance traffic on the wire.
    pub maintenance_traffic: ClassCounters,
    /// Mean result quality across queries.
    pub quality: ResultQuality,
    /// Mean lineage recall (closure completeness).
    pub lineage_recall: f64,
    /// Operations that failed outright.
    pub failures: usize,
}

fn latencies(outcomes: &[crate::outcome::Outcome], issued: &HashMap<u64, SimTime>) -> Vec<u64> {
    outcomes
        .iter()
        .filter(|o| o.ok)
        .filter_map(|o| issued.get(&o.op).map(|t| o.at.micros_since(*t)))
        .collect()
}

/// Runs the full workload against one architecture.
pub fn run_workload(
    arch: &mut dyn Architecture,
    corpus: &Corpus,
    spec: &WorkloadSpec,
) -> ArchReport {
    let mut rng = rng_for(spec.seed, "runner-driver");
    let mut failures = 0usize;

    // --- Publish phase -------------------------------------------------
    // Consecutive records from one site form a publish group (mirroring
    // the local group-commit ingest path); `publish_batch = 1` reproduces
    // the historical per-record schedule exactly.
    let mut issued: HashMap<u64, SimTime> = HashMap::new();
    let group = spec.publish_batch.max(1);
    let mut pending: Vec<ProvenanceRecord> = Vec::with_capacity(group);
    let mut pending_site = usize::MAX;
    let mut flush =
        |arch: &mut dyn Architecture, site: usize, batch: &mut Vec<ProvenanceRecord>| {
            if batch.is_empty() {
                return;
            }
            for op in arch.publish_batch(site, batch) {
                issued.insert(op, arch.now());
            }
            batch.clear();
            arch.run_for(spec.op_spacing);
        };
    for (site, record) in &corpus.records {
        if *site != pending_site {
            flush(arch, pending_site, &mut pending);
            pending_site = *site;
        }
        pending.push(record.clone());
        if pending.len() >= group {
            flush(arch, pending_site, &mut pending);
        }
    }
    flush(arch, pending_site, &mut pending);
    arch.run_quiet();
    let publish_outcomes = arch.outcomes();
    failures += publish_outcomes.iter().filter(|o| !o.ok).count();
    let publish = LatencyStats::from_latencies(latencies(&publish_outcomes, &issued));

    // --- Query phase ----------------------------------------------------
    let queries = comparison_queries(corpus, spec);
    let mut issued_q: HashMap<u64, SimTime> = HashMap::new();
    let mut truth_of: HashMap<u64, Vec<TupleSetId>> = HashMap::new();
    for query in &queries {
        let site = rng.gen_range(0..arch.sites());
        let op = arch.query(site, query);
        issued_q.insert(op, arch.now());
        truth_of.insert(op, corpus.truth.query(query).map(|r| r.ids()).unwrap_or_default());
        arch.run_for(spec.op_spacing);
    }
    arch.run_quiet();
    let query_outcomes = arch.outcomes();
    failures += query_outcomes.iter().filter(|o| !o.ok).count();
    let query = LatencyStats::from_latencies(latencies(&query_outcomes, &issued_q));
    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    let mut graded = 0usize;
    for o in &query_outcomes {
        if let Some(relevant) = truth_of.get(&o.op) {
            let q = ResultQuality::compare(&o.ids, relevant);
            precision_sum += q.precision;
            recall_sum += q.recall;
            graded += 1;
        }
    }
    let quality = ResultQuality {
        precision: if graded > 0 { precision_sum / graded as f64 } else { 0.0 },
        recall: if graded > 0 { recall_sum / graded as f64 } else { 0.0 },
    };

    // --- Lineage phase ---------------------------------------------------
    let mut issued_l: HashMap<u64, SimTime> = HashMap::new();
    let mut truth_l: HashMap<u64, Vec<TupleSetId>> = HashMap::new();
    for i in 0..spec.lineage_ops.min(corpus.leaves.len()) {
        let root = corpus.leaves[i % corpus.leaves.len()];
        let site = rng.gen_range(0..arch.sites());
        let op = arch.lineage(site, root, None);
        issued_l.insert(op, arch.now());
        let truth_query = Query::lineage(root, pass_index::Direction::Ancestors);
        truth_l.insert(op, corpus.truth.query(&truth_query).map(|r| r.ids()).unwrap_or_default());
        arch.run_for(spec.op_spacing);
    }
    arch.run_quiet();
    let lineage_outcomes = arch.outcomes();
    failures += lineage_outcomes.iter().filter(|o| !o.ok).count();
    let lineage = LatencyStats::from_latencies(latencies(&lineage_outcomes, &issued_l));
    let mut lineage_recall_sum = 0.0;
    let mut lineage_graded = 0usize;
    for o in &lineage_outcomes {
        if let Some(relevant) = truth_l.get(&o.op) {
            lineage_recall_sum += ResultQuality::compare(&o.ids, relevant).recall;
            lineage_graded += 1;
        }
    }
    let lineage_recall =
        if lineage_graded > 0 { lineage_recall_sum / lineage_graded as f64 } else { 0.0 };

    let net = arch.net();
    ArchReport {
        name: arch.name(),
        sites: arch.sites(),
        publish,
        query,
        lineage,
        update_traffic: net.class(TrafficClass::Update),
        query_traffic: net.class(TrafficClass::Query),
        maintenance_traffic: net.class(TrafficClass::Maintenance),
        quality,
        lineage_recall,
        failures,
    }
}

/// Which architecture to instantiate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArchKind {
    /// §IV-A warehouse.
    Centralized,
    /// §IV-B distributed database (with E14 batching knob).
    DistributedDb {
        /// Batch frontier expansion by home shard.
        batch: bool,
    },
    /// §IV-B federation.
    Federated,
    /// §IV-B soft-state catalogs.
    SoftState {
        /// Digest refresh period.
        refresh: SimTime,
    },
    /// §IV-B hierarchical namespace.
    Hierarchical,
    /// §IV-C DHT.
    Dht {
        /// Replicas per key.
        replicas: usize,
    },
}

impl ArchKind {
    /// All six models with sensible defaults.
    pub fn all_default() -> Vec<ArchKind> {
        vec![
            ArchKind::Centralized,
            ArchKind::DistributedDb { batch: true },
            ArchKind::Federated,
            ArchKind::SoftState { refresh: SimTime::from_secs(5) },
            ArchKind::Hierarchical,
            ArchKind::Dht { replicas: 2 },
        ]
    }
}

/// Instantiates an architecture over a topology.
pub fn build_arch(kind: ArchKind, topology: Topology, seed: u64) -> Box<dyn Architecture> {
    match kind {
        ArchKind::Centralized => Box::new(Centralized::new(topology, seed)),
        ArchKind::DistributedDb { batch } => Box::new(DistributedDb::new(topology, batch, seed)),
        ArchKind::Federated => Box::new(Federated::new(topology, seed)),
        ArchKind::SoftState { refresh } => Box::new(SoftState::new(topology, refresh, seed)),
        ArchKind::Hierarchical => Box::new(Hierarchical::new(topology, seed)),
        ArchKind::Dht { replicas } => Box::new(DhtIndex::new(topology, replicas, seed)),
    }
}

/// Renders reports as an aligned text table (the experiments binary and
/// EXPERIMENTS.md use this).
pub fn render_table(reports: &[ArchReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>6} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8} {:>6}\n",
        "architecture",
        "sites",
        "publish p50",
        "query p50",
        "lineage p50",
        "upd KiB",
        "qry KiB",
        "prec",
        "recall",
        "fail"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<16} {:>6} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.1} {:>10.1} {:>8.3} {:>8.3} {:>6}\n",
            r.name,
            r.sites,
            r.publish.p50_ms(),
            r.query.p50_ms(),
            r.lineage.p50_ms(),
            r.update_traffic.bytes as f64 / 1024.0,
            r.query_traffic.bytes as f64 / 1024.0,
            r.quality.precision,
            r.quality.recall,
            r.failures
        ));
    }
    out
}
