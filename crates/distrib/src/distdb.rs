//! §IV-B model 1: the distributed database.
//!
//! Records are hash-partitioned across all sites; writes replicate
//! synchronously to the next site (the "full transaction semantics" the
//! paper calls possible overkill). Attribute queries scatter to every
//! shard and gather at the coordinator. Recursive queries run as a
//! coordinator-driven frontier chase whose per-round fan-out is the
//! E14 batching ablation: `batch = true` groups frontier ids by home
//! shard (one message per shard per round); `batch = false` sends one
//! message per id — the paper's "limited ability to process recursive
//! queries" made visible.

use crate::arch::Architecture;
use crate::harness::{ArchSim, Chase, Gather};
use crate::meta::MetaIndex;
use crate::msg::{self, ArchMsg};
use crate::outcome::Outcome;
use pass_model::{ProvenanceRecord, TupleSetId};
use pass_net::{Ctx, Input, NetMetrics, Node, NodeId, SimTime, Topology, TrafficClass};
use pass_query::Query;
use std::collections::HashMap;

/// Home shard of a tuple set: low bits of its (already uniform) identity.
pub fn home_of(id: TupleSetId, sites: usize) -> NodeId {
    (id.0 as u64 % sites as u64) as NodeId
}

struct ShardSite {
    me: NodeId,
    sites: usize,
    batch: bool,
    index: MetaIndex,
    gathers: HashMap<u64, Gather>,
    chases: HashMap<u64, Chase>,
}

impl ShardSite {
    fn expand_round(&mut self, ctx: &mut Ctx<'_, ArchMsg>, op: u64, frontier: Vec<TupleSetId>) {
        let chase = self.chases.get_mut(&op).expect("chase exists");
        if self.batch {
            let mut by_home: HashMap<NodeId, Vec<TupleSetId>> = HashMap::new();
            for id in frontier {
                by_home.entry(home_of(id, self.sites)).or_default().push(id);
            }
            chase.outstanding = by_home.len();
            for (home, ids) in by_home {
                let bytes = msg::ids_bytes(&ids);
                ctx.send(
                    home,
                    ArchMsg::LineageExpand { op, ids, reply_to: self.me },
                    bytes,
                    TrafficClass::Query,
                );
            }
        } else {
            chase.outstanding = frontier.len();
            for id in frontier {
                let home = home_of(id, self.sites);
                ctx.send(
                    home,
                    ArchMsg::LineageExpand { op, ids: vec![id], reply_to: self.me },
                    msg::ids_bytes(&[id]),
                    TrafficClass::Query,
                );
            }
        }
    }

    fn chase_step(
        &mut self,
        ctx: &mut Ctx<'_, ArchMsg>,
        op: u64,
        pairs: Vec<(TupleSetId, Vec<TupleSetId>)>,
    ) {
        let Some(chase) = self.chases.get_mut(&op) else {
            return;
        };
        if !chase.absorb(pairs) {
            return;
        }
        match chase.advance() {
            Some(frontier) => self.expand_round(ctx, op, frontier),
            None => {
                let chase = self.chases.remove(&op).expect("chase exists");
                let ids = chase.finish();
                ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
            }
        }
    }
}

impl Node<ArchMsg> for ShardSite {
    fn on_input(&mut self, ctx: &mut Ctx<'_, ArchMsg>, input: Input<ArchMsg>) {
        let Input::Message { from: _, msg } = input else {
            return;
        };
        match msg {
            ArchMsg::ClientPublish { op, record } => {
                let home = home_of(record.id, self.sites);
                let bytes = msg::record_bytes(&record);
                if home == self.me {
                    self.index.insert(&record);
                    // Synchronous replica to the next shard; it acks us.
                    let replica = (self.me + 1) % self.sites;
                    ctx.send(
                        replica,
                        ArchMsg::StoreRecord { op, record, ack_to: self.me },
                        bytes,
                        TrafficClass::Update,
                    );
                } else {
                    ctx.send(
                        home,
                        ArchMsg::StoreRecord { op, record, ack_to: self.me },
                        bytes,
                        TrafficClass::Update,
                    );
                }
            }
            ArchMsg::StoreRecord { op, record, ack_to } => {
                self.index.insert(&record);
                if home_of(record.id, self.sites) == self.me {
                    // We are the home: forward to the replica, which acks
                    // the original client (chain replication of length 2).
                    let replica = (self.me + 1) % self.sites;
                    let bytes = msg::record_bytes(&record);
                    ctx.send(
                        replica,
                        ArchMsg::StoreRecord { op, record, ack_to },
                        bytes,
                        TrafficClass::Update,
                    );
                } else {
                    ctx.send(ack_to, ArchMsg::StoreAck { op }, 24, TrafficClass::Update);
                }
            }
            ArchMsg::StoreAck { op } => {
                ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
            }
            ArchMsg::ClientQuery { op, query } => {
                self.gathers.insert(op, Gather { expected: self.sites, acc: Vec::new() });
                let bytes = msg::query_bytes(&query);
                for s in 0..self.sites {
                    ctx.send(
                        s,
                        ArchMsg::SubQuery { op, query: query.clone(), reply_to: self.me },
                        bytes,
                        TrafficClass::Query,
                    );
                }
            }
            ArchMsg::SubQuery { op, query, reply_to } => {
                let ids = self.index.query(&query).map(|r| r.ids()).unwrap_or_default();
                let bytes = msg::ids_bytes(&ids);
                ctx.send(reply_to, ArchMsg::SubResult { op, ids }, bytes, TrafficClass::Query);
            }
            ArchMsg::SubResult { op, ids } => {
                if let Some(gather) = self.gathers.get_mut(&op) {
                    if gather.absorb(ids) {
                        let gather = self.gathers.remove(&op).expect("gather exists");
                        let ids = gather.finish();
                        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                    }
                }
            }
            ArchMsg::ClientLineage { op, root, depth } => {
                self.chases.insert(op, Chase::new(root, depth));
                self.expand_round(ctx, op, vec![root]);
            }
            ArchMsg::LineageExpand { op, ids, reply_to } => {
                let pairs: Vec<(TupleSetId, Vec<TupleSetId>)> = ids
                    .into_iter()
                    .filter_map(|id| self.index.parents_of(id).map(|p| (id, p)))
                    .collect();
                let bytes = 16 + pairs.iter().map(|(_, p)| 16 + 16 * p.len() as u64).sum::<u64>();
                ctx.send(
                    reply_to,
                    ArchMsg::LineageParents { op, pairs },
                    bytes,
                    TrafficClass::Query,
                );
            }
            ArchMsg::LineageParents { op, pairs } => {
                self.chase_step(ctx, op, pairs);
            }
            _ => {}
        }
    }
}

/// The hash-partitioned, synchronously-replicated distributed database.
pub struct DistributedDb {
    inner: ArchSim,
    sites: usize,
}

impl DistributedDb {
    /// Builds over `topology`. `batch` controls E14 frontier batching.
    pub fn new(topology: Topology, batch: bool, seed: u64) -> Self {
        let sites = topology.len();
        let nodes: Vec<Box<dyn Node<ArchMsg>>> = (0..sites)
            .map(|i| {
                Box::new(ShardSite {
                    me: i,
                    sites,
                    batch,
                    index: MetaIndex::new(),
                    gathers: HashMap::new(),
                    chases: HashMap::new(),
                }) as Box<dyn Node<ArchMsg>>
            })
            .collect();
        DistributedDb { inner: ArchSim::new(topology, nodes, seed), sites }
    }
}

impl Architecture for DistributedDb {
    fn name(&self) -> &'static str {
        "distributed-db"
    }
    fn sites(&self) -> usize {
        self.sites
    }
    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64 {
        let record = record.clone();
        self.inner.issue(origin_site, |op| ArchMsg::ClientPublish { op, record })
    }
    fn query(&mut self, client_site: usize, query: &Query) -> u64 {
        let query = query.clone();
        self.inner.issue(client_site, |op| ArchMsg::ClientQuery { op, query })
    }
    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64 {
        self.inner.issue(client_site, |op| ArchMsg::ClientLineage { op, root, depth })
    }
    fn run_for(&mut self, duration: SimTime) {
        self.inner.run_for(duration);
    }
    fn run_quiet(&mut self) {
        self.inner.run_quiet();
    }
    fn outcomes(&mut self) -> Vec<Outcome> {
        self.inner.outcomes()
    }
    fn net(&self) -> NetMetrics {
        self.inner.net()
    }
    fn reset_net(&mut self) {
        self.inner.reset_net();
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}
