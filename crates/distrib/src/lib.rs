//! # pass-distrib — the §IV design space, executable
//!
//! The paper walks six architectures for distributed provenance indexing
//! and argues qualitatively about their scalability, reliability, result
//! quality, speed, and resource consumption. This crate implements all
//! six over the `pass-net` simulator so the argument can be measured:
//!
//! | Model | Module | Paper section |
//! |---|---|---|
//! | Central warehouse | [`centralized`] | §IV-A |
//! | Distributed database | [`distdb`] | §IV-B |
//! | Federated database | [`federated`] | §IV-B |
//! | Soft-state catalogs (RLS/SRB) | [`softstate`] | §IV-B |
//! | Hierarchical namespace | [`hierarchy`] | §IV-B |
//! | DHT index (Chord/PIER) | [`dhtarch`] | §IV-C |
//!
//! All six implement the [`Architecture`] trait; [`runner`] drives the
//! same deterministic workload through each and reports latency, traffic
//! split, and precision/recall. [`meta::MetaIndex`] is the per-site
//! provenance index (records only — §IV-A's warehouse "would not store
//! actual sensor data").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arch;
pub mod centralized;
pub mod dhtarch;
pub mod distdb;
pub mod federated;
mod harness;
pub mod hierarchy;
pub mod meta;
pub mod msg;
pub mod outcome;
pub mod replicated;
pub mod runner;
pub mod softstate;
pub mod wire;

pub use arch::Architecture;
pub use centralized::Centralized;
pub use dhtarch::DhtIndex;
pub use distdb::DistributedDb;
pub use federated::Federated;
pub use hierarchy::Hierarchical;
pub use meta::MetaIndex;
pub use msg::ArchMsg;
pub use outcome::{LatencyStats, Outcome, ResultQuality};
pub use replicated::{Replicated, ReplicationStrategy};
pub use runner::{build_arch, build_corpus, run_workload, ArchKind, ArchReport, WorkloadSpec};
pub use softstate::SoftState;
pub use wire::{StatsBody, WireMsg, PROTO_VERSION};
