//! §IV-B model 4: the hierarchical namespace.
//!
//! "Organize the material into a hierarchical namespace and then use the
//! hierarchy to partition the data across a distributed network of
//! servers … hierarchical naming systems are fundamentally limited by
//! the need to choose a significance ordering for the attributes."
//!
//! The namespace here is `/domain/region/…`: the owner of a record is a
//! hash of its `(domain, region)` path prefix. Queries that constrain
//! both path components route to exactly one server; queries on any
//! *other* attribute — sensor type, time, patient — must broadcast to
//! every server, which is precisely the E13 significance-ordering
//! penalty.

use crate::arch::Architecture;
use crate::harness::{ArchSim, Chase, Gather};
use crate::meta::MetaIndex;
use crate::msg::{self, ArchMsg};
use crate::outcome::Outcome;
use pass_model::{keys, ProvenanceRecord, TupleSetId};
use pass_net::{Ctx, Input, NetMetrics, Node, NodeId, SimTime, Topology, TrafficClass};
use pass_query::{Predicate, Query};
use std::collections::HashMap;

/// Owner of a namespace path prefix.
pub fn owner_of(domain: &str, region: &str, sites: usize) -> NodeId {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in domain.bytes().chain([b'/']).chain(region.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    (h % sites as u64) as NodeId
}

/// Extracts top-level `domain = …` / `region = …` equality constraints.
pub fn path_constraints(p: &Predicate) -> (Option<&str>, Option<&str>) {
    fn walk<'a>(p: &'a Predicate, domain: &mut Option<&'a str>, region: &mut Option<&'a str>) {
        match p {
            Predicate::Eq(attr, value) => {
                if let Some(s) = value.as_str() {
                    if attr == keys::DOMAIN {
                        *domain = Some(s);
                    } else if attr == keys::REGION {
                        *region = Some(s);
                    }
                }
            }
            Predicate::And(ps) => {
                for sub in ps {
                    walk(sub, domain, region);
                }
            }
            _ => {}
        }
    }
    let (mut domain, mut region) = (None, None);
    walk(p, &mut domain, &mut region);
    (domain, region)
}

struct HierSite {
    me: NodeId,
    sites: usize,
    index: MetaIndex,
    gathers: HashMap<u64, Gather>,
    chases: HashMap<u64, Chase>,
}

impl HierSite {
    fn expand_round(&mut self, ctx: &mut Ctx<'_, ArchMsg>, op: u64, frontier: Vec<TupleSetId>) {
        // Ids do not encode namespace paths, so lineage expansion cannot
        // be routed: broadcast each round (shared weakness with the
        // federation).
        let chase = self.chases.get_mut(&op).expect("chase exists");
        chase.outstanding = self.sites;
        let bytes = msg::ids_bytes(&frontier);
        for s in 0..self.sites {
            ctx.send(
                s,
                ArchMsg::LineageExpand { op, ids: frontier.clone(), reply_to: self.me },
                bytes,
                TrafficClass::Query,
            );
        }
    }
}

impl Node<ArchMsg> for HierSite {
    fn on_input(&mut self, ctx: &mut Ctx<'_, ArchMsg>, input: Input<ArchMsg>) {
        let Input::Message { from: _, msg } = input else {
            return;
        };
        match msg {
            ArchMsg::ClientPublish { op, record } => {
                let domain = record.attributes.get_str(keys::DOMAIN).unwrap_or("");
                let region = record.attributes.get_str(keys::REGION).unwrap_or("");
                let owner = owner_of(domain, region, self.sites);
                if owner == self.me {
                    self.index.insert(&record);
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
                } else {
                    let bytes = msg::record_bytes(&record);
                    ctx.send(
                        owner,
                        ArchMsg::StoreRecord { op, record, ack_to: self.me },
                        bytes,
                        TrafficClass::Update,
                    );
                }
            }
            ArchMsg::StoreRecord { op, record, ack_to } => {
                self.index.insert(&record);
                ctx.send(ack_to, ArchMsg::StoreAck { op }, 24, TrafficClass::Update);
            }
            ArchMsg::StoreAck { op } => {
                ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
            }
            ArchMsg::ClientQuery { op, query } => {
                let targets: Vec<NodeId> = match path_constraints(&query.filter) {
                    (Some(domain), Some(region)) => {
                        vec![owner_of(domain, region, self.sites)]
                    }
                    // Any missing path component ⇒ broadcast: the
                    // significance-ordering penalty.
                    _ => (0..self.sites).collect(),
                };
                self.gathers.insert(op, Gather { expected: targets.len(), acc: Vec::new() });
                let bytes = msg::query_bytes(&query);
                for s in targets {
                    ctx.send(
                        s,
                        ArchMsg::SubQuery { op, query: query.clone(), reply_to: self.me },
                        bytes,
                        TrafficClass::Query,
                    );
                }
            }
            ArchMsg::SubQuery { op, query, reply_to } => {
                let ids = self.index.query(&query).map(|r| r.ids()).unwrap_or_default();
                let bytes = msg::ids_bytes(&ids);
                ctx.send(reply_to, ArchMsg::SubResult { op, ids }, bytes, TrafficClass::Query);
            }
            ArchMsg::SubResult { op, ids } => {
                if let Some(gather) = self.gathers.get_mut(&op) {
                    if gather.absorb(ids) {
                        let gather = self.gathers.remove(&op).expect("gather exists");
                        let ids = gather.finish();
                        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                    }
                }
            }
            ArchMsg::ClientLineage { op, root, depth } => {
                self.chases.insert(op, Chase::new(root, depth));
                self.expand_round(ctx, op, vec![root]);
            }
            ArchMsg::LineageExpand { op, ids, reply_to } => {
                let pairs: Vec<(TupleSetId, Vec<TupleSetId>)> = ids
                    .into_iter()
                    .filter_map(|id| self.index.parents_of(id).map(|p| (id, p)))
                    .collect();
                let bytes = 16 + pairs.iter().map(|(_, p)| 16 + 16 * p.len() as u64).sum::<u64>();
                ctx.send(
                    reply_to,
                    ArchMsg::LineageParents { op, pairs },
                    bytes,
                    TrafficClass::Query,
                );
            }
            ArchMsg::LineageParents { op, pairs } => {
                let Some(chase) = self.chases.get_mut(&op) else {
                    return;
                };
                if !chase.absorb(pairs) {
                    return;
                }
                match chase.advance() {
                    Some(frontier) => self.expand_round(ctx, op, frontier),
                    None => {
                        let chase = self.chases.remove(&op).expect("chase exists");
                        let ids = chase.finish();
                        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                    }
                }
            }
            _ => {}
        }
    }
}

/// The hierarchical-namespace architecture.
pub struct Hierarchical {
    inner: ArchSim,
    sites: usize,
}

impl Hierarchical {
    /// Builds over `topology`.
    pub fn new(topology: Topology, seed: u64) -> Self {
        let sites = topology.len();
        let nodes: Vec<Box<dyn Node<ArchMsg>>> = (0..sites)
            .map(|i| {
                Box::new(HierSite {
                    me: i,
                    sites,
                    index: MetaIndex::new(),
                    gathers: HashMap::new(),
                    chases: HashMap::new(),
                }) as Box<dyn Node<ArchMsg>>
            })
            .collect();
        Hierarchical { inner: ArchSim::new(topology, nodes, seed), sites }
    }
}

impl Architecture for Hierarchical {
    fn name(&self) -> &'static str {
        "hierarchical"
    }
    fn sites(&self) -> usize {
        self.sites
    }
    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64 {
        let record = record.clone();
        self.inner.issue(origin_site, |op| ArchMsg::ClientPublish { op, record })
    }
    fn query(&mut self, client_site: usize, query: &Query) -> u64 {
        let query = query.clone();
        self.inner.issue(client_site, |op| ArchMsg::ClientQuery { op, query })
    }
    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64 {
        self.inner.issue(client_site, |op| ArchMsg::ClientLineage { op, root, depth })
    }
    fn run_for(&mut self, duration: SimTime) {
        self.inner.run_for(duration);
    }
    fn run_quiet(&mut self) {
        self.inner.run_quiet();
    }
    fn outcomes(&mut self) -> Vec<Outcome> {
        self.inner.outcomes()
    }
    fn net(&self) -> NetMetrics {
        self.inner.net()
    }
    fn reset_net(&mut self) {
        self.inner.reset_net();
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_query::parse_predicate;

    #[test]
    fn owner_is_stable_and_in_range() {
        for sites in [1usize, 4, 16] {
            for (d, r) in [("traffic", "london"), ("weather", "boston"), ("", "")] {
                let a = owner_of(d, r, sites);
                let b = owner_of(d, r, sites);
                assert_eq!(a, b);
                assert!(a < sites);
            }
        }
        // Path components are not interchangeable.
        assert_ne!(owner_of("traffic", "london", 1_000), owner_of("london", "traffic", 1_000));
    }

    #[test]
    fn path_constraints_extracts_top_level_eqs() {
        let p = parse_predicate(r#"domain = "traffic" AND region = "london" AND x = 1"#).unwrap();
        assert_eq!(path_constraints(&p), (Some("traffic"), Some("london")));

        let p = parse_predicate(r#"domain = "traffic""#).unwrap();
        assert_eq!(path_constraints(&p), (Some("traffic"), None));

        // Disjunctions do not pin a path (routing to one owner would be
        // wrong), nor do non-equality predicates.
        let p = parse_predicate(r#"domain = "a" OR domain = "b""#).unwrap();
        assert_eq!(path_constraints(&p), (None, None));
        let p = parse_predicate(r#"region != "london""#).unwrap();
        assert_eq!(path_constraints(&p), (None, None));
    }

    #[test]
    fn non_string_path_values_do_not_route() {
        let p = parse_predicate("domain = 5").unwrap();
        assert_eq!(path_constraints(&p), (None, None));
    }
}
