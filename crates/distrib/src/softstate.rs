//! §IV-B model 3: soft-state catalogs (RLS/SRB-style).
//!
//! "Choosing availability over consistency … relies on soft-state and a
//! mostly stable network … it relies on periodic updates to keep its
//! soft-state from becoming stale."
//!
//! Every cluster designates its first member as a catalog. Sites buffer
//! freshly published records and push a digest to *all* catalogs every
//! refresh period (the replicated-index construction of the Replica
//! Location Service). Queries go to the client's local catalog — one
//! cheap intra-cluster hop — and are answered from soft state, which
//! trails reality by up to one refresh period. E9 measures exactly that
//! staleness-vs-recall trade.

use crate::arch::Architecture;
use crate::harness::ArchSim;
use crate::meta::MetaIndex;
use crate::msg::{self, ArchMsg};
use crate::outcome::Outcome;
use pass_index::Direction;
use pass_model::{ProvenanceRecord, TupleSetId};
use pass_net::{Ctx, Input, NetMetrics, Node, NodeId, SimTime, Topology, TrafficClass};
use pass_query::Query;

const TIMER_REFRESH: u64 = 1;

struct SoftSite {
    me: NodeId,
    my_catalog: NodeId,
    catalogs: Vec<NodeId>,
    is_catalog: bool,
    refresh_us: u64,
    /// Own records (always fresh).
    local: MetaIndex,
    /// Global soft state (catalogs only).
    soft: MetaIndex,
    /// Records published since the last digest.
    buffer: Vec<ProvenanceRecord>,
}

impl Node<ArchMsg> for SoftSite {
    fn on_input(&mut self, ctx: &mut Ctx<'_, ArchMsg>, input: Input<ArchMsg>) {
        match input {
            Input::Start => {
                // Stagger refresh phases so catalogs don't see synchronized
                // bursts.
                let phase = (self.me as u64 * 7_919) % self.refresh_us;
                ctx.set_timer(self.refresh_us + phase, TIMER_REFRESH);
            }
            Input::Timer { tag: TIMER_REFRESH } => {
                if !self.buffer.is_empty() {
                    let records = std::mem::take(&mut self.buffer);
                    let bytes: u64 = 32 + records.iter().map(msg::record_bytes).sum::<u64>();
                    for &catalog in &self.catalogs {
                        if catalog == self.me {
                            for r in &records {
                                self.soft.insert(r);
                            }
                        } else {
                            ctx.send(
                                catalog,
                                ArchMsg::Digest { from: self.me, records: records.clone() },
                                bytes,
                                TrafficClass::Update,
                            );
                        }
                    }
                }
                ctx.set_timer(self.refresh_us, TIMER_REFRESH);
            }
            Input::Timer { .. } => {}
            Input::Message { from: _, msg } => match msg {
                ArchMsg::ClientPublish { op, record } => {
                    // Availability over consistency: acknowledge as soon as
                    // the local store has it; the index catches up later.
                    self.local.insert(&record);
                    self.buffer.push(record);
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
                }
                ArchMsg::Digest { from: _, records } if self.is_catalog => {
                    for r in &records {
                        self.soft.insert(r);
                    }
                }
                ArchMsg::ClientQuery { op, query } => {
                    let bytes = msg::query_bytes(&query);
                    ctx.send(
                        self.my_catalog,
                        ArchMsg::SubQuery { op, query, reply_to: self.me },
                        bytes,
                        TrafficClass::Query,
                    );
                }
                ArchMsg::ClientLineage { op, root, depth } => {
                    let mut query = Query::lineage(root, Direction::Ancestors);
                    if let Some(d) = depth {
                        query = query.with_depth(d);
                    }
                    let bytes = msg::query_bytes(&query);
                    ctx.send(
                        self.my_catalog,
                        ArchMsg::SubQuery { op, query, reply_to: self.me },
                        bytes,
                        TrafficClass::Query,
                    );
                }
                ArchMsg::SubQuery { op, query, reply_to } => {
                    // Catalogs answer from soft state; staleness shows up
                    // as missing ids (recall loss), never as an error —
                    // except lineage from a root the catalog hasn't heard
                    // of yet, which fails like an unknown name.
                    let (ok, ids) = match self.soft.query(&query) {
                        Ok(result) => (true, result.ids()),
                        Err(_) => (false, Vec::new()),
                    };
                    let bytes = msg::ids_bytes(&ids);
                    ctx.send(
                        reply_to,
                        if ok {
                            ArchMsg::SubResult { op, ids }
                        } else {
                            ArchMsg::Done { op, ok: false, ids: vec![] }
                        },
                        bytes,
                        TrafficClass::Query,
                    );
                }
                ArchMsg::SubResult { op, ids } => {
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                }
                ArchMsg::Done { op, ok, ids } => {
                    ctx.complete_with(op, ok, ArchMsg::Done { op, ok, ids });
                }
                _ => {}
            },
        }
    }
}

/// The soft-state catalog architecture.
pub struct SoftState {
    inner: ArchSim,
    sites: usize,
    refresh: SimTime,
}

impl SoftState {
    /// Builds over `topology`; one catalog per topology cluster; sites
    /// publish digests every `refresh`.
    pub fn new(topology: Topology, refresh: SimTime, seed: u64) -> Self {
        let sites = topology.len();
        let catalogs: Vec<NodeId> =
            (0..topology.cluster_count()).map(|c| topology.cluster_members(c)[0]).collect();
        let nodes: Vec<Box<dyn Node<ArchMsg>>> = (0..sites)
            .map(|i| {
                let my_catalog = catalogs[topology.cluster(i)];
                Box::new(SoftSite {
                    me: i,
                    my_catalog,
                    catalogs: catalogs.clone(),
                    is_catalog: catalogs.contains(&i),
                    refresh_us: refresh.as_micros().max(1),
                    local: MetaIndex::new(),
                    soft: MetaIndex::new(),
                    buffer: Vec::new(),
                }) as Box<dyn Node<ArchMsg>>
            })
            .collect();
        SoftState { inner: ArchSim::new(topology, nodes, seed), sites, refresh }
    }

    /// The refresh period in force.
    pub fn refresh_period(&self) -> SimTime {
        self.refresh
    }
}

impl Architecture for SoftState {
    fn name(&self) -> &'static str {
        "soft-state"
    }
    fn sites(&self) -> usize {
        self.sites
    }
    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64 {
        let record = record.clone();
        self.inner.issue(origin_site, |op| ArchMsg::ClientPublish { op, record })
    }
    fn query(&mut self, client_site: usize, query: &Query) -> u64 {
        let query = query.clone();
        self.inner.issue(client_site, |op| ArchMsg::ClientQuery { op, query })
    }
    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64 {
        self.inner.issue(client_site, |op| ArchMsg::ClientLineage { op, root, depth })
    }
    fn run_for(&mut self, duration: SimTime) {
        self.inner.run_for(duration);
    }
    fn run_quiet(&mut self) {
        // Soft state never quiesces (refresh timers re-arm forever); run a
        // bounded slice instead.
        self.inner.run_for(SimTime::from_secs(30));
    }
    fn outcomes(&mut self) -> Vec<Outcome> {
        self.inner.outcomes()
    }
    fn net(&self) -> NetMetrics {
        self.inner.net()
    }
    fn reset_net(&mut self) {
        self.inner.reset_net();
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}
