//! The shared message vocabulary of the architecture models.
//!
//! All six §IV architectures speak this enum over the simulator; what
//! differs is *routing* — where records are indexed and which sites a
//! query touches. Payload sizes are charged from real canonical-codec
//! encodings so the E7 resource numbers are honest.

use pass_model::codec::Encode;
use pass_model::{ProvenanceRecord, TupleSetId};
use pass_net::NodeId;
use pass_query::{Predicate, Query};

/// Messages exchanged by architecture nodes.
#[derive(Debug, Clone)]
pub enum ArchMsg {
    /// Driver-injected: publish a freshly captured tuple set's provenance.
    ClientPublish {
        /// Driver op id.
        op: u64,
        /// The record (already ingested at its origin site's local PASS).
        record: ProvenanceRecord,
    },
    /// Driver-injected: publish a whole batch of freshly captured tuple
    /// sets' provenance in one operation (the group-commit ingest path
    /// carried across sites: one message, one ack, one op).
    ClientPublishBatch {
        /// Driver op id.
        op: u64,
        /// The records, already group-committed at the origin's local PASS.
        records: Vec<ProvenanceRecord>,
    },
    /// Driver-injected: run a query on behalf of a client at this site.
    ClientQuery {
        /// Driver op id.
        op: u64,
        /// The query.
        query: Query,
    },
    /// Driver-injected: open a standing subscription at this site. The
    /// site registers the query with its index holder, which then
    /// *pushes* a [`ArchMsg::Notify`] for every subsequently indexed
    /// matching record — the wire twin of `SUBSCRIBE <query>`. The op
    /// completes once per notification (a stream, not a one-shot).
    ClientSubscribe {
        /// Driver op id (reused by every notification completion).
        op: u64,
        /// The standing query (filter evaluated per indexed record).
        query: Query,
    },
    /// Driver-injected: ancestors-of chase from this site.
    ClientLineage {
        /// Driver op id.
        op: u64,
        /// Closure root.
        root: TupleSetId,
        /// Hop limit.
        depth: Option<u32>,
    },

    /// Ship a record to an index holder.
    StoreRecord {
        /// Op to ack (0 = silent replica).
        op: u64,
        /// The record.
        record: ProvenanceRecord,
        /// Where to send the ack, when `op != 0`.
        ack_to: NodeId,
    },
    /// Ship a whole record batch to an index holder in one transfer.
    StoreBatch {
        /// Op to ack (0 = silent replica).
        op: u64,
        /// The records.
        records: Vec<ProvenanceRecord>,
        /// Where to send the ack, when `op != 0`.
        ack_to: NodeId,
    },
    /// Index-holder acknowledgement.
    StoreAck {
        /// The acked op.
        op: u64,
    },
    /// Asynchronous replica copy (no ack).
    Replica {
        /// The record.
        record: ProvenanceRecord,
    },

    /// Scatter-gather subquery (full result shipping — the historical
    /// path, kept for architectures that have not adopted paging).
    SubQuery {
        /// Parent op.
        op: u64,
        /// The query to run locally.
        query: Query,
        /// Gatherer.
        reply_to: NodeId,
    },
    /// Subquery result.
    SubResult {
        /// Parent op.
        op: u64,
        /// Matching ids at the queried site.
        ids: Vec<TupleSetId>,
    },

    /// Paged subquery: run `query` bounded to `limit` ids, resuming
    /// strictly after `after`'s position in result order (keyset
    /// pagination — the wire twin of `LIMIT n AFTER ts:x`). Bounded
    /// queries ship pages instead of full ID sets, so query traffic
    /// scales with what the client consumes, not with the match set.
    SubQueryPage {
        /// Parent op.
        op: u64,
        /// The query to run locally.
        query: Query,
        /// Keyset token: resume after this id (None = first page).
        after: Option<TupleSetId>,
        /// Maximum ids in the reply.
        limit: usize,
        /// Gatherer.
        reply_to: NodeId,
    },
    /// One page of a paged subquery.
    SubResultPage {
        /// Parent op.
        op: u64,
        /// False when the query failed at the serving site (e.g. an
        /// unknown `AFTER` token or lineage root at an authoritative
        /// index) — the client fails the whole op, matching what a
        /// local execution would report. Sites for which "not found"
        /// is an expected condition (federation members) reply
        /// `ok: true` with an empty page instead.
        ok: bool,
        /// Up to the requested `limit` matching ids, in the site's
        /// stable result order (the last one is the next page's token).
        ids: Vec<TupleSetId>,
        /// True when the site has no further matches after this page.
        done: bool,
    },

    /// Register a standing subscription at an index holder.
    SubscribeReq {
        /// Subscription op (every future notification completes it).
        op: u64,
        /// The standing query.
        query: Query,
        /// Where matching-record notifications are pushed.
        notify_to: NodeId,
    },
    /// Index holder → subscriber: freshly indexed records matching a
    /// standing query. One message per commit that produced matches —
    /// the holder stays silent otherwise, which is where push beats a
    /// poll loop on steady-state traffic (E22).
    Notify {
        /// The subscription op.
        op: u64,
        /// Matching ids from this commit, in index order.
        ids: Vec<TupleSetId>,
    },

    /// Batched soft-state digest: records published at `from` since the
    /// last digest.
    Digest {
        /// Publishing site.
        from: NodeId,
        /// The new records.
        records: Vec<ProvenanceRecord>,
    },

    /// Coordinator → holder: expand these ids one ancestry step.
    LineageExpand {
        /// Parent op.
        op: u64,
        /// Ids to expand.
        ids: Vec<TupleSetId>,
        /// Coordinator.
        reply_to: NodeId,
    },
    /// Holder → coordinator: parents of each expanded id (ids unknown at
    /// the holder are simply absent).
    LineageParents {
        /// Parent op.
        op: u64,
        /// `(child, parents)` pairs for ids this site knows.
        pairs: Vec<(TupleSetId, Vec<TupleSetId>)>,
    },

    /// Subquery reply carrying full record bodies instead of bare ids —
    /// the consumer-side replication path (E19's `OnRead` strategy): the
    /// result shipment *is* the replica.
    Records {
        /// Parent op.
        op: u64,
        /// Matching records at the queried site, bodies included.
        records: Vec<ProvenanceRecord>,
    },

    /// Terminal result (delivered to the driver through a completion).
    Done {
        /// The finished op.
        op: u64,
        /// Whether the operation succeeded.
        ok: bool,
        /// Result ids (query matches / closure members).
        ids: Vec<TupleSetId>,
    },
}

/// Wire size of a record.
pub fn record_bytes(record: &ProvenanceRecord) -> u64 {
    record.encoded_len() as u64
}

/// Wire size of a record batch (one framing header, not N).
pub fn records_bytes(records: &[ProvenanceRecord]) -> u64 {
    4 + records.iter().map(record_bytes).sum::<u64>()
}

/// Approximate wire size of a query (predicate tree walk; the query
/// language has no canonical encoding because queries never hit storage).
pub fn query_bytes(query: &Query) -> u64 {
    fn pred(p: &Predicate) -> u64 {
        match p {
            Predicate::True => 1,
            Predicate::Eq(a, v) | Predicate::Ne(a, v) => 4 + a.len() as u64 + value_bytes(v),
            Predicate::Cmp(a, _, v) => 5 + a.len() as u64 + value_bytes(v),
            Predicate::Between(a, lo, hi) => 4 + a.len() as u64 + value_bytes(lo) + value_bytes(hi),
            Predicate::HasAttr(a) => 2 + a.len() as u64,
            Predicate::TextContains(s) => 2 + s.len() as u64,
            Predicate::TimeOverlaps(_) => 18,
            Predicate::And(ps) | Predicate::Or(ps) => 2 + ps.iter().map(pred).sum::<u64>(),
            Predicate::Not(inner) => 1 + pred(inner),
        }
    }
    fn value_bytes(v: &pass_model::Value) -> u64 {
        use pass_model::codec::Encode as _;
        v.encoded_len() as u64
    }
    let mut n = 16 + pred(&query.filter);
    if query.lineage.is_some() {
        n += 24;
    }
    n
}

/// Wire size of an id list.
pub fn ids_bytes(ids: &[TupleSetId]) -> u64 {
    16 + 16 * ids.len() as u64
}

/// Default page size for paged subqueries: large enough that unbounded
/// queries pay few round trips, small enough that a bounded `LIMIT 10`
/// ships ~10 ids instead of the full match set.
pub const QUERY_PAGE: usize = 32;

/// Wire size of a paged subquery request (query + keyset token + limit).
pub fn page_request_bytes(query: &Query) -> u64 {
    query_bytes(query) + 16 + 8
}

/// Wire size of a subscription registration (query + notify address).
pub fn subscribe_bytes(query: &Query) -> u64 {
    query_bytes(query) + 8
}

/// Wire size of a push notification (op + id list).
pub fn notify_bytes(ids: &[TupleSetId]) -> u64 {
    8 + ids_bytes(ids)
}

/// Wire size of a result page (id list + done flag).
pub fn page_reply_bytes(ids: &[TupleSetId]) -> u64 {
    ids_bytes(ids) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp};
    use pass_query::parse;

    #[test]
    fn record_bytes_tracks_content() {
        let small = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attr("a", 1i64)
            .build(Digest128::of(b"x"));
        let big = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attr("a", 1i64)
            .attr("description", "x".repeat(500))
            .build(Digest128::of(b"x"));
        assert!(record_bytes(&big) > record_bytes(&small) + 400);
    }

    #[test]
    fn query_bytes_scale_with_predicate_size() {
        let small = parse("FIND WHERE a = 1").unwrap();
        let big = parse(
            r#"FIND WHERE a = 1 AND b = "long string value here" AND c BETWEEN 1 AND 100 OR HAS d"#,
        )
        .unwrap();
        assert!(query_bytes(&big) > query_bytes(&small));
        assert!(query_bytes(&small) >= 16);
    }

    #[test]
    fn ids_bytes_linear() {
        let ids: Vec<TupleSetId> = (0..10).map(TupleSetId).collect();
        assert_eq!(ids_bytes(&ids), 16 + 160);
        assert_eq!(ids_bytes(&[]), 16);
    }
}
