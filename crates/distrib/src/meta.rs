//! The per-site metadata index.
//!
//! §IV-A is explicit that index sites hold provenance, not readings
//! ("the warehouse would not store actual sensor data"), so architecture
//! nodes carry this lightweight record index instead of a full
//! `pass_core::Pass`: the same `pass-index` structures and the same
//! `pass-query` executor, minus the storage engine.

use parking_lot::Mutex;
use pass_index::{
    AncestryGraph, AttrIndex, BfsClosure, KeywordIndex, NodeIdx, PostingList, ReachStrategy,
    TimeIndex,
};
use pass_model::{keys, ProvenanceRecord, TimeRange, TupleSetId, Value};
use pass_query::{Cursor, LineageClause, PreparedQuery, Provider, Query, QueryEngine, QueryResult};
use std::collections::HashMap;
use std::ops::Bound;

/// Created-order scans cached between inserts (inserts are append-only,
/// so the record count keys validity).
#[derive(Default)]
struct CreatedScanCache {
    len: usize,
    asc: Option<std::sync::Arc<[NodeIdx]>>,
    desc: Option<std::sync::Arc<[NodeIdx]>>,
}

/// An in-memory provenance index for one site (or catalog, or shard).
#[derive(Default)]
pub struct MetaIndex {
    graph: AncestryGraph,
    attrs: AttrIndex,
    keywords: KeywordIndex,
    time: Mutex<TimeIndex>,
    records: HashMap<TupleSetId, ProvenanceRecord>,
    created_scans: Mutex<CreatedScanCache>,
}

impl std::fmt::Debug for MetaIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaIndex").field("records", &self.records.len()).finish()
    }
}

impl MetaIndex {
    /// An empty index.
    pub fn new() -> Self {
        MetaIndex::default()
    }

    /// Indexes one record; idempotent on duplicate ids.
    pub fn insert(&mut self, record: &ProvenanceRecord) {
        if self.records.contains_key(&record.id) {
            return;
        }
        let parents: Vec<(TupleSetId, bool)> =
            record.ancestry.iter().map(|d| (d.parent, d.tool.abstracted)).collect();
        let idx = self.graph.insert(record.id, &parents);
        self.attrs.insert_attrs(idx, &record.attributes);
        for (name, value) in pass_query::ast::multi_valued_attrs(record) {
            self.attrs.insert(idx, name, value);
        }
        self.attrs.insert(idx, "origin.site", Value::Int(i64::from(record.origin.0)));
        self.attrs.insert(idx, "created_at", Value::Time(record.created_at));
        self.attrs.insert(idx, "ancestry.parents", Value::Int(record.ancestry.len() as i64));
        for ann in &record.annotations {
            self.keywords.insert(idx, &ann.text);
        }
        if let Some(desc) = record.attributes.get_str(keys::DESCRIPTION) {
            self.keywords.insert(idx, desc);
        }
        if let Some(range) = record.time_range() {
            self.time.lock().insert(idx, range);
        }
        self.records.insert(record.id, record.clone());
    }

    /// Number of records indexed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record lookup.
    pub fn get(&self, id: TupleSetId) -> Option<&ProvenanceRecord> {
        self.records.get(&id)
    }

    /// True when the record is indexed here.
    pub fn contains(&self, id: TupleSetId) -> bool {
        self.records.contains_key(&id)
    }

    /// Runs a query locally (drains a cursor).
    pub fn query(&self, query: &Query) -> pass_query::Result<QueryResult> {
        pass_query::execute(query, self)
    }

    /// Runs a query bounded for one remote page: at most `limit` ids,
    /// resuming strictly after `after`'s position in result order.
    /// This is the server half of the `SubQueryPage` protocol — the
    /// limit is pushed into the cursor, so a bounded page touches
    /// ~`limit` records regardless of store size.
    pub fn query_page(
        &self,
        query: &Query,
        after: Option<TupleSetId>,
        limit: usize,
    ) -> pass_query::Result<Vec<TupleSetId>> {
        let mut page = query.clone();
        page.limit = Some(limit);
        page.after = after;
        Ok(self.open_query(&page)?.map(|r| r.id).collect())
    }

    /// Direct parents of an id, when known here.
    pub fn parents_of(&self, id: TupleSetId) -> Option<Vec<TupleSetId>> {
        self.records.get(&id).map(|r| r.parents().collect())
    }

    /// Drops everything (crash simulation for soft state).
    pub fn clear(&mut self) {
        *self = MetaIndex::new();
    }
}

impl Provider for MetaIndex {
    fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList {
        self.attrs.eq(attr, value)
    }
    fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
        self.attrs.range(attr, low, high)
    }
    fn time_overlap(&self, range: TimeRange) -> PostingList {
        // Build lazily at first query after inserts: a no-op when clean,
        // and it keeps per-record insert O(1) while queries get the
        // sorted prefix-max path instead of the linear-scan fallback.
        let mut time = self.time.lock();
        time.build();
        time.overlapping(range)
    }
    fn keyword_lookup(&self, phrase: &str) -> PostingList {
        self.keywords.lookup_all(phrase)
    }
    fn has_attr(&self, attr: &str) -> PostingList {
        self.attrs.has_attr(attr)
    }
    fn all_nodes(&self) -> PostingList {
        PostingList::from_iter(self.records.keys().filter_map(|id| self.graph.lookup(*id)))
    }
    fn lineage(&self, clause: &LineageClause) -> Option<PostingList> {
        let root = self.graph.lookup(clause.root)?;
        let reach =
            BfsClosure.reachable(&self.graph, root, clause.direction, &clause.traverse_opts());
        Some(PostingList::from_iter(reach))
    }
    fn node_of(&self, id: TupleSetId) -> Option<NodeIdx> {
        self.graph.lookup(id)
    }
    fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord> {
        let id = self.graph.resolve(idx)?;
        self.records.get(&id).cloned()
    }
    fn created_scan(&self, desc: bool) -> Option<std::sync::Arc<[NodeIdx]>> {
        let mut cache = self.created_scans.lock();
        if cache.len != self.records.len() {
            *cache = CreatedScanCache { len: self.records.len(), asc: None, desc: None };
        }
        let slot = if desc { &mut cache.desc } else { &mut cache.asc };
        Some(
            slot.get_or_insert_with(|| {
                let keyed = self
                    .records
                    .iter()
                    .filter_map(|(id, r)| {
                        self.graph.lookup(*id).map(|idx| (r.created_at, *id, idx))
                    })
                    .collect();
                pass_query::created_order_scan(keyed, desc)
            })
            .clone(),
        )
    }
}

impl QueryEngine for MetaIndex {
    fn open(&self, prepared: &PreparedQuery) -> pass_query::Result<Cursor<'_>> {
        Cursor::over(self, prepared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp, ToolDescriptor};

    fn record(domain: &str, n: u8) -> ProvenanceRecord {
        ProvenanceBuilder::new(SiteId(1), Timestamp(u64::from(n)))
            .attr("domain", domain)
            .build(Digest128::of(&[n]))
    }

    #[test]
    fn insert_and_query() {
        let mut m = MetaIndex::new();
        let a = record("traffic", 1);
        let b = record("weather", 2);
        m.insert(&a);
        m.insert(&b);
        m.insert(&a); // idempotent
        assert_eq!(m.len(), 2);
        let res = m.query(&pass_query::parse(r#"FIND WHERE domain = "traffic""#).unwrap()).unwrap();
        assert_eq!(res.ids(), vec![a.id]);
    }

    #[test]
    fn lineage_through_provider() {
        let mut m = MetaIndex::new();
        let root = record("x", 1);
        let child = ProvenanceBuilder::new(SiteId(1), Timestamp(9))
            .attr("domain", "x")
            .derived_from(root.id, ToolDescriptor::new("t", "1"))
            .build(Digest128::of(b"c"));
        m.insert(&root);
        m.insert(&child);
        let q =
            pass_query::parse(&format!("FIND ANCESTORS OF ts:{}", child.id.full_hex())).unwrap();
        let res = m.query(&q).unwrap();
        assert_eq!(res.ids(), vec![root.id]);
        assert_eq!(m.parents_of(child.id), Some(vec![root.id]));
        assert_eq!(m.parents_of(TupleSetId(999)), None);
    }
}
