//! §IV-B model 2: the federated database.
//!
//! "Multiple autonomous database systems, each with its own specific
//! interface, transactions, concurrency, and schema … the fact that the
//! components are truly disjoint systems may lead to slow access."
//!
//! Records never leave their origin site (publishes cost zero network).
//! Queries scatter to every member through per-member *schema
//! translation*, modeled as extra bytes per subquery — the honest price
//! of the disjoint-interface property. Recursive queries broadcast each
//! frontier round to all members, because a federation has no global
//! placement function to route by.

use crate::arch::Architecture;
use crate::harness::{ArchSim, Chase, Gather};
use crate::meta::MetaIndex;
use crate::msg::{self, ArchMsg};
use crate::outcome::Outcome;
use pass_model::{ProvenanceRecord, TupleSetId};
use pass_net::{Ctx, Input, NetMetrics, Node, NodeId, SimTime, Topology, TrafficClass};
use pass_query::Query;
use std::collections::HashMap;

/// Extra bytes per subquery for schema translation between autonomous
/// members (wrapping, dialect mapping, result-schema negotiation).
pub const TRANSLATION_OVERHEAD_BYTES: u64 = 512;

struct FederatedSite {
    me: NodeId,
    sites: usize,
    index: MetaIndex,
    gathers: HashMap<u64, Gather>,
    chases: HashMap<u64, Chase>,
}

impl FederatedSite {
    fn expand_round(&mut self, ctx: &mut Ctx<'_, ArchMsg>, op: u64, frontier: Vec<TupleSetId>) {
        // No placement function: every member might know any id.
        let chase = self.chases.get_mut(&op).expect("chase exists");
        chase.outstanding = self.sites;
        let bytes = msg::ids_bytes(&frontier) + TRANSLATION_OVERHEAD_BYTES;
        for s in 0..self.sites {
            ctx.send(
                s,
                ArchMsg::LineageExpand { op, ids: frontier.clone(), reply_to: self.me },
                bytes,
                TrafficClass::Query,
            );
        }
    }
}

impl Node<ArchMsg> for FederatedSite {
    fn on_input(&mut self, ctx: &mut Ctx<'_, ArchMsg>, input: Input<ArchMsg>) {
        let Input::Message { from: _, msg } = input else {
            return;
        };
        match msg {
            ArchMsg::ClientPublish { op, record } => {
                // Autonomy: the record stays home. Publishing is local.
                self.index.insert(&record);
                ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
            }
            ArchMsg::ClientQuery { op, query } => {
                self.gathers.insert(op, Gather { expected: self.sites, acc: Vec::new() });
                let bytes = msg::query_bytes(&query) + TRANSLATION_OVERHEAD_BYTES;
                for s in 0..self.sites {
                    ctx.send(
                        s,
                        ArchMsg::SubQuery { op, query: query.clone(), reply_to: self.me },
                        bytes,
                        TrafficClass::Query,
                    );
                }
            }
            ArchMsg::SubQuery { op, query, reply_to } => {
                let ids = self.index.query(&query).map(|r| r.ids()).unwrap_or_default();
                let bytes = msg::ids_bytes(&ids) + TRANSLATION_OVERHEAD_BYTES;
                ctx.send(reply_to, ArchMsg::SubResult { op, ids }, bytes, TrafficClass::Query);
            }
            ArchMsg::SubResult { op, ids } => {
                if let Some(gather) = self.gathers.get_mut(&op) {
                    if gather.absorb(ids) {
                        let gather = self.gathers.remove(&op).expect("gather exists");
                        let ids = gather.finish();
                        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                    }
                }
            }
            ArchMsg::ClientLineage { op, root, depth } => {
                self.chases.insert(op, Chase::new(root, depth));
                self.expand_round(ctx, op, vec![root]);
            }
            ArchMsg::LineageExpand { op, ids, reply_to } => {
                let pairs: Vec<(TupleSetId, Vec<TupleSetId>)> = ids
                    .into_iter()
                    .filter_map(|id| self.index.parents_of(id).map(|p| (id, p)))
                    .collect();
                let bytes = 16 + pairs.iter().map(|(_, p)| 16 + 16 * p.len() as u64).sum::<u64>();
                ctx.send(
                    reply_to,
                    ArchMsg::LineageParents { op, pairs },
                    bytes,
                    TrafficClass::Query,
                );
            }
            ArchMsg::LineageParents { op, pairs } => {
                let Some(chase) = self.chases.get_mut(&op) else {
                    return;
                };
                if !chase.absorb(pairs) {
                    return;
                }
                match chase.advance() {
                    Some(frontier) => self.expand_round(ctx, op, frontier),
                    None => {
                        let chase = self.chases.remove(&op).expect("chase exists");
                        let ids = chase.finish();
                        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                    }
                }
            }
            _ => {}
        }
    }
}

/// The federation of autonomous sites.
pub struct Federated {
    inner: ArchSim,
    sites: usize,
}

impl Federated {
    /// Builds over `topology`.
    pub fn new(topology: Topology, seed: u64) -> Self {
        let sites = topology.len();
        let nodes: Vec<Box<dyn Node<ArchMsg>>> = (0..sites)
            .map(|i| {
                Box::new(FederatedSite {
                    me: i,
                    sites,
                    index: MetaIndex::new(),
                    gathers: HashMap::new(),
                    chases: HashMap::new(),
                }) as Box<dyn Node<ArchMsg>>
            })
            .collect();
        Federated { inner: ArchSim::new(topology, nodes, seed), sites }
    }
}

impl Architecture for Federated {
    fn name(&self) -> &'static str {
        "federated"
    }
    fn sites(&self) -> usize {
        self.sites
    }
    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64 {
        let record = record.clone();
        self.inner.issue(origin_site, |op| ArchMsg::ClientPublish { op, record })
    }
    fn query(&mut self, client_site: usize, query: &Query) -> u64 {
        let query = query.clone();
        self.inner.issue(client_site, |op| ArchMsg::ClientQuery { op, query })
    }
    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64 {
        self.inner.issue(client_site, |op| ArchMsg::ClientLineage { op, root, depth })
    }
    fn run_for(&mut self, duration: SimTime) {
        self.inner.run_for(duration);
    }
    fn run_quiet(&mut self) {
        self.inner.run_quiet();
    }
    fn outcomes(&mut self) -> Vec<Outcome> {
        self.inner.outcomes()
    }
    fn net(&self) -> NetMetrics {
        self.inner.net()
    }
    fn reset_net(&mut self) {
        self.inner.reset_net();
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}
