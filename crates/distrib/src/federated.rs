//! §IV-B model 2: the federated database.
//!
//! "Multiple autonomous database systems, each with its own specific
//! interface, transactions, concurrency, and schema … the fact that the
//! components are truly disjoint systems may lead to slow access."
//!
//! Records never leave their origin site (publishes cost zero network).
//! Queries scatter to every member through per-member *schema
//! translation*, modeled as extra bytes per subquery — the honest price
//! of the disjoint-interface property. Each member streams bounded
//! `SubQueryPage`s (keyset pagination) rather than one full ID set; a
//! bounded query stops requesting pages the moment its LIMIT is
//! satisfied, so its traffic scales with the limit, not the match set.
//! Recursive queries broadcast each frontier round to all members,
//! because a federation has no global placement function to route by.
//!
//! Pagination contract: a federation's global result order is sorted
//! tuple-set ids (what the gatherer establishes). `LIMIT k` alone
//! returns *some* k matches cheaply (members stream pages, early
//! termination). `AFTER ts:x` resumes strictly after `x` in the global
//! order — members cannot resolve a foreign token, so these queries
//! fall back to full-result shipping and the gatherer applies the cut;
//! the token is positional and need not exist anywhere. Clients that
//! need coherent global pages therefore pay full shipping per page;
//! clients that just want a bounded sample use plain `LIMIT`.

use crate::arch::Architecture;
use crate::harness::{ArchSim, Chase, Gather};
use crate::meta::MetaIndex;
use crate::msg::{self, ArchMsg, QUERY_PAGE};
use crate::outcome::Outcome;
use pass_model::{ProvenanceRecord, TupleSetId};
use pass_net::{Ctx, Input, NetMetrics, Node, NodeId, SimTime, Topology, TrafficClass};
use pass_query::Query;
use std::collections::HashMap;

/// Extra bytes per subquery for schema translation between autonomous
/// members (wrapping, dialect mapping, result-schema negotiation).
pub const TRANSLATION_OVERHEAD_BYTES: u64 = 512;

/// Per-member progress of one scattered, paged query.
struct MemberPage {
    done: bool,
    /// Keyset token: last id this member returned.
    last: Option<TupleSetId>,
}

/// Gatherer state for a paged scatter query.
struct PagedGather {
    query: Query,
    want: Option<usize>,
    members: Vec<MemberPage>,
    acc: Vec<TupleSetId>,
}

impl PagedGather {
    fn finish(mut self) -> Vec<TupleSetId> {
        self.acc.sort_unstable();
        self.acc.dedup();
        if let Some(want) = self.want {
            self.acc.truncate(want);
        }
        self.acc
    }
}

/// State of one `AFTER`-fallback gather: members run the query without
/// the token (they cannot resolve a foreign id), the gatherer applies
/// the keyset cut in the federation's global result order (sorted ids).
struct FullFetch {
    gather: Gather,
    after: TupleSetId,
    want: Option<usize>,
}

struct FederatedSite {
    me: NodeId,
    sites: usize,
    index: MetaIndex,
    gathers: HashMap<u64, PagedGather>,
    /// Full-result gathers (the `AFTER` fallback path).
    full_gathers: HashMap<u64, FullFetch>,
    chases: HashMap<u64, Chase>,
}

impl FederatedSite {
    fn expand_round(&mut self, ctx: &mut Ctx<'_, ArchMsg>, op: u64, frontier: Vec<TupleSetId>) {
        // No placement function: every member might know any id.
        let chase = self.chases.get_mut(&op).expect("chase exists");
        chase.outstanding = self.sites;
        let bytes = msg::ids_bytes(&frontier) + TRANSLATION_OVERHEAD_BYTES;
        for s in 0..self.sites {
            ctx.send(
                s,
                ArchMsg::LineageExpand { op, ids: frontier.clone(), reply_to: self.me },
                bytes,
                TrafficClass::Query,
            );
        }
    }

    /// Requests one page from `member` for an in-flight gather.
    fn request_member_page(&self, ctx: &mut Ctx<'_, ArchMsg>, op: u64, member: NodeId) {
        let gather = self.gathers.get(&op).expect("gather exists");
        let limit = match gather.want {
            // Disjoint members: any one could satisfy the whole budget,
            // but never usefully more.
            Some(want) => QUERY_PAGE.min(want.saturating_sub(gather.acc.len()).max(1)),
            None => QUERY_PAGE,
        };
        let bytes = msg::page_request_bytes(&gather.query) + TRANSLATION_OVERHEAD_BYTES;
        ctx.send(
            member,
            ArchMsg::SubQueryPage {
                op,
                query: gather.query.clone(),
                after: gather.members[member].last,
                limit,
                reply_to: self.me,
            },
            bytes,
            TrafficClass::Query,
        );
    }
}

impl Node<ArchMsg> for FederatedSite {
    fn on_input(&mut self, ctx: &mut Ctx<'_, ArchMsg>, input: Input<ArchMsg>) {
        let Input::Message { from, msg } = input else {
            return;
        };
        match msg {
            ArchMsg::ClientPublish { op, record } => {
                // Autonomy: the record stays home. Publishing is local.
                self.index.insert(&record);
                ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
            }
            ArchMsg::ClientQuery { op, query } => {
                if query.limit == Some(0) {
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
                    return;
                }
                if let Some(after) = query.after {
                    // Disjoint members cannot resolve a foreign keyset
                    // token, so per-member paging is off the table:
                    // fall back to full-result shipping of the
                    // token-free query and apply the keyset cut at the
                    // gatherer, in the federation's global result order
                    // (sorted ids — the order `finish` establishes).
                    self.full_gathers.insert(
                        op,
                        FullFetch {
                            gather: Gather { expected: self.sites, acc: Vec::new() },
                            after,
                            want: query.limit,
                        },
                    );
                    let mut stripped = query.clone();
                    stripped.after = None;
                    stripped.limit = None;
                    let bytes = msg::query_bytes(&stripped) + TRANSLATION_OVERHEAD_BYTES;
                    for s in 0..self.sites {
                        ctx.send(
                            s,
                            ArchMsg::SubQuery { op, query: stripped.clone(), reply_to: self.me },
                            bytes,
                            TrafficClass::Query,
                        );
                    }
                    return;
                }
                let members =
                    (0..self.sites).map(|_| MemberPage { done: false, last: None }).collect();
                self.gathers
                    .insert(op, PagedGather { want: query.limit, members, acc: Vec::new(), query });
                for s in 0..self.sites {
                    self.request_member_page(ctx, op, s);
                }
            }
            ArchMsg::SubQuery { op, query, reply_to } => {
                let ids = self.index.query(&query).map(|r| r.ids()).unwrap_or_default();
                let bytes = msg::ids_bytes(&ids) + TRANSLATION_OVERHEAD_BYTES;
                ctx.send(reply_to, ArchMsg::SubResult { op, ids }, bytes, TrafficClass::Query);
            }
            ArchMsg::SubResult { op, ids } => {
                if let Some(fetch) = self.full_gathers.get_mut(&op) {
                    if fetch.gather.absorb(ids) {
                        let fetch = self.full_gathers.remove(&op).expect("gather exists");
                        // `finish` sorts and dedups — the global result
                        // order. The keyset token marks a position in
                        // it whether or not that id matched.
                        let after = fetch.after;
                        let mut ids = fetch.gather.finish();
                        ids.retain(|id| *id > after);
                        if let Some(want) = fetch.want {
                            ids.truncate(want);
                        }
                        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                    }
                }
            }
            ArchMsg::SubQueryPage { op, query, after, limit, reply_to } => {
                // Autonomy: an id this member does not hold is an
                // expected condition, not an error — reply with an
                // empty, final page (`ok: true`).
                let ids = self.index.query_page(&query, after, limit).unwrap_or_default();
                let done = ids.len() < limit;
                let bytes = msg::page_reply_bytes(&ids) + TRANSLATION_OVERHEAD_BYTES;
                ctx.send(
                    reply_to,
                    ArchMsg::SubResultPage { op, ok: true, ids, done },
                    bytes,
                    TrafficClass::Query,
                );
            }
            ArchMsg::SubResultPage { op, ids, done, ok: _ } => {
                let Some(gather) = self.gathers.get_mut(&op) else {
                    return; // already satisfied and completed
                };
                let member = &mut gather.members[from];
                member.last = ids.last().copied().or(member.last);
                member.done = done;
                gather.acc.extend(ids);
                // Members hold disjoint record sets, so the raw count is
                // the unique count.
                let satisfied = gather.want.is_some_and(|want| gather.acc.len() >= want);
                let all_done = gather.members.iter().all(|m| m.done);
                if satisfied || all_done {
                    let gather = self.gathers.remove(&op).expect("gather exists");
                    let ids = gather.finish();
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                } else if !done {
                    self.request_member_page(ctx, op, from);
                }
            }
            ArchMsg::ClientLineage { op, root, depth } => {
                self.chases.insert(op, Chase::new(root, depth));
                self.expand_round(ctx, op, vec![root]);
            }
            ArchMsg::LineageExpand { op, ids, reply_to } => {
                let pairs: Vec<(TupleSetId, Vec<TupleSetId>)> = ids
                    .into_iter()
                    .filter_map(|id| self.index.parents_of(id).map(|p| (id, p)))
                    .collect();
                let bytes = 16 + pairs.iter().map(|(_, p)| 16 + 16 * p.len() as u64).sum::<u64>();
                ctx.send(
                    reply_to,
                    ArchMsg::LineageParents { op, pairs },
                    bytes,
                    TrafficClass::Query,
                );
            }
            ArchMsg::LineageParents { op, pairs } => {
                let Some(chase) = self.chases.get_mut(&op) else {
                    return;
                };
                if !chase.absorb(pairs) {
                    return;
                }
                match chase.advance() {
                    Some(frontier) => self.expand_round(ctx, op, frontier),
                    None => {
                        let chase = self.chases.remove(&op).expect("chase exists");
                        let ids = chase.finish();
                        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                    }
                }
            }
            _ => {}
        }
    }
}

/// The federation of autonomous sites.
pub struct Federated {
    inner: ArchSim,
    sites: usize,
}

impl Federated {
    /// Builds over `topology`.
    pub fn new(topology: Topology, seed: u64) -> Self {
        let sites = topology.len();
        let nodes: Vec<Box<dyn Node<ArchMsg>>> = (0..sites)
            .map(|i| {
                Box::new(FederatedSite {
                    me: i,
                    sites,
                    index: MetaIndex::new(),
                    gathers: HashMap::new(),
                    full_gathers: HashMap::new(),
                    chases: HashMap::new(),
                }) as Box<dyn Node<ArchMsg>>
            })
            .collect();
        Federated { inner: ArchSim::new(topology, nodes, seed), sites }
    }
}

impl Architecture for Federated {
    fn name(&self) -> &'static str {
        "federated"
    }
    fn sites(&self) -> usize {
        self.sites
    }
    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64 {
        let record = record.clone();
        self.inner.issue(origin_site, |op| ArchMsg::ClientPublish { op, record })
    }
    fn query(&mut self, client_site: usize, query: &Query) -> u64 {
        let query = query.clone();
        self.inner.issue(client_site, |op| ArchMsg::ClientQuery { op, query })
    }
    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64 {
        self.inner.issue(client_site, |op| ArchMsg::ClientLineage { op, root, depth })
    }
    fn run_for(&mut self, duration: SimTime) {
        self.inner.run_for(duration);
    }
    fn run_quiet(&mut self) {
        self.inner.run_quiet();
    }
    fn outcomes(&mut self) -> Vec<Outcome> {
        self.inner.outcomes()
    }
    fn net(&self) -> NetMetrics {
        self.inner.net()
    }
    fn reset_net(&mut self) {
        self.inner.reset_net();
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}
