//! §IV-C: the DHT-backed provenance index.
//!
//! Records are stored under `hash(id)`; per-attribute posting lists
//! (PIER-style) live under `hash(attr=value)`. The model faithfully
//! reproduces the costs the paper enumerates:
//!
//! * **Placement-blind storage** — a record's bytes land wherever its
//!   hash says, never near its producers or consumers (E8).
//! * **Per-attribute update fan-out** — publishing one tuple set costs
//!   one blob put plus one posting append per indexed attribute, each a
//!   full `O(log n)` routed lookup (E6).
//! * **No recursive queries** — an ancestors chase is one DHT get per
//!   edge per generation, every one of them a multi-hop lookup (E14).
//! * **Churn fragility** — unreplicated postings die with their holders
//!   (E11, E15).
//!
//! Multi-attribute queries fetch each posting list and intersect at the
//! client; predicates that are not equality-on-an-indexed-attribute are
//! simply unanswerable, which is reported as a failed outcome rather
//! than papered over.

use crate::arch::Architecture;
use crate::outcome::Outcome;
use pass_dht::{key_of, ChordConfig, ChordMsg, DhtHarness};
use pass_model::codec::Decode;
use pass_model::{keys, ProvenanceRecord, TupleSetId};
use pass_net::{Completion, NetMetrics, SimTime, Topology};
use pass_query::{Predicate, Query};
use std::collections::{HashMap, HashSet};

/// Attributes the DHT index maintains postings for.
pub const INDEXED_ATTRS: &[&str] =
    &[keys::DOMAIN, keys::REGION, keys::TYPE, keys::SENSOR_TYPE, keys::PATIENT, keys::OPERATOR];

fn posting_key(attr: &str, value: &str) -> u64 {
    key_of(format!("posting:{attr}={value}").as_bytes())
}

fn blob_key(id: TupleSetId) -> u64 {
    key_of(&id.to_be_bytes())
}

/// Extracts the equality terms the DHT can serve.
fn eq_terms(p: &Predicate) -> Option<Vec<(String, String)>> {
    fn walk(p: &Predicate, out: &mut Vec<(String, String)>) -> bool {
        match p {
            Predicate::True => true,
            Predicate::Eq(attr, value) => match value.as_str() {
                Some(s) if INDEXED_ATTRS.contains(&attr.as_str()) => {
                    out.push((attr.clone(), s.to_owned()));
                    true
                }
                _ => false,
            },
            Predicate::And(ps) => ps.iter().all(|sub| walk(sub, out)),
            _ => false,
        }
    }
    let mut out = Vec::new();
    if walk(p, &mut out) && !out.is_empty() {
        Some(out)
    } else {
        None
    }
}

enum Logical {
    Publish { remaining: usize },
    Query { remaining: usize, acc: Option<HashSet<TupleSetId>>, limit: Option<usize> },
    Chase { visited: HashSet<TupleSetId>, acc: Vec<TupleSetId>, outstanding: usize, via: usize },
}

/// The DHT-index architecture.
pub struct DhtIndex {
    h: DhtHarness,
    sites: usize,
    next_logical: u64,
    sub_to_logical: HashMap<u64, u64>,
    /// Depth budget left for the subtree fetched by a chase sub-op.
    sub_depth: HashMap<u64, Option<u32>>,
    logical: HashMap<u64, Logical>,
    ready: Vec<Outcome>,
}

impl DhtIndex {
    /// Builds a converged ring over `topology` with `replicas` copies of
    /// each key.
    pub fn new(topology: Topology, replicas: usize, seed: u64) -> Self {
        let config = ChordConfig { replicas, ..ChordConfig::default() };
        let sites = topology.len();
        let h = DhtHarness::build(topology, config, seed);
        DhtIndex {
            h,
            sites,
            next_logical: 1,
            sub_to_logical: HashMap::new(),
            sub_depth: HashMap::new(),
            logical: HashMap::new(),
            ready: Vec::new(),
        }
    }

    /// Access to the underlying harness (churn injection in E11/E15).
    pub fn harness_mut(&mut self) -> &mut DhtHarness {
        &mut self.h
    }

    fn alloc(&mut self) -> u64 {
        let op = self.next_logical;
        self.next_logical += 1;
        op
    }

    fn finish(&mut self, op: u64, ok: bool, mut ids: Vec<TupleSetId>, at: SimTime) {
        ids.sort_unstable();
        ids.dedup();
        self.ready.push(Outcome { op, ok, at, ids });
    }

    fn handle(&mut self, completion: Completion<ChordMsg>) {
        let Some(&logical_op) = self.sub_to_logical.get(&completion.op) else {
            return;
        };
        self.sub_to_logical.remove(&completion.op);
        let depth_left = self.sub_depth.remove(&completion.op).flatten();
        let Some(state) = self.logical.get_mut(&logical_op) else {
            return;
        };
        match state {
            Logical::Publish { remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.logical.remove(&logical_op);
                    self.finish(logical_op, true, Vec::new(), completion.at);
                }
            }
            Logical::Query { remaining, acc, .. } => {
                let items = match completion.payload {
                    Some(ChordMsg::ListReply { items, .. }) => items,
                    _ => Vec::new(),
                };
                let ids: HashSet<TupleSetId> = items
                    .iter()
                    .filter_map(|b| <[u8; 16]>::try_from(b.as_slice()).ok())
                    .map(TupleSetId::from_be_bytes)
                    .collect();
                *acc = Some(match acc.take() {
                    None => ids,
                    Some(prev) => prev.intersection(&ids).copied().collect(),
                });
                *remaining -= 1;
                if *remaining == 0 {
                    let Some(Logical::Query { acc, limit, .. }) = self.logical.remove(&logical_op)
                    else {
                        unreachable!("state checked above");
                    };
                    let mut ids: Vec<TupleSetId> = acc.unwrap_or_default().into_iter().collect();
                    if let Some(limit) = limit {
                        ids.sort_unstable();
                        ids.truncate(limit);
                    }
                    self.finish(logical_op, true, ids, completion.at);
                }
            }
            Logical::Chase { visited, acc, outstanding, via } => {
                let via = *via;
                *outstanding -= 1;
                let mut new_fetches: Vec<(TupleSetId, Option<u32>)> = Vec::new();
                if let Some(ChordMsg::FetchReply { value: Some(bytes), .. }) = completion.payload {
                    if let Ok(record) = ProvenanceRecord::decode_all(&bytes) {
                        let next_depth = match depth_left {
                            Some(0) => None, // exhausted: record counted, no expansion
                            Some(d) => Some(Some(d - 1)),
                            None => Some(None),
                        };
                        if let Some(next_depth) = next_depth {
                            for parent in record.parents() {
                                if visited.insert(parent) {
                                    acc.push(parent);
                                    new_fetches.push((parent, next_depth));
                                }
                            }
                        }
                    }
                }
                if !new_fetches.is_empty() {
                    if let Some(Logical::Chase { outstanding, .. }) =
                        self.logical.get_mut(&logical_op)
                    {
                        *outstanding += new_fetches.len();
                    }
                    for (id, d) in new_fetches {
                        let sub = self.h.get(via, blob_key(id));
                        self.sub_to_logical.insert(sub, logical_op);
                        self.sub_depth.insert(sub, d);
                    }
                }
                if let Some(Logical::Chase { outstanding, .. }) = self.logical.get(&logical_op) {
                    if *outstanding == 0 {
                        let Some(Logical::Chase { acc, .. }) = self.logical.remove(&logical_op)
                        else {
                            unreachable!("state checked above");
                        };
                        self.finish(logical_op, true, acc, completion.at);
                    }
                }
            }
        }
    }

    /// Runs events and feeds completions back into chase/gather logic
    /// until all in-flight logical operations resolve. Chord maintenance
    /// timers never quiesce, so time advances in bounded slices; ops
    /// that stay silent for many slices (lost to churn) fail explicitly.
    fn pump(&mut self) {
        const SLICE_US: u64 = 2_000_000;
        const MAX_IDLE_SLICES: u32 = 15;
        let mut idle = 0u32;
        while !self.logical.is_empty() && idle < MAX_IDLE_SLICES {
            let deadline = SimTime::from_micros(self.h.sim.now().as_micros() + SLICE_US);
            self.h.sim.run_until(deadline);
            let completions = self.h.sim.take_completions();
            if completions.is_empty() {
                idle += 1;
            } else {
                idle = 0;
                for c in completions {
                    self.handle(c);
                }
            }
        }
        if !self.logical.is_empty() {
            let at = self.h.sim.now();
            let stuck: Vec<u64> = self.logical.keys().copied().collect();
            for op in stuck {
                self.logical.remove(&op);
                self.ready.push(Outcome { op, ok: false, at, ids: Vec::new() });
            }
            self.sub_to_logical.clear();
            self.sub_depth.clear();
        }
    }
}

impl Architecture for DhtIndex {
    fn name(&self) -> &'static str {
        "dht"
    }

    fn sites(&self) -> usize {
        self.sites
    }

    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64 {
        use pass_model::codec::Encode;
        let op = self.alloc();
        let mut subs = Vec::new();
        subs.push(self.h.put(origin_site, blob_key(record.id), record.encode_to_vec()));
        for attr in INDEXED_ATTRS {
            if let Some(value) = record.attributes.get_str(attr) {
                subs.push(self.h.append(
                    origin_site,
                    posting_key(attr, value),
                    record.id.to_be_bytes().to_vec(),
                ));
            }
        }
        self.logical.insert(op, Logical::Publish { remaining: subs.len() });
        for sub in subs {
            self.sub_to_logical.insert(sub, op);
        }
        op
    }

    fn query(&mut self, client_site: usize, query: &Query) -> u64 {
        let op = self.alloc();
        if query.after.is_some() {
            // A hash-partitioned index has no result order, so keyset
            // pagination is unanswerable: fail fast like non-eq shapes.
            let at = self.h.sim.now();
            self.ready.push(Outcome { op, ok: false, at, ids: Vec::new() });
            return op;
        }
        match eq_terms(&query.filter) {
            Some(terms) => {
                // Bounded posting read: a single-term query with LIMIT n
                // only needs n posting entries, so the holder truncates
                // the reply. Multi-term intersections must fetch full
                // lists (a bounded page of each could miss the overlap).
                let cap = match (query.limit, terms.len()) {
                    (Some(n), 1) => n,
                    _ => 0,
                };
                self.logical.insert(
                    op,
                    Logical::Query { remaining: terms.len(), acc: None, limit: query.limit },
                );
                for (attr, value) in terms {
                    let key = posting_key(&attr, &value);
                    let sub = if cap > 0 {
                        self.h.get_list_bounded(client_site, key, cap)
                    } else {
                        self.h.get_list(client_site, key)
                    };
                    self.sub_to_logical.insert(sub, op);
                }
            }
            None => {
                // Unanswerable by a name-to-value DHT (§II-B): fail fast.
                let at = self.h.sim.now();
                self.ready.push(Outcome { op, ok: false, at, ids: Vec::new() });
            }
        }
        op
    }

    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64 {
        let op = self.alloc();
        let mut visited = HashSet::new();
        visited.insert(root);
        self.logical.insert(
            op,
            Logical::Chase { visited, acc: Vec::new(), outstanding: 1, via: client_site },
        );
        let sub = self.h.get(client_site, blob_key(root));
        self.sub_to_logical.insert(sub, op);
        self.sub_depth.insert(sub, depth);
        op
    }

    fn run_for(&mut self, duration: SimTime) {
        let deadline = SimTime::from_micros(self.h.sim.now().as_micros() + duration.as_micros());
        self.h.sim.run_until(deadline);
        let completions = self.h.sim.take_completions();
        for c in completions {
            self.handle(c);
        }
    }

    fn run_quiet(&mut self) {
        self.pump();
    }

    fn outcomes(&mut self) -> Vec<Outcome> {
        std::mem::take(&mut self.ready)
    }

    fn net(&self) -> NetMetrics {
        self.h.sim.metrics().clone()
    }

    fn reset_net(&mut self) {
        self.h.sim.reset_metrics();
    }

    fn now(&self) -> SimTime {
        self.h.sim.now()
    }
}
