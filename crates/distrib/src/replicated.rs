//! §V's replication question, executable: "Our model does not inherently
//! involve replication, as data is locale-specific, but replication is
//! desirable for reliability and for query performance. Supporting
//! replication cheaply is an interesting problem."
//!
//! This module puts three replication strategies behind one federation so
//! the cost/benefit can be measured (experiment E19):
//!
//! * [`ReplicationStrategy::OriginOnly`] — the paper's default posture:
//!   records live only where they were produced. Publishes are free;
//!   every query is a scatter-gather; one dead member loses its share of
//!   every answer.
//! * [`ReplicationStrategy::Eager`] — push `factor` copies to fixed
//!   mirror sites at publish time. Update bandwidth scales with the
//!   factor; queries survive up to `factor − 1` failures per record; at
//!   `factor = sites` every query turns local.
//! * [`ReplicationStrategy::OnRead`] — the RLS posture the paper cites
//!   approvingly ("data is stored at the producers and replicated at
//!   consumers"): subquery replies ship full record bodies and the
//!   consumer caches them, so the *first* query pays and repeats are
//!   local — replication cost lands exactly on the data that proved
//!   worth reading.
//!
//! Queries carry a timeout so the federation degrades instead of
//! hanging when members die: a gather that cannot hear from every site
//! completes with what it has, and the lost share shows up as recall,
//! the paper's own result-quality criterion.

use crate::arch::Architecture;
use crate::harness::{ArchSim, Chase, Gather};
use crate::meta::MetaIndex;
use crate::msg::{self, ArchMsg};
use crate::outcome::Outcome;
use pass_model::{ProvenanceRecord, TupleSetId};
use pass_net::{Ctx, Input, NetMetrics, Node, NodeId, SimTime, Topology, TrafficClass};
use pass_query::Query;
use std::collections::{HashMap, HashSet};

/// How records propagate beyond their origin site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationStrategy {
    /// No replication: records stay at their origin (baseline).
    OriginOnly,
    /// Push copies to `factor − 1` mirror sites at publish time
    /// (`factor` total holders, clamped to the site count).
    Eager {
        /// Total holders per record, origin included.
        factor: usize,
    },
    /// Cache records at the consumer when query results deliver them.
    OnRead,
}

impl ReplicationStrategy {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            ReplicationStrategy::OriginOnly => "origin-only".to_string(),
            ReplicationStrategy::Eager { factor } => format!("eager-{factor}"),
            ReplicationStrategy::OnRead => "on-read".to_string(),
        }
    }
}

/// Gather that may also carry record bodies (OnRead) and can finish
/// early on timeout.
struct TimedGather {
    inner: Gather,
    /// Canonical key of the query, for the consumer cache.
    key: Option<String>,
    /// Records delivered alongside ids (OnRead).
    records: Vec<ProvenanceRecord>,
    /// True when every expected reply arrived (cache-safe).
    complete: bool,
}

struct ReplicatedSite {
    me: NodeId,
    sites: usize,
    strategy: ReplicationStrategy,
    timeout_us: u64,
    index: MetaIndex,
    gathers: HashMap<u64, TimedGather>,
    chases: HashMap<u64, Chase>,
    /// OnRead: queries whose full result set is locally cached.
    cached_queries: HashSet<String>,
}

impl ReplicatedSite {
    fn eager_holders(&self, origin: NodeId) -> Vec<NodeId> {
        match self.strategy {
            ReplicationStrategy::Eager { factor } => {
                let n = factor.clamp(1, self.sites);
                (1..n).map(|i| (origin + i) % self.sites).collect()
            }
            _ => Vec::new(),
        }
    }

    fn answers_locally(&self, key: &str) -> bool {
        match self.strategy {
            ReplicationStrategy::Eager { factor } => factor >= self.sites,
            ReplicationStrategy::OnRead => self.cached_queries.contains(key),
            ReplicationStrategy::OriginOnly => false,
        }
    }

    fn finish_query(&mut self, ctx: &mut Ctx<'_, ArchMsg>, op: u64) {
        let Some(gather) = self.gathers.remove(&op) else { return };
        if let ReplicationStrategy::OnRead = self.strategy {
            for record in &gather.records {
                self.index.insert(record);
            }
            // Only a gather that heard from every member proves the
            // cached answer is complete; timeouts must not poison the
            // cache with partial results.
            if gather.complete {
                if let Some(key) = &gather.key {
                    self.cached_queries.insert(key.clone());
                }
            }
        }
        let ids = gather.inner.finish();
        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
    }

    fn expand_round(&mut self, ctx: &mut Ctx<'_, ArchMsg>, op: u64, frontier: Vec<TupleSetId>) {
        let chase = self.chases.get_mut(&op).expect("chase exists");
        chase.outstanding = self.sites;
        let bytes = msg::ids_bytes(&frontier);
        for s in 0..self.sites {
            ctx.send(
                s,
                ArchMsg::LineageExpand { op, ids: frontier.clone(), reply_to: self.me },
                bytes,
                TrafficClass::Query,
            );
        }
    }
}

/// Canonical cache key for a query (debug rendering is stable for our
/// Query AST and never leaves the process).
fn query_key(query: &Query) -> String {
    format!("{query:?}")
}

impl Node<ArchMsg> for ReplicatedSite {
    fn on_input(&mut self, ctx: &mut Ctx<'_, ArchMsg>, input: Input<ArchMsg>) {
        match input {
            Input::Start => {}
            Input::Timer { tag: op } => {
                // Query deadline: degrade to the partial answer.
                if self.gathers.contains_key(&op) {
                    self.finish_query(ctx, op);
                } else if let Some(chase) = self.chases.remove(&op) {
                    let ids = chase.finish();
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                }
            }
            Input::Message { from: _, msg } => match msg {
                ArchMsg::ClientPublish { op, record } => {
                    self.index.insert(&record);
                    let bytes = msg::record_bytes(&record);
                    for mirror in self.eager_holders(self.me) {
                        ctx.send(
                            mirror,
                            ArchMsg::Replica { record: record.clone() },
                            bytes,
                            TrafficClass::Update,
                        );
                    }
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
                }
                ArchMsg::Replica { record } => {
                    self.index.insert(&record);
                }
                ArchMsg::ClientQuery { op, query } => {
                    let key = query_key(&query);
                    if self.answers_locally(&key) {
                        let ids = self.index.query(&query).map(|r| r.ids()).unwrap_or_default();
                        ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                        return;
                    }
                    self.gathers.insert(
                        op,
                        TimedGather {
                            inner: Gather { expected: self.sites, acc: Vec::new() },
                            key: Some(key),
                            records: Vec::new(),
                            complete: false,
                        },
                    );
                    ctx.set_timer(self.timeout_us, op);
                    let bytes = msg::query_bytes(&query);
                    for s in 0..self.sites {
                        ctx.send(
                            s,
                            ArchMsg::SubQuery { op, query: query.clone(), reply_to: self.me },
                            bytes,
                            TrafficClass::Query,
                        );
                    }
                }
                ArchMsg::SubQuery { op, query, reply_to } => {
                    let ids = self.index.query(&query).map(|r| r.ids()).unwrap_or_default();
                    match self.strategy {
                        ReplicationStrategy::OnRead => {
                            let records: Vec<ProvenanceRecord> =
                                ids.iter().filter_map(|&id| self.index.get(id).cloned()).collect();
                            let bytes = 16 + records.iter().map(msg::record_bytes).sum::<u64>();
                            ctx.send(
                                reply_to,
                                ArchMsg::Records { op, records },
                                bytes,
                                TrafficClass::Query,
                            );
                        }
                        _ => {
                            let bytes = msg::ids_bytes(&ids);
                            ctx.send(
                                reply_to,
                                ArchMsg::SubResult { op, ids },
                                bytes,
                                TrafficClass::Query,
                            );
                        }
                    }
                }
                ArchMsg::SubResult { op, ids } => {
                    if let Some(g) = self.gathers.get_mut(&op) {
                        if g.inner.absorb(ids) {
                            g.complete = true;
                            self.finish_query(ctx, op);
                        }
                    }
                }
                ArchMsg::Records { op, records } => {
                    if let Some(g) = self.gathers.get_mut(&op) {
                        let ids: Vec<TupleSetId> = records.iter().map(|r| r.id).collect();
                        g.records.extend(records);
                        if g.inner.absorb(ids) {
                            g.complete = true;
                            self.finish_query(ctx, op);
                        }
                    }
                }
                ArchMsg::ClientLineage { op, root, depth } => {
                    self.chases.insert(op, Chase::new(root, depth));
                    ctx.set_timer(self.timeout_us, op);
                    self.expand_round(ctx, op, vec![root]);
                }
                ArchMsg::LineageExpand { op, ids, reply_to } => {
                    let pairs: Vec<(TupleSetId, Vec<TupleSetId>)> = ids
                        .into_iter()
                        .filter_map(|id| self.index.parents_of(id).map(|p| (id, p)))
                        .collect();
                    let bytes =
                        16 + pairs.iter().map(|(_, p)| 16 + 16 * p.len() as u64).sum::<u64>();
                    ctx.send(
                        reply_to,
                        ArchMsg::LineageParents { op, pairs },
                        bytes,
                        TrafficClass::Query,
                    );
                }
                ArchMsg::LineageParents { op, pairs } => {
                    let Some(chase) = self.chases.get_mut(&op) else {
                        return;
                    };
                    if !chase.absorb(pairs) {
                        return;
                    }
                    match chase.advance() {
                        Some(frontier) => self.expand_round(ctx, op, frontier),
                        None => {
                            let chase = self.chases.remove(&op).expect("chase exists");
                            let ids = chase.finish();
                            ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
                        }
                    }
                }
                _ => {}
            },
        }
    }

    fn on_crash(&mut self) {
        // Volatile coordination state dies with the node; the index is
        // modeled as durable (it would be in the local PASS).
        self.gathers.clear();
        self.chases.clear();
    }
}

/// A federation with a pluggable replication strategy and query
/// timeouts. See the module docs and experiment E19.
pub struct Replicated {
    inner: ArchSim,
    sites: usize,
    strategy: ReplicationStrategy,
}

/// Default query deadline: generous against the clustered topology's WAN
/// diameter, small against the experiment's phase length.
pub const DEFAULT_TIMEOUT_MS: u64 = 2_000;

impl Replicated {
    /// Builds over `topology` with the given strategy and the default
    /// query timeout.
    pub fn new(topology: Topology, seed: u64, strategy: ReplicationStrategy) -> Self {
        Replicated::with_timeout(topology, seed, strategy, DEFAULT_TIMEOUT_MS)
    }

    /// Builds with an explicit query deadline in milliseconds.
    pub fn with_timeout(
        topology: Topology,
        seed: u64,
        strategy: ReplicationStrategy,
        timeout_ms: u64,
    ) -> Self {
        let sites = topology.len();
        let nodes: Vec<Box<dyn Node<ArchMsg>>> = (0..sites)
            .map(|i| {
                Box::new(ReplicatedSite {
                    me: i,
                    sites,
                    strategy,
                    timeout_us: timeout_ms * 1_000,
                    index: MetaIndex::new(),
                    gathers: HashMap::new(),
                    chases: HashMap::new(),
                    cached_queries: HashSet::new(),
                }) as Box<dyn Node<ArchMsg>>
            })
            .collect();
        Replicated { inner: ArchSim::new(topology, nodes, seed), sites, strategy }
    }

    /// The strategy in force.
    pub fn strategy(&self) -> ReplicationStrategy {
        self.strategy
    }

    /// Crashes `site` at the current simulated time (messages to it drop
    /// until recovery).
    pub fn crash_now(&mut self, site: usize) {
        let now = self.inner.now();
        self.inner.schedule_crash(now, site);
    }

    /// Recovers `site` at the current simulated time.
    pub fn recover_now(&mut self, site: usize) {
        let now = self.inner.now();
        self.inner.schedule_recover(now, site);
    }
}

impl Architecture for Replicated {
    fn name(&self) -> &'static str {
        match self.strategy {
            ReplicationStrategy::OriginOnly => "repl-origin-only",
            ReplicationStrategy::Eager { .. } => "repl-eager",
            ReplicationStrategy::OnRead => "repl-on-read",
        }
    }
    fn sites(&self) -> usize {
        self.sites
    }
    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64 {
        let record = record.clone();
        self.inner.issue(origin_site, |op| ArchMsg::ClientPublish { op, record })
    }
    fn query(&mut self, client_site: usize, query: &Query) -> u64 {
        let query = query.clone();
        self.inner.issue(client_site, |op| ArchMsg::ClientQuery { op, query })
    }
    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64 {
        self.inner.issue(client_site, |op| ArchMsg::ClientLineage { op, root, depth })
    }
    fn run_for(&mut self, duration: SimTime) {
        self.inner.run_for(duration);
    }
    fn run_quiet(&mut self) {
        self.inner.run_quiet();
    }
    fn outcomes(&mut self) -> Vec<Outcome> {
        self.inner.outcomes()
    }
    fn net(&self) -> NetMetrics {
        self.inner.net()
    }
    fn reset_net(&mut self) {
        self.inner.reset_net();
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Attributes, Digest128, ProvenanceBuilder, SiteId, Timestamp};
    use pass_query::parse;

    fn record(origin: u32, n: u64, region: &str) -> ProvenanceRecord {
        ProvenanceBuilder::new(SiteId(origin), Timestamp(n))
            .attrs(&Attributes::new().with("domain", "traffic").with("region", region))
            .build(Digest128::of(&n.to_be_bytes()))
    }

    fn topo(n: usize) -> Topology {
        Topology::uniform(n, 20.0)
    }

    fn publish_corpus(arch: &mut Replicated, n_per_site: u64) -> Vec<TupleSetId> {
        let sites = arch.sites();
        let mut ids = Vec::new();
        let mut n = 0;
        for site in 0..sites {
            for _ in 0..n_per_site {
                let r = record(site as u32, n, if site % 2 == 0 { "east" } else { "west" });
                ids.push(r.id);
                arch.publish(site, &r);
                n += 1;
            }
        }
        arch.run_quiet();
        ids
    }

    fn query_ids(arch: &mut Replicated, site: usize, text: &str) -> Vec<TupleSetId> {
        let q = parse(text).unwrap();
        let op = arch.query(site, &q);
        arch.run_for(SimTime::from_micros(DEFAULT_TIMEOUT_MS * 1_000 * 2));
        let mut ids =
            arch.outcomes().into_iter().find(|o| o.op == op).map(|o| o.ids).unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn all_strategies_answer_full_corpus_when_healthy() {
        for strategy in [
            ReplicationStrategy::OriginOnly,
            ReplicationStrategy::Eager { factor: 3 },
            ReplicationStrategy::OnRead,
        ] {
            let mut arch = Replicated::new(topo(4), 7, strategy);
            let mut ids = publish_corpus(&mut arch, 3);
            ids.sort_unstable();
            let mut got = query_ids(&mut arch, 0, r#"FIND WHERE domain = "traffic""#);
            got.sort_unstable();
            assert_eq!(got, ids, "strategy {strategy:?}");
        }
    }

    #[test]
    fn eager_full_factor_answers_locally() {
        let mut arch = Replicated::new(topo(4), 7, ReplicationStrategy::Eager { factor: 4 });
        publish_corpus(&mut arch, 2);
        arch.reset_net();
        let got = query_ids(&mut arch, 1, r#"FIND WHERE region = "east""#);
        assert_eq!(got.len(), 4);
        assert_eq!(arch.net().total().messages, 0, "full replication queries send nothing");
    }

    #[test]
    fn on_read_repeat_query_is_local_and_cached() {
        let mut arch = Replicated::new(topo(4), 7, ReplicationStrategy::OnRead);
        publish_corpus(&mut arch, 2);
        let first = query_ids(&mut arch, 0, r#"FIND WHERE region = "west""#);
        arch.reset_net();
        let repeat = query_ids(&mut arch, 0, r#"FIND WHERE region = "west""#);
        assert_eq!(first, repeat);
        assert_eq!(arch.net().total().messages, 0, "cached repeat sends nothing");
    }

    #[test]
    fn origin_only_loses_dead_sites_share_but_completes() {
        let mut arch = Replicated::new(topo(4), 7, ReplicationStrategy::OriginOnly);
        let ids = publish_corpus(&mut arch, 3);
        arch.crash_now(2);
        let got = query_ids(&mut arch, 0, r#"FIND WHERE domain = "traffic""#);
        assert_eq!(got.len(), ids.len() - 3, "dead site's 3 records missing");
    }

    #[test]
    fn eager_replicas_survive_a_crash() {
        let mut arch = Replicated::new(topo(4), 7, ReplicationStrategy::Eager { factor: 2 });
        let ids = publish_corpus(&mut arch, 3);
        arch.crash_now(2);
        let got = query_ids(&mut arch, 0, r#"FIND WHERE domain = "traffic""#);
        // Site 2's records are mirrored on site 3; nothing is lost.
        assert_eq!(got.len(), ids.len());
    }

    #[test]
    fn on_read_warm_cache_survives_crash_and_serves_peers() {
        let mut arch = Replicated::new(topo(4), 7, ReplicationStrategy::OnRead);
        publish_corpus(&mut arch, 3);
        let warm_before = query_ids(&mut arch, 0, r#"FIND WHERE region = "east""#);
        arch.crash_now(2); // an "east" site
        let warm_after = query_ids(&mut arch, 0, r#"FIND WHERE region = "east""#);
        assert_eq!(warm_before, warm_after, "cached answer unaffected by the crash");
        // A different consumer's scatter now finds the dead site's records
        // in site 0's read cache: consumer replicas serve the federation,
        // not just their own site.
        let peer = query_ids(&mut arch, 1, r#"FIND WHERE region = "east""#);
        assert_eq!(peer, warm_before, "peer recovers the dead site's share from the cache");
    }

    #[test]
    fn on_read_cold_cache_loses_dead_sites_share() {
        // Same crash, but nobody warmed a cache first: the dead site's
        // records are genuinely unreachable.
        let mut arch = Replicated::new(topo(4), 7, ReplicationStrategy::OnRead);
        publish_corpus(&mut arch, 3);
        arch.crash_now(2); // an "east" site (sites 0 and 2 are "east")
        let cold = query_ids(&mut arch, 1, r#"FIND WHERE region = "east""#);
        assert_eq!(cold.len(), 3, "only the live east site's records remain");
    }

    #[test]
    fn timeout_preserves_partial_results_without_poisoning_cache() {
        let mut arch = Replicated::new(topo(4), 7, ReplicationStrategy::OnRead);
        publish_corpus(&mut arch, 2);
        arch.crash_now(3);
        // First query times out at partial coverage …
        let partial = query_ids(&mut arch, 0, r#"FIND WHERE domain = "traffic""#);
        assert_eq!(partial.len(), 6);
        // … and must not be cached as complete: recovery + repeat reaches
        // the full corpus again.
        arch.recover_now(3);
        let healed = query_ids(&mut arch, 0, r#"FIND WHERE domain = "traffic""#);
        assert_eq!(healed.len(), 8);
    }
}
