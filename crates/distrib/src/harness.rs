//! Shared simulator plumbing for the ArchMsg-based architectures.

use crate::msg::ArchMsg;
use crate::outcome::Outcome;
use pass_net::{NetMetrics, Node, SimTime, Simulator, Topology};

/// Wraps a simulator with op-id allocation and outcome conversion.
pub(crate) struct ArchSim {
    pub sim: Simulator<ArchMsg>,
    next_op: u64,
}

impl ArchSim {
    pub fn new(topology: Topology, nodes: Vec<Box<dyn Node<ArchMsg>>>, seed: u64) -> Self {
        let mut sim = Simulator::new(topology, nodes, seed);
        // Process the t=0 Start events only; periodic behaviors (soft-state
        // refresh) re-arm forever, so a quiescence drain would never end.
        sim.run_until(SimTime::ZERO);
        ArchSim { sim, next_op: 1 }
    }

    /// Injects a client message built from a fresh op id.
    pub fn issue(&mut self, site: usize, build: impl FnOnce(u64) -> ArchMsg) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        self.sim.inject(site, build(op), 0);
        op
    }

    pub fn run_for(&mut self, duration: SimTime) {
        let deadline = SimTime::from_micros(self.sim.now().as_micros() + duration.as_micros());
        self.sim.run_until(deadline);
    }

    pub fn run_quiet(&mut self) {
        self.sim.run_to_quiescence(50_000_000);
    }

    pub fn outcomes(&mut self) -> Vec<Outcome> {
        self.sim
            .take_completions()
            .into_iter()
            .map(|c| {
                let (ok, ids) = match c.payload {
                    Some(ArchMsg::Done { ok, ids, .. }) => (ok, ids),
                    _ => (c.ok, Vec::new()),
                };
                Outcome { op: c.op, ok, at: c.at, ids }
            })
            .collect()
    }

    pub fn net(&self) -> NetMetrics {
        self.sim.metrics().clone()
    }

    pub fn reset_net(&mut self) {
        self.sim.reset_metrics();
    }

    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Schedules a node crash (messages to it drop until recovery).
    pub fn schedule_crash(&mut self, at: SimTime, node: usize) {
        self.sim.schedule_crash(at, node);
    }

    /// Schedules a crashed node's recovery.
    pub fn schedule_recover(&mut self, at: SimTime, node: usize) {
        self.sim.schedule_recover(at, node);
    }
}

/// Scatter-gather bookkeeping shared by several site behaviors.
#[derive(Debug, Default)]
pub(crate) struct Gather {
    pub expected: usize,
    pub acc: Vec<pass_model::TupleSetId>,
}

impl Gather {
    pub fn absorb(&mut self, ids: Vec<pass_model::TupleSetId>) -> bool {
        self.acc.extend(ids);
        self.expected -= 1;
        self.expected == 0
    }

    pub fn finish(mut self) -> Vec<pass_model::TupleSetId> {
        self.acc.sort_unstable();
        self.acc.dedup();
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::TupleSetId;

    fn id(n: u128) -> TupleSetId {
        TupleSetId(n)
    }

    #[test]
    fn gather_absorbs_until_expected_and_dedups() {
        let mut g = Gather { expected: 3, acc: Vec::new() };
        assert!(!g.absorb(vec![id(2), id(1)]));
        assert!(!g.absorb(vec![id(2)]));
        assert!(g.absorb(vec![id(3)]));
        assert_eq!(g.finish(), vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn chase_visits_each_node_once() {
        let mut c = Chase::new(id(10), None);
        c.outstanding = 1;
        // Root expands to two parents; one repeats later.
        assert!(c.absorb(vec![(id(10), vec![id(1), id(2)])]));
        let frontier = c.advance().expect("continues");
        assert_eq!(frontier, vec![id(1), id(2)]);
        c.outstanding = 1;
        assert!(c.absorb(vec![(id(1), vec![id(2), id(3)])]));
        let frontier = c.advance().expect("continues");
        assert_eq!(frontier, vec![id(3)], "id 2 already visited");
        c.outstanding = 1;
        assert!(c.absorb(vec![(id(3), vec![])]));
        assert!(c.advance().is_none(), "frontier empty");
        assert_eq!(c.finish(), vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn chase_depth_budget_stops_advancing() {
        let mut c = Chase::new(id(1), Some(1));
        c.outstanding = 1;
        assert!(c.absorb(vec![(id(1), vec![id(2)])]));
        // Depth 1: the single round already consumed the budget.
        assert!(c.advance().is_none());
        assert_eq!(c.finish(), vec![id(2)]);
    }

    #[test]
    fn chase_multi_reply_rounds() {
        let mut c = Chase::new(id(1), None);
        c.outstanding = 3;
        assert!(!c.absorb(vec![(id(1), vec![id(2)])]));
        assert!(!c.absorb(vec![]));
        assert!(c.absorb(vec![(id(1), vec![id(3)])]));
        assert_eq!(c.advance().unwrap(), vec![id(2), id(3)]);
    }
}

/// Coordinator state for a distributed ancestors chase.
#[derive(Debug)]
pub(crate) struct Chase {
    pub visited: std::collections::HashSet<pass_model::TupleSetId>,
    pub acc: Vec<pass_model::TupleSetId>,
    pub next_frontier: Vec<pass_model::TupleSetId>,
    pub depth_left: Option<u32>,
    pub outstanding: usize,
    pub rounds: u32,
}

impl Chase {
    pub fn new(root: pass_model::TupleSetId, depth: Option<u32>) -> Self {
        let mut visited = std::collections::HashSet::new();
        visited.insert(root);
        Chase {
            visited,
            acc: Vec::new(),
            next_frontier: Vec::new(),
            depth_left: depth,
            outstanding: 0,
            rounds: 0,
        }
    }

    /// Absorbs one expansion reply. Returns true when the round is done.
    pub fn absorb(
        &mut self,
        pairs: Vec<(pass_model::TupleSetId, Vec<pass_model::TupleSetId>)>,
    ) -> bool {
        for (_, parents) in pairs {
            for p in parents {
                if self.visited.insert(p) {
                    self.acc.push(p);
                    self.next_frontier.push(p);
                }
            }
        }
        self.outstanding -= 1;
        self.outstanding == 0
    }

    /// Takes the next frontier if the chase should continue.
    pub fn advance(&mut self) -> Option<Vec<pass_model::TupleSetId>> {
        if self.next_frontier.is_empty() {
            return None;
        }
        if let Some(d) = &mut self.depth_left {
            if *d <= 1 {
                return None;
            }
            *d -= 1;
        }
        self.rounds += 1;
        Some(std::mem::take(&mut self.next_frontier))
    }

    pub fn finish(mut self) -> Vec<pass_model::TupleSetId> {
        self.acc.sort_unstable();
        self.acc.dedup();
        self.acc
    }
}
