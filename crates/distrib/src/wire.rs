//! The real wire codec for the served [`ArchMsg`](crate::ArchMsg) shapes.
//!
//! The simulator exchanges `ArchMsg` values by reference and only
//! *charges* byte counts (`msg::record_bytes` and friends); nothing ever
//! crosses a socket. `pass-server` changes that: the subset of the
//! architecture vocabulary a real client speaks — publish batches, paged
//! keyset queries, standing subscriptions with server push — gets a
//! canonical binary encoding here, built on the same `pass-model` codec
//! that storage and identity already use.
//!
//! Two deliberate differences from the sim shapes:
//!
//! * **Publishes carry [`TupleSet`]s, not `ProvenanceRecord`s.** A sim
//!   client has already ingested locally and ships the finished record;
//!   a real client ships the captured readings + provenance and the
//!   server's `Pass::ingest_batch` assigns the content-addressed ids
//!   (returned in [`WireMsg::PublishOk`]).
//! * **Queries travel as text.** The structured `Query` tree has no
//!   canonical encoding (it never hits storage); the query *language*
//!   is the canonical form, parsed server-side. Parse errors come back
//!   as [`WireMsg::Error`], exactly like a local `query_text` call.
//!
//! Framing (length prefix, CRC, protocol version) is deliberately *not*
//! here: it lives in `pass-server::frame`, so the message vocabulary
//! stays transport-independent. Every message body decodes with the
//! bounds-checked [`Reader`]; corrupt bodies surface as `ModelError`s,
//! never panics — the same discipline as the storage decoders.

use pass_model::codec::{self, Decode, Encode, Reader};
use pass_model::{ModelError, TupleSet, TupleSetId};

/// Protocol version carried in every frame header. Bumped when the
/// vocabulary below changes incompatibly; a server refuses frames whose
/// version it does not speak.
pub const PROTO_VERSION: u8 = 1;

/// One message of the client/server protocol.
///
/// Kinds `0x01..=0x04` are requests (client → server); kinds with the
/// high bit set are responses or server pushes. Every request carries a
/// client-chosen `op` echoed by its replies, so responses and pushes can
/// interleave freely on one connection.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Publish a batch of captured tuple sets; routed into the server's
    /// `Pass::ingest_batch` (one group commit, all-or-nothing).
    Publish {
        /// Client-chosen operation id, echoed by the reply.
        op: u64,
        /// The captured sets (readings + provenance, ids assigned
        /// server-side by content digest).
        sets: Vec<TupleSet>,
    },
    /// One page of a query: the wire twin of `ArchMsg::SubQueryPage`
    /// (keyset pagination — `LIMIT n AFTER ts:x`).
    QueryPage {
        /// Client-chosen operation id, echoed by the reply.
        op: u64,
        /// The query, in the textual query language (`FIND WHERE …`).
        query: String,
        /// Keyset token: resume strictly after this id (None = first page).
        after: Option<TupleSetId>,
        /// Maximum ids in the reply page.
        limit: u64,
    },
    /// Open a standing subscription: the wire twin of
    /// `ArchMsg::ClientSubscribe`, mapped onto `Pass::subscribe` with
    /// matches pushed as [`WireMsg::Notify`] frames.
    Subscribe {
        /// Client-chosen operation id; every push for this subscription
        /// carries it.
        op: u64,
        /// The statement, in the textual grammar (`SUBSCRIBE FIND …` or
        /// `WATCH DESCENDANTS OF ts:…`).
        statement: String,
    },
    /// Ask for the server's counter snapshot.
    Stats {
        /// Client-chosen operation id, echoed by the reply.
        op: u64,
    },

    /// Publish succeeded: the content-addressed ids, in batch order.
    PublishOk {
        /// The acked op.
        op: u64,
        /// Assigned tuple-set ids, in batch order.
        ids: Vec<TupleSetId>,
    },
    /// One result page: the wire twin of `ArchMsg::SubResultPage`.
    ResultPage {
        /// The acked op.
        op: u64,
        /// Up to `limit` matching ids in the server's stable result
        /// order; the last one is the next page's `after` token.
        ids: Vec<TupleSetId>,
        /// True when no further matches exist after this page.
        done: bool,
    },
    /// Server push: freshly committed records matching a subscription —
    /// the wire twin of `ArchMsg::Notify`.
    Notify {
        /// The subscription op.
        op: u64,
        /// Matching ids from committed batches, in commit order.
        ids: Vec<TupleSetId>,
    },
    /// Subscription catch-up complete: everything visible at subscribe
    /// time has been notified; subsequent pushes come from live commits.
    SubCaughtUp {
        /// The subscription op.
        op: u64,
        /// The commit version the catch-up phase reflects.
        version: u64,
    },
    /// The connection's push queue overflowed: `missed` committed
    /// records were shed rather than blocking ingest. The subscription
    /// stream is no longer gap-free; re-subscribe to re-synchronize.
    Lagged {
        /// The subscription op.
        op: u64,
        /// Committed records discarded unexamined.
        missed: u64,
    },
    /// Terminal frame for one subscription: no further pushes for this
    /// op will arrive (server drain, or subscription teardown).
    SubClosed {
        /// The subscription op.
        op: u64,
    },
    /// Admission control rejected the request: the server is at its
    /// queue-depth or in-flight-bytes threshold and sheds new work
    /// explicitly instead of queueing toward collapse. Retry later.
    Overloaded {
        /// The rejected op.
        op: u64,
    },
    /// The request failed (parse error, bad batch, …).
    Error {
        /// The failed op.
        op: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Terminal frame for the whole connection: the server is draining
    /// and will send nothing further. `op` is always 0.
    Goodbye {
        /// Always 0 (the frame is connection-scoped, not op-scoped).
        op: u64,
    },
    /// The server's counter snapshot.
    StatsReply {
        /// The acked op.
        op: u64,
        /// The counters.
        stats: StatsBody,
    },
}

/// Server counter snapshot, as carried by [`WireMsg::StatsReply`].
///
/// Monotonic since server start (except `conns_active`). The load
/// generator cross-checks its observed `Overloaded` replies against
/// `publishes_rejected` and its `Lagged` frames against `queue_shed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsBody {
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections refused at accept time (connection cap or drain).
    pub conns_rejected: u64,
    /// Connections currently open.
    pub conns_active: u64,
    /// Publish batches committed.
    pub publishes_ok: u64,
    /// Publish batches shed by admission control.
    pub publishes_rejected: u64,
    /// Records committed (sum of accepted batch sizes).
    pub records_ingested: u64,
    /// Query pages served.
    pub queries: u64,
    /// Subscriptions opened.
    pub subscriptions: u64,
    /// Push frames shed because a connection's send queue was full.
    pub queue_shed: u64,
    /// Payload bytes received (decoded frame bodies).
    pub bytes_in: u64,
    /// Payload bytes sent (encoded frame bodies).
    pub bytes_out: u64,
}

impl Encode for StatsBody {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        for v in [
            self.conns_accepted,
            self.conns_rejected,
            self.conns_active,
            self.publishes_ok,
            self.publishes_rejected,
            self.records_ingested,
            self.queries,
            self.subscriptions,
            self.queue_shed,
            self.bytes_in,
            self.bytes_out,
        ] {
            codec::put_varint(buf, v);
        }
    }
}

impl Decode for StatsBody {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ModelError> {
        Ok(StatsBody {
            conns_accepted: r.take_varint("stats conns_accepted")?,
            conns_rejected: r.take_varint("stats conns_rejected")?,
            conns_active: r.take_varint("stats conns_active")?,
            publishes_ok: r.take_varint("stats publishes_ok")?,
            publishes_rejected: r.take_varint("stats publishes_rejected")?,
            records_ingested: r.take_varint("stats records_ingested")?,
            queries: r.take_varint("stats queries")?,
            subscriptions: r.take_varint("stats subscriptions")?,
            queue_shed: r.take_varint("stats queue_shed")?,
            bytes_in: r.take_varint("stats bytes_in")?,
            bytes_out: r.take_varint("stats bytes_out")?,
        })
    }
}

impl WireMsg {
    /// The message-kind tag carried in the frame header. Requests are
    /// `0x01..=0x04`; responses and pushes set the high bit.
    pub fn kind(&self) -> u8 {
        match self {
            WireMsg::Publish { .. } => 0x01,
            WireMsg::QueryPage { .. } => 0x02,
            WireMsg::Subscribe { .. } => 0x03,
            WireMsg::Stats { .. } => 0x04,
            WireMsg::PublishOk { .. } => 0x81,
            WireMsg::ResultPage { .. } => 0x82,
            WireMsg::Notify { .. } => 0x83,
            WireMsg::SubCaughtUp { .. } => 0x84,
            WireMsg::Lagged { .. } => 0x85,
            WireMsg::SubClosed { .. } => 0x86,
            WireMsg::Overloaded { .. } => 0x87,
            WireMsg::Error { .. } => 0x88,
            WireMsg::Goodbye { .. } => 0x89,
            WireMsg::StatsReply { .. } => 0x8a,
        }
    }

    /// True for request kinds (client → server).
    pub fn is_request(&self) -> bool {
        self.kind() & 0x80 == 0
    }

    /// The operation id this message belongs to.
    pub fn op(&self) -> u64 {
        match self {
            WireMsg::Publish { op, .. }
            | WireMsg::QueryPage { op, .. }
            | WireMsg::Subscribe { op, .. }
            | WireMsg::Stats { op }
            | WireMsg::PublishOk { op, .. }
            | WireMsg::ResultPage { op, .. }
            | WireMsg::Notify { op, .. }
            | WireMsg::SubCaughtUp { op, .. }
            | WireMsg::Lagged { op, .. }
            | WireMsg::SubClosed { op }
            | WireMsg::Overloaded { op }
            | WireMsg::Error { op, .. }
            | WireMsg::Goodbye { op }
            | WireMsg::StatsReply { op, .. } => *op,
        }
    }

    /// Encodes the message *body* (everything except the kind tag, which
    /// the frame header carries).
    pub fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            WireMsg::Publish { op, sets } => {
                codec::put_varint(buf, *op);
                sets.encode_into(buf);
            }
            WireMsg::QueryPage { op, query, after, limit } => {
                codec::put_varint(buf, *op);
                codec::put_str(buf, query);
                after.encode_into(buf);
                codec::put_varint(buf, *limit);
            }
            WireMsg::Subscribe { op, statement } => {
                codec::put_varint(buf, *op);
                codec::put_str(buf, statement);
            }
            WireMsg::Stats { op }
            | WireMsg::SubClosed { op }
            | WireMsg::Overloaded { op }
            | WireMsg::Goodbye { op } => codec::put_varint(buf, *op),
            WireMsg::PublishOk { op, ids } | WireMsg::Notify { op, ids } => {
                codec::put_varint(buf, *op);
                ids.encode_into(buf);
            }
            WireMsg::ResultPage { op, ids, done } => {
                codec::put_varint(buf, *op);
                ids.encode_into(buf);
                done.encode_into(buf);
            }
            WireMsg::SubCaughtUp { op, version } => {
                codec::put_varint(buf, *op);
                codec::put_varint(buf, *version);
            }
            WireMsg::Lagged { op, missed } => {
                codec::put_varint(buf, *op);
                codec::put_varint(buf, *missed);
            }
            WireMsg::Error { op, message } => {
                codec::put_varint(buf, *op);
                codec::put_str(buf, message);
            }
            WireMsg::StatsReply { op, stats } => {
                codec::put_varint(buf, *op);
                stats.encode_into(buf);
            }
        }
    }

    /// Decodes one message body of the given kind. The reader must be
    /// positioned at the body start and is required to be fully consumed
    /// (trailing bytes are a protocol error, as in `Decode::decode_all`).
    pub fn decode_body(kind: u8, body: &[u8]) -> Result<WireMsg, ModelError> {
        let mut r = Reader::new(body);
        let msg = Self::decode_body_from(kind, &mut r)?;
        if !r.is_empty() {
            return Err(ModelError::Invalid(format!(
                "{} trailing bytes after wire message body",
                r.remaining()
            )));
        }
        Ok(msg)
    }

    fn decode_body_from(kind: u8, r: &mut Reader<'_>) -> Result<WireMsg, ModelError> {
        let op = r.take_varint("wire op")?;
        Ok(match kind {
            0x01 => WireMsg::Publish { op, sets: Vec::<TupleSet>::decode_from(r)? },
            0x02 => WireMsg::QueryPage {
                op,
                query: codec::take_string(r, "wire query")?,
                after: Option::<TupleSetId>::decode_from(r)?,
                limit: r.take_varint("wire limit")?,
            },
            0x03 => WireMsg::Subscribe { op, statement: codec::take_string(r, "wire statement")? },
            0x04 => WireMsg::Stats { op },
            0x81 => WireMsg::PublishOk { op, ids: Vec::<TupleSetId>::decode_from(r)? },
            0x82 => WireMsg::ResultPage {
                op,
                ids: Vec::<TupleSetId>::decode_from(r)?,
                done: bool::decode_from(r)?,
            },
            0x83 => WireMsg::Notify { op, ids: Vec::<TupleSetId>::decode_from(r)? },
            0x84 => WireMsg::SubCaughtUp { op, version: r.take_varint("wire version")? },
            0x85 => WireMsg::Lagged { op, missed: r.take_varint("wire missed")? },
            0x86 => WireMsg::SubClosed { op },
            0x87 => WireMsg::Overloaded { op },
            0x88 => WireMsg::Error { op, message: codec::take_string(r, "wire message")? },
            0x89 => WireMsg::Goodbye { op },
            0x8a => WireMsg::StatsReply { op, stats: StatsBody::decode_from(r)? },
            tag => return Err(ModelError::InvalidTag { decoding: "wire message kind", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{ProvenanceBuilder, Reading, SensorId, SiteId, Timestamp};

    fn sample_set(i: u64) -> TupleSet {
        let readings =
            vec![Reading::new(SensorId(3), Timestamp(100 + i)).with("speed", 40.0 + i as f64)];
        let record = ProvenanceBuilder::new(SiteId(1), Timestamp(100 + i))
            .attr("domain", "traffic")
            .attr("seq", i as i64)
            .build(TupleSet::content_digest_of(&readings));
        TupleSet::new(record, readings).expect("valid sample set")
    }

    fn round_trip(msg: &WireMsg) {
        let mut body = Vec::new();
        msg.encode_body(&mut body);
        let back = WireMsg::decode_body(msg.kind(), &body).expect("decode");
        assert_eq!(&back, msg);
    }

    #[test]
    fn all_kinds_round_trip() {
        let msgs = vec![
            WireMsg::Publish { op: 7, sets: vec![sample_set(0), sample_set(1)] },
            WireMsg::QueryPage {
                op: 8,
                query: "FIND WHERE domain = \"traffic\" ORDER BY CREATED".into(),
                after: Some(TupleSetId(42)),
                limit: 32,
            },
            WireMsg::QueryPage { op: 9, query: "FIND".into(), after: None, limit: 0 },
            WireMsg::Subscribe { op: 10, statement: "SUBSCRIBE FIND WHERE a = 1".into() },
            WireMsg::Stats { op: 11 },
            WireMsg::PublishOk { op: 7, ids: vec![TupleSetId(1), TupleSetId(2)] },
            WireMsg::ResultPage { op: 8, ids: vec![TupleSetId(3)], done: true },
            WireMsg::Notify { op: 10, ids: vec![TupleSetId(4), TupleSetId(5)] },
            WireMsg::SubCaughtUp { op: 10, version: 99 },
            WireMsg::Lagged { op: 10, missed: 1000 },
            WireMsg::SubClosed { op: 10 },
            WireMsg::Overloaded { op: 7 },
            WireMsg::Error { op: 8, message: "parse error at 1:5".into() },
            WireMsg::Goodbye { op: 0 },
            WireMsg::StatsReply {
                op: 11,
                stats: StatsBody {
                    conns_accepted: 1,
                    conns_rejected: 2,
                    conns_active: 3,
                    publishes_ok: 4,
                    publishes_rejected: 5,
                    records_ingested: 6,
                    queries: 7,
                    subscriptions: 8,
                    queue_shed: 9,
                    bytes_in: 10,
                    bytes_out: 11,
                },
            },
        ];
        for msg in &msgs {
            round_trip(msg);
        }
        // Kinds are unique per variant (the list carries two QueryPage
        // samples, hence the -1).
        let mut kinds: Vec<u8> = msgs.iter().map(WireMsg::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len() - 1, "duplicate wire kind");
    }

    #[test]
    fn unknown_kind_is_an_error_not_a_panic() {
        let err = WireMsg::decode_body(0x7f, &[0]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidTag { .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Vec::new();
        WireMsg::Stats { op: 3 }.encode_body(&mut body);
        body.push(0xee);
        assert!(WireMsg::decode_body(0x04, &body).is_err());
    }

    #[test]
    fn truncated_publish_is_an_error() {
        let mut body = Vec::new();
        WireMsg::Publish { op: 1, sets: vec![sample_set(0)] }.encode_body(&mut body);
        for cut in [1, body.len() / 2, body.len() - 1] {
            assert!(
                WireMsg::decode_body(0x01, &body[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn requests_and_responses_partition_on_high_bit() {
        assert!(WireMsg::Publish { op: 1, sets: vec![] }.is_request());
        assert!(!WireMsg::Overloaded { op: 1 }.is_request());
    }
}
