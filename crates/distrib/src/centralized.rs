//! §IV-A: the centralized data warehouse.
//!
//! "Provenance metadata is sent to some central data warehouse, where it
//! is examined and indexed; query processing is then done within the
//! warehouse." Site 0 is the warehouse; every other site forwards
//! published records to it and proxies queries to it. Simple, fast on
//! queries, complete on recursive queries — and a single service-time
//! bottleneck under update load (E6).
//!
//! Remote queries are *paged*: a client site asks the warehouse for
//! bounded `SubQueryPage`s (keyset pagination, `QUERY_PAGE` ids at a
//! time, less when the query's own `LIMIT` wants fewer) instead of one
//! full ID set, so bounded queries ship bytes proportional to what the
//! client consumes (E21).

use crate::arch::Architecture;
use crate::harness::ArchSim;
use crate::meta::MetaIndex;
use crate::msg::{self, ArchMsg, QUERY_PAGE};
use crate::outcome::Outcome;
use pass_model::{ProvenanceRecord, TupleSetId};
use pass_net::{Ctx, Input, NetMetrics, Node, NodeId, SimTime, Topology, TrafficClass};
use pass_query::Query;
use std::collections::HashMap;

/// The warehouse's node id.
pub const WAREHOUSE: NodeId = 0;

/// Client-side state of one paged remote query.
struct PageFetch {
    query: Query,
    /// Overall result budget (the query's own LIMIT), if any.
    want: Option<usize>,
    acc: Vec<TupleSetId>,
    /// Keyset token: last id of the previous page.
    last: Option<TupleSetId>,
}

impl PageFetch {
    /// Ids still wanted; `None` when unbounded.
    fn next_page_size(&self) -> usize {
        match self.want {
            Some(want) => QUERY_PAGE.min(want.saturating_sub(self.acc.len())),
            None => QUERY_PAGE,
        }
    }
}

struct CentralSite {
    me: NodeId,
    index: MetaIndex,
    fetches: HashMap<u64, PageFetch>,
    /// Standing subscriptions (warehouse only): `(op, query, subscriber)`.
    subs: Vec<(u64, Query, NodeId)>,
}

impl CentralSite {
    fn run_query(&self, query: &Query) -> (bool, Vec<TupleSetId>) {
        match self.index.query(query) {
            Ok(result) => (true, result.ids()),
            Err(_) => (false, Vec::new()),
        }
    }

    /// Requests the next page of an in-flight fetch from the warehouse.
    fn request_page(&mut self, ctx: &mut Ctx<'_, ArchMsg>, op: u64) {
        let fetch = self.fetches.get(&op).expect("fetch exists");
        let limit = fetch.next_page_size();
        if limit == 0 {
            // Budget exhausted (e.g. LIMIT 0): complete immediately.
            let fetch = self.fetches.remove(&op).expect("fetch exists");
            ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: fetch.acc });
            return;
        }
        let bytes = msg::page_request_bytes(&fetch.query);
        ctx.send(
            WAREHOUSE,
            ArchMsg::SubQueryPage {
                op,
                query: fetch.query.clone(),
                after: fetch.last,
                limit,
                reply_to: self.me,
            },
            bytes,
            TrafficClass::Query,
        );
    }

    /// Starts a paged remote fetch for a query issued at this site.
    fn start_fetch(&mut self, ctx: &mut Ctx<'_, ArchMsg>, op: u64, query: Query) {
        let fetch = PageFetch { want: query.limit, last: query.after, acc: Vec::new(), query };
        self.fetches.insert(op, fetch);
        self.request_page(ctx, op);
    }

    /// Pushes notifications for freshly indexed records matching any
    /// standing subscription (warehouse side). Silent when nothing
    /// matches — the steady-state saving push has over poll loops.
    fn notify_subscribers(&mut self, ctx: &mut Ctx<'_, ArchMsg>, records: &[ProvenanceRecord]) {
        if self.subs.is_empty() {
            return;
        }
        for (op, query, notify_to) in &self.subs {
            let ids: Vec<TupleSetId> =
                records.iter().filter(|r| query.filter.matches(r)).map(|r| r.id).collect();
            if ids.is_empty() {
                continue;
            }
            if *notify_to == self.me {
                ctx.complete_with(*op, true, ArchMsg::Done { op: *op, ok: true, ids });
            } else {
                let bytes = msg::notify_bytes(&ids);
                ctx.send(
                    *notify_to,
                    ArchMsg::Notify { op: *op, ids },
                    bytes,
                    TrafficClass::Maintenance,
                );
            }
        }
    }
}

impl Node<ArchMsg> for CentralSite {
    fn on_input(&mut self, ctx: &mut Ctx<'_, ArchMsg>, input: Input<ArchMsg>) {
        let Input::Message { from: _, msg } = input else {
            return;
        };
        match msg {
            ArchMsg::ClientPublish { op, record } => {
                self.index.insert(&record); // local copy stays at the origin
                if self.me == WAREHOUSE {
                    self.notify_subscribers(ctx, std::slice::from_ref(&record));
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
                } else {
                    let bytes = msg::record_bytes(&record);
                    ctx.send(
                        WAREHOUSE,
                        ArchMsg::StoreRecord { op, record, ack_to: self.me },
                        bytes,
                        TrafficClass::Update,
                    );
                }
            }
            ArchMsg::ClientPublishBatch { op, records } => {
                for record in &records {
                    self.index.insert(record); // local copies stay at the origin
                }
                if self.me == WAREHOUSE {
                    self.notify_subscribers(ctx, &records);
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
                } else {
                    // One wire transfer and one ack for the whole batch —
                    // the cross-site analogue of the single WriteBatch.
                    let bytes = msg::records_bytes(&records);
                    ctx.send(
                        WAREHOUSE,
                        ArchMsg::StoreBatch { op, records, ack_to: self.me },
                        bytes,
                        TrafficClass::Update,
                    );
                }
            }
            ArchMsg::StoreRecord { op, record, ack_to } => {
                self.index.insert(&record);
                self.notify_subscribers(ctx, std::slice::from_ref(&record));
                ctx.send(ack_to, ArchMsg::StoreAck { op }, 24, TrafficClass::Update);
            }
            ArchMsg::StoreBatch { op, records, ack_to } => {
                for record in &records {
                    self.index.insert(record);
                }
                self.notify_subscribers(ctx, &records);
                ctx.send(ack_to, ArchMsg::StoreAck { op }, 24, TrafficClass::Update);
            }
            ArchMsg::StoreAck { op } => {
                ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: vec![] });
            }
            ArchMsg::ClientQuery { op, query } => {
                if self.me == WAREHOUSE {
                    let (ok, ids) = self.run_query(&query);
                    ctx.complete_with(op, ok, ArchMsg::Done { op, ok, ids });
                } else {
                    self.start_fetch(ctx, op, query);
                }
            }
            ArchMsg::ClientSubscribe { op, query } => {
                if self.me == WAREHOUSE {
                    self.subs.push((op, query, self.me));
                } else {
                    let bytes = msg::subscribe_bytes(&query);
                    ctx.send(
                        WAREHOUSE,
                        ArchMsg::SubscribeReq { op, query, notify_to: self.me },
                        bytes,
                        TrafficClass::Maintenance,
                    );
                }
            }
            ArchMsg::SubscribeReq { op, query, notify_to } => {
                self.subs.push((op, query, notify_to));
            }
            ArchMsg::Notify { op, ids } => {
                ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
            }
            ArchMsg::ClientLineage { op, root, depth } => {
                let mut query = Query::lineage(root, pass_index::Direction::Ancestors);
                if let Some(d) = depth {
                    query = query.with_depth(d);
                }
                if self.me == WAREHOUSE {
                    let (ok, ids) = self.run_query(&query);
                    ctx.complete_with(op, ok, ArchMsg::Done { op, ok, ids });
                } else {
                    self.start_fetch(ctx, op, query);
                }
            }
            ArchMsg::SubQueryPage { op, query, after, limit, reply_to } => {
                // One bounded cursor drain; `< limit` ids means the
                // result order is exhausted. The warehouse is the
                // authoritative index, so a query error (unknown AFTER
                // token or lineage root) fails the page — exactly what
                // a warehouse-local execution reports.
                let (ok, ids) = match self.index.query_page(&query, after, limit) {
                    Ok(ids) => (true, ids),
                    Err(_) => (false, Vec::new()),
                };
                let done = !ok || ids.len() < limit;
                let bytes = msg::page_reply_bytes(&ids);
                ctx.send(
                    reply_to,
                    ArchMsg::SubResultPage { op, ok, ids, done },
                    bytes,
                    TrafficClass::Query,
                );
            }
            ArchMsg::SubResultPage { op, ok, ids, done } => {
                let Some(fetch) = self.fetches.get_mut(&op) else {
                    return;
                };
                if !ok {
                    self.fetches.remove(&op);
                    ctx.complete_with(op, false, ArchMsg::Done { op, ok: false, ids: vec![] });
                    return;
                }
                fetch.last = ids.last().copied().or(fetch.last);
                fetch.acc.extend(ids);
                let satisfied = fetch.want.is_some_and(|want| fetch.acc.len() >= want);
                if done || satisfied {
                    let fetch = self.fetches.remove(&op).expect("fetch exists");
                    ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids: fetch.acc });
                } else {
                    self.request_page(ctx, op);
                }
            }
            // Full-result subqueries are still served (other sites may
            // speak the unpaged protocol).
            ArchMsg::SubQuery { op, query, reply_to } => {
                let (_ok, ids) = self.run_query(&query);
                let bytes = msg::ids_bytes(&ids);
                ctx.send(reply_to, ArchMsg::SubResult { op, ids }, bytes, TrafficClass::Query);
            }
            ArchMsg::SubResult { op, ids } => {
                ctx.complete_with(op, true, ArchMsg::Done { op, ok: true, ids });
            }
            _ => {}
        }
    }
}

/// The centralized-warehouse architecture.
pub struct Centralized {
    inner: ArchSim,
    sites: usize,
}

impl Centralized {
    /// Builds with `sites` nodes on `topology` (node 0 = warehouse).
    pub fn new(topology: Topology, seed: u64) -> Self {
        let sites = topology.len();
        let nodes: Vec<Box<dyn Node<ArchMsg>>> = (0..sites)
            .map(|i| {
                Box::new(CentralSite {
                    me: i,
                    index: MetaIndex::new(),
                    fetches: HashMap::new(),
                    subs: Vec::new(),
                }) as Box<dyn Node<ArchMsg>>
            })
            .collect();
        Centralized { inner: ArchSim::new(topology, nodes, seed), sites }
    }
}

impl Architecture for Centralized {
    fn name(&self) -> &'static str {
        "centralized"
    }
    fn sites(&self) -> usize {
        self.sites
    }
    fn publish(&mut self, origin_site: usize, record: &ProvenanceRecord) -> u64 {
        let record = record.clone();
        self.inner.issue(origin_site, |op| ArchMsg::ClientPublish { op, record })
    }
    fn publish_batch(&mut self, origin_site: usize, records: &[ProvenanceRecord]) -> Vec<u64> {
        if records.len() <= 1 {
            return records.iter().map(|r| self.publish(origin_site, r)).collect();
        }
        let records = records.to_vec();
        let op = self.inner.issue(origin_site, |op| ArchMsg::ClientPublishBatch { op, records });
        vec![op]
    }
    fn query(&mut self, client_site: usize, query: &Query) -> u64 {
        let query = query.clone();
        self.inner.issue(client_site, |op| ArchMsg::ClientQuery { op, query })
    }
    fn subscribe(&mut self, client_site: usize, query: &Query) -> Option<u64> {
        let query = query.clone();
        Some(self.inner.issue(client_site, |op| ArchMsg::ClientSubscribe { op, query }))
    }
    fn lineage(&mut self, client_site: usize, root: TupleSetId, depth: Option<u32>) -> u64 {
        self.inner.issue(client_site, |op| ArchMsg::ClientLineage { op, root, depth })
    }
    fn run_for(&mut self, duration: SimTime) {
        self.inner.run_for(duration);
    }
    fn run_quiet(&mut self) {
        self.inner.run_quiet();
    }
    fn outcomes(&mut self) -> Vec<Outcome> {
        self.inner.outcomes()
    }
    fn net(&self) -> NetMetrics {
        self.inner.net()
    }
    fn reset_net(&mut self) {
        self.inner.reset_net();
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}
