//! Cross-architecture integration tests: the same workload must produce
//! correct (or explicably degraded) results on every §IV model.

use pass_distrib::runner::{
    build_arch, build_corpus, comparison_queries, run_workload, ArchKind, WorkloadSpec,
};
use pass_distrib::{Architecture, Centralized, DistributedDb, Federated, Hierarchical, SoftState};
use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp, ToolDescriptor};
use pass_net::{SimTime, Topology};
use pass_query::parse;

fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        clusters: 2,
        per_cluster: 2,
        windows_per_site: 2,
        lineage_depth: 2,
        queries: 6,
        lineage_ops: 3,
        ..WorkloadSpec::default()
    }
}

#[test]
fn corpus_is_deterministic_and_has_lineage() {
    let spec = small_spec();
    let a = build_corpus(&spec);
    let b = build_corpus(&spec);
    assert_eq!(a.records.len(), b.records.len());
    assert!(a.records.iter().zip(&b.records).all(|(x, y)| x.1.id == y.1.id));
    assert_eq!(a.leaves.len(), spec.sites());
    assert!(a.truth.len() > spec.sites() * spec.windows_per_site);
}

#[test]
fn strongly_consistent_architectures_answer_exactly() {
    let spec = small_spec();
    let corpus = build_corpus(&spec);
    for kind in [
        ArchKind::Centralized,
        ArchKind::DistributedDb { batch: true },
        ArchKind::Federated,
        ArchKind::Hierarchical,
    ] {
        let mut arch = build_arch(kind, spec.topology(), spec.seed);
        let report = run_workload(arch.as_mut(), &corpus, &spec);
        assert_eq!(report.failures, 0, "{}: {report:?}", report.name);
        assert!(
            (report.quality.precision - 1.0).abs() < 1e-9,
            "{} precision {}",
            report.name,
            report.quality.precision
        );
        assert!(
            (report.quality.recall - 1.0).abs() < 1e-9,
            "{} recall {}",
            report.name,
            report.quality.recall
        );
        assert!(
            (report.lineage_recall - 1.0).abs() < 1e-9,
            "{} lineage recall {}",
            report.name,
            report.lineage_recall
        );
        assert!(report.query.count > 0 && report.publish.count > 0);
    }
}

#[test]
fn soft_state_trades_freshness_for_recall() {
    let spec = small_spec();
    let corpus = build_corpus(&spec);
    // With a very long refresh period, queries issued right after the
    // publish phase see stale soft state: recall suffers.
    let mut stale = SoftState::new(spec.topology(), SimTime::from_secs(3_600), spec.seed);
    let stale_report = run_workload(&mut stale, &corpus, &spec);
    assert!(
        stale_report.quality.recall < 0.6,
        "hour-long refresh should miss most fresh records, got recall {}",
        stale_report.quality.recall
    );
    // Precision never suffers: soft state returns only real records.
    assert!((stale_report.quality.precision - 1.0).abs() < 1e-9);

    // With a fast refresh the catalogs converge and recall recovers.
    let mut fresh = SoftState::new(spec.topology(), SimTime::from_millis(50), spec.seed);
    let fresh_report = run_workload(&mut fresh, &corpus, &spec);
    assert!(
        fresh_report.quality.recall > 0.95,
        "50 ms refresh should be nearly converged, got {}",
        fresh_report.quality.recall
    );
}

#[test]
fn dht_handles_eq_queries_and_fails_unsupported_ones() {
    let spec = small_spec();
    let corpus = build_corpus(&spec);
    let mut arch = build_arch(ArchKind::Dht { replicas: 2 }, spec.topology(), spec.seed);
    let report = run_workload(arch.as_mut(), &corpus, &spec);
    // Equality queries work and are precise.
    assert!(report.quality.recall > 0.95, "dht recall {}", report.quality.recall);
    assert!(report.quality.precision > 0.95, "dht precision {}", report.quality.precision);
    // Lineage chases resolve hop by hop.
    assert!(report.lineage_recall > 0.95, "dht lineage recall {}", report.lineage_recall);

    // A range query is unanswerable by a name-to-value DHT.
    let mut arch = build_arch(ArchKind::Dht { replicas: 1 }, spec.topology(), spec.seed);
    let op = arch.query(0, &parse("FIND WHERE created_at >= @0").unwrap());
    arch.run_quiet();
    let outcomes = arch.outcomes();
    let failed = outcomes.iter().find(|o| o.op == op).expect("outcome exists");
    assert!(!failed.ok, "range predicates must fail on the DHT");
}

#[test]
fn centralized_and_distdb_agree_on_query_results() {
    let spec = small_spec();
    let corpus = build_corpus(&spec);
    let queries = comparison_queries(&corpus, &spec);

    let mut central = Centralized::new(spec.topology(), spec.seed);
    let mut distdb = DistributedDb::new(spec.topology(), true, spec.seed);
    for (site, record) in &corpus.records {
        central.publish(*site, record);
        distdb.publish(*site, record);
    }
    central.run_quiet();
    distdb.run_quiet();
    central.outcomes();
    distdb.outcomes();

    for query in &queries {
        let op_c = central.query(0, query);
        let op_d = distdb.query(0, query);
        central.run_quiet();
        distdb.run_quiet();
        let c = central.outcomes().into_iter().find(|o| o.op == op_c).unwrap();
        let d = distdb.outcomes().into_iter().find(|o| o.op == op_d).unwrap();
        let mut c_ids = c.ids.clone();
        let mut d_ids = d.ids.clone();
        c_ids.sort();
        d_ids.sort();
        assert_eq!(c_ids, d_ids, "results diverge on {query:?}");
    }
}

#[test]
fn hierarchy_prefix_queries_touch_one_site() {
    // E13 in miniature: a (domain, region) query routes to one owner; a
    // sensor-type query broadcasts.
    let topology = Topology::clustered(2, 4, 2.0, 40.0);
    let mut arch = Hierarchical::new(topology, 7);
    let record = ProvenanceBuilder::new(SiteId(0), Timestamp(1))
        .attr("domain", "traffic")
        .attr("region", "metro-0")
        .attr("sensor.type", "camera")
        .build(Digest128::of(b"r"));
    arch.publish(0, &record);
    arch.run_quiet();
    arch.outcomes();
    arch.reset_net();

    let prefix_q = parse(r#"FIND WHERE domain = "traffic" AND region = "metro-0""#).unwrap();
    arch.query(3, &prefix_q);
    arch.run_quiet();
    let prefix_msgs = arch.net().class(pass_net::TrafficClass::Query).messages;

    arch.reset_net();
    let nonprefix_q = parse(r#"FIND WHERE sensor.type = "camera""#).unwrap();
    arch.query(3, &nonprefix_q);
    arch.run_quiet();
    let broadcast_msgs = arch.net().class(pass_net::TrafficClass::Query).messages;

    assert!(
        broadcast_msgs >= prefix_msgs * 3,
        "broadcast ({broadcast_msgs}) should dwarf routed ({prefix_msgs})"
    );
    let outcomes = arch.outcomes();
    assert!(outcomes.iter().all(|o| o.ok));
    // Both queries find the record.
    assert!(outcomes.iter().all(|o| o.ids == vec![record.id]));
}

#[test]
fn federated_publish_is_free_distdb_publish_is_not() {
    let spec = small_spec();
    let corpus = build_corpus(&spec);

    let mut fed = Federated::new(spec.topology(), spec.seed);
    for (site, record) in &corpus.records {
        fed.publish(*site, record);
    }
    fed.run_quiet();
    assert_eq!(
        fed.net().class(pass_net::TrafficClass::Update).messages,
        0,
        "federation publishes locally"
    );

    let mut db = DistributedDb::new(spec.topology(), true, spec.seed);
    for (site, record) in &corpus.records {
        db.publish(*site, record);
    }
    db.run_quiet();
    assert!(
        db.net().class(pass_net::TrafficClass::Update).messages >= corpus.records.len() as u64,
        "hash partitioning ships most records"
    );
}

#[test]
fn distdb_lineage_batching_reduces_messages() {
    // E14 in miniature: a chase over a braided DAG costs fewer messages
    // with per-shard batching than per-id chatter.
    let topology = Topology::clustered(2, 4, 2.0, 40.0);
    let corpus = {
        let spec = WorkloadSpec {
            clusters: 2,
            per_cluster: 4,
            // Wide capture fan-in: the rollup-1 frontier holds 16 ids, so
            // per-shard batching can actually coalesce messages.
            windows_per_site: 8,
            lineage_depth: 4,
            ..WorkloadSpec::default()
        };
        build_corpus(&spec)
    };
    let root = corpus.leaves[0];

    let run = |batch: bool| -> u64 {
        let mut arch = DistributedDb::new(topology.clone(), batch, 7);
        for (site, record) in &corpus.records {
            arch.publish(*site, record);
        }
        arch.run_quiet();
        arch.outcomes();
        arch.reset_net();
        arch.lineage(0, root, None);
        arch.run_quiet();
        let outcomes = arch.outcomes();
        assert!(outcomes.iter().all(|o| o.ok));
        arch.net().class(pass_net::TrafficClass::Query).messages
    };
    let batched = run(true);
    let naive = run(false);
    assert!(naive > batched, "naive per-id chase ({naive}) must out-message batched ({batched})");
}

#[test]
fn lineage_depth_limits_are_respected() {
    let topology = Topology::clustered(1, 4, 2.0, 40.0);
    let mut arch = DistributedDb::new(topology, true, 3);
    // Chain: r0 <- r1 <- r2 <- r3 across sites.
    let mut prev: Option<pass_model::TupleSetId> = None;
    let mut ids = Vec::new();
    for i in 0..4u32 {
        let mut b =
            ProvenanceBuilder::new(SiteId(i), Timestamp(u64::from(i))).attr("domain", "chain");
        if let Some(p) = prev {
            b = b.derived_from(p, ToolDescriptor::new("t", "1"));
        }
        let record = b.build(Digest128::of(&i.to_be_bytes()));
        ids.push(record.id);
        arch.publish(i as usize, &record);
        prev = Some(record.id);
    }
    arch.run_quiet();
    arch.outcomes();

    let op = arch.lineage(0, ids[3], Some(2));
    arch.run_quiet();
    let outcome = arch.outcomes().into_iter().find(|o| o.op == op).unwrap();
    let mut got = outcome.ids.clone();
    got.sort();
    let mut want = vec![ids[1], ids[2]];
    want.sort();
    assert_eq!(got, want, "depth 2 reaches exactly two ancestors");
}

/// Publishes `n` uniform traffic records from rotating origin sites.
fn publish_uniform(arch: &mut dyn Architecture, n: usize) -> Vec<pass_model::TupleSetId> {
    let sites = arch.sites();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let record = ProvenanceBuilder::new(SiteId((i % sites) as u32), Timestamp(i as u64))
            .attr("domain", "traffic")
            .attr("seq", i as i64)
            .build(Digest128::of(&(i as u64).to_be_bytes()));
        ids.push(record.id);
        arch.publish(i % sites, &record);
    }
    arch.run_quiet();
    arch.outcomes();
    ids
}

fn query_bytes_for(arch: &mut dyn Architecture, text: &str) -> (u64, Vec<pass_model::TupleSetId>) {
    arch.reset_net();
    let op = arch.query(1, &parse(text).unwrap());
    arch.run_quiet();
    let outcome = arch.outcomes().into_iter().find(|o| o.op == op).expect("outcome");
    assert!(outcome.ok);
    (arch.net().class(pass_net::TrafficClass::Query).bytes, outcome.ids)
}

/// The E21 wire-level claim: a bounded remote query ships pages sized to
/// its LIMIT, not the full match set.
#[test]
fn centralized_bounded_queries_ship_bounded_pages() {
    let topology = Topology::clustered(2, 2, 2.0, 40.0);
    let mut arch = Centralized::new(topology, 11);
    publish_uniform(&mut arch, 300);

    let (full_bytes, full_ids) = query_bytes_for(&mut arch, r#"FIND WHERE domain = "traffic""#);
    assert_eq!(full_ids.len(), 300, "unbounded query sees everything");

    let (bounded_bytes, bounded_ids) =
        query_bytes_for(&mut arch, r#"FIND WHERE domain = "traffic" LIMIT 10"#);
    assert_eq!(bounded_ids.len(), 10);
    assert!(
        bounded_bytes * 5 < full_bytes,
        "LIMIT 10 shipped {bounded_bytes} bytes vs {full_bytes} for the full set"
    );
}

#[test]
fn federated_bounded_queries_stop_paging_early() {
    let topology = Topology::clustered(2, 2, 2.0, 40.0);
    let mut arch = Federated::new(topology, 11);
    publish_uniform(&mut arch, 300);

    let (full_bytes, full_ids) = query_bytes_for(&mut arch, r#"FIND WHERE domain = "traffic""#);
    assert_eq!(full_ids.len(), 300);

    let (bounded_bytes, bounded_ids) =
        query_bytes_for(&mut arch, r#"FIND WHERE domain = "traffic" LIMIT 8"#);
    assert_eq!(bounded_ids.len(), 8);
    assert!(
        bounded_bytes * 2 < full_bytes,
        "bounded scatter shipped {bounded_bytes} bytes vs {full_bytes}"
    );
}

/// Unbounded queries still return exactly the full result through the
/// paged protocol (pages concatenate losslessly on the wire, too).
#[test]
fn paged_remote_queries_match_ground_truth() {
    let topology = Topology::clustered(2, 2, 2.0, 40.0);
    let mut central = Centralized::new(topology.clone(), 13);
    let mut fed = Federated::new(topology, 13);
    let mut want = publish_uniform(&mut central, 100);
    publish_uniform(&mut fed, 100);
    want.sort();

    for arch in [&mut central as &mut dyn Architecture, &mut fed] {
        let (_, mut ids) = query_bytes_for(arch, r#"FIND WHERE domain = "traffic""#);
        ids.sort();
        assert_eq!(ids, want, "{} diverged through paging", arch.name());
    }
}

/// The federated AFTER fallback must not lose members' results: paging
/// with keyset tokens walks the *entire* federation in sorted-id order.
#[test]
fn federated_keyset_paging_covers_every_member() {
    let topology = Topology::clustered(2, 2, 2.0, 40.0);
    let mut arch = Federated::new(topology, 17);
    let mut want = publish_uniform(&mut arch, 40);
    want.sort();

    // Page 1 anchors below every real id (the token is positional and
    // need not exist); later pages use the previous page's last id.
    let mut paged: Vec<pass_model::TupleSetId> = Vec::new();
    let mut after = pass_model::TupleSetId(0);
    loop {
        let text =
            format!(r#"FIND WHERE domain = "traffic" LIMIT 7 AFTER ts:{}"#, after.full_hex());
        let (_, page) = query_bytes_for(&mut arch, &text);
        if page.is_empty() {
            break;
        }
        after = *page.last().unwrap();
        paged.extend(page);
    }
    assert_eq!(paged, want, "keyset pages must cover all 40 records across all members");
}

/// A remote query with an invalid keyset token fails the op, exactly as
/// a warehouse-local execution would.
#[test]
fn centralized_remote_unknown_after_token_fails() {
    let topology = Topology::clustered(2, 2, 2.0, 40.0);
    let mut arch = Centralized::new(topology, 17);
    publish_uniform(&mut arch, 20);

    let query = parse(r#"FIND WHERE domain = "traffic" LIMIT 5 AFTER ts:deadbeef"#).unwrap();
    // Issued from a non-warehouse site: goes through the paged protocol.
    let remote_op = arch.query(1, &query);
    // Issued at the warehouse: local execution.
    let local_op = arch.query(0, &query);
    arch.run_quiet();
    let outcomes = arch.outcomes();
    let remote = outcomes.iter().find(|o| o.op == remote_op).expect("remote outcome");
    let local = outcomes.iter().find(|o| o.op == local_op).expect("local outcome");
    assert!(!local.ok, "unknown AFTER token is an error locally");
    assert!(!remote.ok, "remote execution must agree with local");
}

#[test]
fn dht_bounded_single_term_query_ships_less() {
    // A large single-term posting list, so the list payload (not Chord
    // routing chatter) dominates the wire cost.
    let topology = Topology::clustered(2, 2, 2.0, 40.0);
    let mut arch = build_arch(ArchKind::Dht { replicas: 1 }, topology, 11);
    publish_uniform(arch.as_mut(), 300);

    let (full_bytes, full_ids) = query_bytes_for(arch.as_mut(), r#"FIND WHERE domain = "traffic""#);
    assert_eq!(full_ids.len(), 300, "unbounded fetch sees the whole posting list");

    let (bounded_bytes, bounded_ids) =
        query_bytes_for(arch.as_mut(), r#"FIND WHERE domain = "traffic" LIMIT 2"#);
    assert_eq!(bounded_ids.len(), 2);
    assert!(
        bounded_bytes * 2 < full_bytes,
        "bounded posting fetch shipped {bounded_bytes} vs {full_bytes}"
    );
}

#[test]
fn batched_publish_matches_per_record_results() {
    let corpus = build_corpus(&small_spec());
    let run = |publish_batch: usize| {
        let spec = WorkloadSpec { publish_batch, ..small_spec() };
        let mut arch = build_arch(ArchKind::Centralized, spec.topology(), spec.seed);
        run_workload(arch.as_mut(), &corpus, &spec)
    };
    let per_record = run(1);
    let batched = run(8);
    for report in [&per_record, &batched] {
        assert_eq!(report.failures, 0, "{}: {report:?}", report.name);
        assert!((report.quality.precision - 1.0).abs() < 1e-9);
        assert!((report.quality.recall - 1.0).abs() < 1e-9);
        assert!((report.lineage_recall - 1.0).abs() < 1e-9);
    }
    // The point of the batched transfer: one StoreBatch + one ack per
    // group instead of one round-trip per record.
    assert!(
        batched.update_traffic.messages < per_record.update_traffic.messages,
        "batched {} msgs vs per-record {} msgs",
        batched.update_traffic.messages,
        per_record.update_traffic.messages
    );
}

#[test]
fn centralized_push_notifies_every_matching_publish_once() {
    let topology = Topology::clustered(2, 2, 2.0, 40.0);
    let mut arch = Centralized::new(topology, 5);
    let query = parse(r#"FIND WHERE domain = "traffic""#).unwrap();
    let sub_op = arch.subscribe(3, &query).expect("centralized has a push path");
    arch.run_quiet(); // deliver the registration before publishing

    let mut matching = Vec::new();
    for i in 0..12u8 {
        let domain = if i % 3 == 0 { "traffic" } else { "weather" };
        let record = ProvenanceBuilder::new(SiteId(u32::from(i % 4)), Timestamp(u64::from(i)))
            .attr("domain", domain)
            .attr("seq", i64::from(i))
            .build(Digest128::of(&[i]));
        if domain == "traffic" {
            matching.push(record.id);
        }
        arch.publish(usize::from(i % 4), &record);
        arch.run_for(SimTime::from_millis(5));
    }
    arch.run_quiet();

    let mut notified = Vec::new();
    for outcome in arch.outcomes() {
        if outcome.op == sub_op {
            assert!(outcome.ok);
            notified.extend(outcome.ids);
        }
    }
    // Every matching record notified exactly once, none of the others.
    notified.sort();
    matching.sort();
    assert_eq!(notified, matching);

    // Registrations and notifications ride the maintenance class, so
    // poll-vs-push comparisons can separate standing-query upkeep from
    // one-shot query traffic.
    use pass_net::TrafficClass;
    let maint = arch.net().class(TrafficClass::Maintenance);
    assert!(maint.messages > 0, "push notifications are maintenance traffic");
}

#[test]
fn architectures_without_push_report_none() {
    let spec = small_spec();
    let query = parse(r#"FIND WHERE domain = "traffic""#).unwrap();
    for kind in [
        ArchKind::Federated,
        ArchKind::SoftState { refresh: SimTime::from_secs(1) },
        ArchKind::Hierarchical,
        ArchKind::Dht { replicas: 1 },
    ] {
        let mut arch = build_arch(kind, spec.topology(), spec.seed);
        assert!(arch.subscribe(0, &query).is_none(), "{} should fall back to polling", arch.name());
    }
}
