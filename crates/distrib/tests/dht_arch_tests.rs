//! Focused tests for the DHT-backed index architecture (§IV-C).

use pass_distrib::{Architecture, DhtIndex};
use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp, ToolDescriptor, TupleSetId};
use pass_net::{Topology, TrafficClass};
use pass_query::parse;

fn publish_chain(arch: &mut DhtIndex, len: usize) -> Vec<TupleSetId> {
    let mut ids = Vec::new();
    let mut prev: Option<TupleSetId> = None;
    for i in 0..len {
        let mut builder = ProvenanceBuilder::new(SiteId(i as u32 % 8), Timestamp(i as u64))
            .attr("domain", "traffic")
            .attr("region", "metro-0")
            .attr("type", "capture");
        if let Some(p) = prev {
            builder = builder.derived_from(p, ToolDescriptor::new("t", "1"));
        }
        let record = builder.build(Digest128::of(&(i as u64).to_be_bytes()));
        ids.push(record.id);
        prev = Some(record.id);
        arch.publish(i % 8, &record);
        arch.run_quiet();
    }
    arch.outcomes();
    ids
}

#[test]
fn publish_costs_one_put_per_indexed_attribute() {
    let mut arch = DhtIndex::new(Topology::uniform(8, 10.0), 1, 3);
    arch.reset_net();
    let record = ProvenanceBuilder::new(SiteId(0), Timestamp(1))
        .attr("domain", "traffic")
        .attr("region", "metro-0")
        .attr("type", "capture")
        .build(Digest128::of(b"x"));
    let op = arch.publish(0, &record);
    arch.run_quiet();
    let outcomes = arch.outcomes();
    assert!(outcomes.iter().any(|o| o.op == op && o.ok));
    // One blob put + three posting appends, each a routed lookup: the
    // §IV-C per-attribute update fan-out. At minimum 4 store messages.
    let update_msgs = arch.net().class(TrafficClass::Update).messages;
    assert!(update_msgs >= 4, "expected ≥4 update messages, got {update_msgs}");
}

#[test]
fn lineage_cost_grows_with_depth() {
    let mut arch = DhtIndex::new(Topology::uniform(8, 10.0), 1, 5);
    let ids = publish_chain(&mut arch, 6);
    let leaf = *ids.last().unwrap();

    let mut msgs_at = |depth: Option<u32>| -> (usize, u64) {
        arch.reset_net();
        let op = arch.lineage(0, leaf, depth);
        arch.run_quiet();
        let outcome = arch.outcomes().into_iter().find(|o| o.op == op).unwrap();
        assert!(outcome.ok);
        (outcome.ids.len(), arch.net().class(TrafficClass::Query).messages)
    };
    let (shallow_nodes, shallow_msgs) = msgs_at(Some(1));
    let (deep_nodes, deep_msgs) = msgs_at(None);
    assert_eq!(shallow_nodes, 1);
    assert_eq!(deep_nodes, 5, "full chain minus the leaf");
    assert!(
        deep_msgs > shallow_msgs * 2,
        "per-edge routed lookups: deep {deep_msgs} vs shallow {shallow_msgs}"
    );
}

#[test]
fn query_intersects_posting_lists() {
    let mut arch = DhtIndex::new(Topology::uniform(8, 10.0), 1, 7);
    publish_chain(&mut arch, 4);
    // Also publish a weather record sharing the region.
    let other = ProvenanceBuilder::new(SiteId(1), Timestamp(99))
        .attr("domain", "weather")
        .attr("region", "metro-0")
        .attr("type", "capture")
        .build(Digest128::of(b"w"));
    arch.publish(1, &other);
    arch.run_quiet();
    arch.outcomes();

    let op =
        arch.query(2, &parse(r#"FIND WHERE domain = "weather" AND region = "metro-0""#).unwrap());
    arch.run_quiet();
    let outcome = arch.outcomes().into_iter().find(|o| o.op == op).unwrap();
    assert!(outcome.ok);
    assert_eq!(outcome.ids, vec![other.id], "intersection isolates the weather record");
}

#[test]
fn lineage_of_unknown_root_fails_cleanly() {
    let mut arch = DhtIndex::new(Topology::uniform(6, 10.0), 1, 9);
    let op = arch.lineage(0, TupleSetId(0xdead), None);
    arch.run_quiet();
    let outcome = arch.outcomes().into_iter().find(|o| o.op == op).unwrap();
    // The blob get fails; the chase terminates with an empty (successful,
    // zero-ancestor) result — the record simply is not in the DHT.
    assert!(outcome.ids.is_empty());
}
