//! Dense node-id arena.
//!
//! Posting lists and reachability bitsets want small dense integers, not
//! 128-bit identity hashes. The arena maintains the bijection.

use pass_model::TupleSetId;
use std::collections::HashMap;

/// A dense index assigned to a [`TupleSetId`]; valid only within the arena
/// that issued it.
pub type NodeIdx = u32;

/// Bijective map between tuple-set identities and dense indexes.
#[derive(Debug, Default, Clone)]
pub struct IdArena {
    to_idx: HashMap<TupleSetId, NodeIdx>,
    to_id: Vec<TupleSetId>,
}

impl IdArena {
    /// An empty arena.
    pub fn new() -> Self {
        IdArena::default()
    }

    /// Returns the dense index for `id`, assigning the next free one on
    /// first sight.
    pub fn intern(&mut self, id: TupleSetId) -> NodeIdx {
        if let Some(&idx) = self.to_idx.get(&id) {
            return idx;
        }
        let idx = u32::try_from(self.to_id.len()).expect("arena holds < 2^32 nodes");
        self.to_idx.insert(id, idx);
        self.to_id.push(id);
        idx
    }

    /// Dense index for an id already interned, if any.
    pub fn lookup(&self, id: TupleSetId) -> Option<NodeIdx> {
        self.to_idx.get(&id).copied()
    }

    /// The identity behind a dense index.
    pub fn resolve(&self, idx: NodeIdx) -> Option<TupleSetId> {
        self.to_id.get(idx as usize).copied()
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.to_id.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.to_id.is_empty()
    }

    /// Maps a batch of dense indexes back to identities, skipping any that
    /// are unknown (defensive; should not happen for arena-issued indexes).
    pub fn resolve_all(&self, idxs: &[NodeIdx]) -> Vec<TupleSetId> {
        idxs.iter().filter_map(|&i| self.resolve(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut arena = IdArena::new();
        let a = arena.intern(TupleSetId(100));
        let b = arena.intern(TupleSetId(200));
        let a2 = arena.intern(TupleSetId(100));
        assert_eq!(a, a2);
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn lookup_and_resolve_round_trip() {
        let mut arena = IdArena::new();
        let idx = arena.intern(TupleSetId(42));
        assert_eq!(arena.lookup(TupleSetId(42)), Some(idx));
        assert_eq!(arena.resolve(idx), Some(TupleSetId(42)));
        assert_eq!(arena.lookup(TupleSetId(43)), None);
        assert_eq!(arena.resolve(999), None);
    }

    #[test]
    fn resolve_all_skips_unknown() {
        let mut arena = IdArena::new();
        arena.intern(TupleSetId(1));
        assert_eq!(arena.resolve_all(&[0, 7]), vec![TupleSetId(1)]);
    }
}
