//! Keyword index over annotations and descriptions.
//!
//! "Such descriptions and annotations must also be searchable" (§I). A
//! plain inverted text index: lowercase alphanumeric tokenization, token →
//! posting list.

use crate::arena::NodeIdx;
use crate::posting::PostingList;
use std::collections::HashMap;

/// Splits text into lowercase alphanumeric tokens, dropping one-character
/// tokens (noise at our scales).
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric()).filter(|t| t.len() > 1).map(str::to_lowercase)
}

/// An inverted text index.
#[derive(Debug, Default, Clone)]
pub struct KeywordIndex {
    postings: HashMap<String, PostingList>,
    documents: u64,
}

impl KeywordIndex {
    /// An empty index.
    pub fn new() -> Self {
        KeywordIndex::default()
    }

    /// Indexes one document's text under a node.
    pub fn insert(&mut self, idx: NodeIdx, text: &str) {
        for token in tokenize(text) {
            self.postings.entry(token).or_default().insert(idx);
        }
        self.documents += 1;
    }

    /// Bulk-indexes many documents at once: tokenizes everything, sorts
    /// the `(token, node)` pairs, and merges each token's sorted node run
    /// into its posting list in one pass.
    pub fn insert_bulk<'a>(&mut self, docs: impl IntoIterator<Item = (NodeIdx, &'a str)>) {
        let mut pairs: Vec<(String, NodeIdx)> = Vec::new();
        for (idx, text) in docs {
            pairs.extend(tokenize(text).map(|t| (t, idx)));
            self.documents += 1;
        }
        pairs.sort_unstable();
        let mut pairs = pairs.into_iter().peekable();
        let mut run: Vec<NodeIdx> = Vec::new();
        while let Some((token, idx)) = pairs.next() {
            run.clear();
            run.push(idx);
            while let Some((_, nidx)) = pairs.next_if(|(t, _)| *t == token) {
                run.push(nidx);
            }
            self.postings.entry(token).or_default().extend_sorted(&run);
        }
    }

    /// Nodes whose indexed text contains the token.
    pub fn lookup(&self, token: &str) -> PostingList {
        self.postings.get(&token.to_lowercase()).cloned().unwrap_or_default()
    }

    /// Nodes containing *all* tokens of the phrase (bag-of-words AND; no
    /// positional information is kept).
    pub fn lookup_all(&self, phrase: &str) -> PostingList {
        let lists: Vec<PostingList> = tokenize(phrase).map(|t| self.lookup(&t)).collect();
        if lists.is_empty() {
            return PostingList::new();
        }
        PostingList::intersect_all(lists.iter().collect())
    }

    /// Distinct tokens indexed.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Documents indexed.
    pub fn documents(&self) -> u64 {
        self.documents
    }

    /// Rough heap footprint.
    pub fn size_bytes(&self) -> usize {
        self.postings.iter().map(|(tok, pl)| tok.len() + pl.size_bytes() + 48).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_lowercases_and_splits() {
        let toks: Vec<_> = tokenize("Sensor #12 replaced; firmware v2.1!").collect();
        assert_eq!(toks, vec!["sensor", "12", "replaced", "firmware", "v2"]);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut ix = KeywordIndex::new();
        ix.insert(0, "Pulse Oximeter calibrated");
        assert_eq!(ix.lookup("PULSE").as_slice(), &[0]);
        assert_eq!(ix.lookup("calibrated").as_slice(), &[0]);
        assert!(ix.lookup("missing").is_empty());
    }

    #[test]
    fn lookup_all_requires_every_token() {
        let mut ix = KeywordIndex::new();
        ix.insert(0, "sensor replaced with newer model");
        ix.insert(1, "sensor firmware upgraded");
        assert_eq!(ix.lookup_all("sensor replaced").as_slice(), &[0]);
        assert_eq!(ix.lookup_all("sensor").as_slice(), &[0, 1]);
        assert!(ix.lookup_all("sensor missing").is_empty());
        assert!(ix.lookup_all("").is_empty());
    }

    #[test]
    fn multiple_documents_per_node_accumulate() {
        let mut ix = KeywordIndex::new();
        ix.insert(3, "first note");
        ix.insert(3, "second note");
        assert_eq!(ix.lookup("note").as_slice(), &[3]);
        assert_eq!(ix.documents(), 2);
        assert!(ix.vocabulary_size() >= 3);
    }
}
