//! Transitive-closure strategies.
//!
//! §II-B: "the indexing structures in sensor data storage systems must
//! provide for efficient … recursive or transitive queries. Simple
//! relational or XML-based name-to-value schemes are not sufficient and
//! will not work well unless augmented with other structures."
//!
//! Experiment E3 measures exactly that augmentation ladder:
//!
//! 1. [`NaiveJoinClosure`] — the *un*augmented baseline: semi-naive
//!    iteration that rescans the whole edge relation every round, the way
//!    a self-join over an `(child, parent)` table behaves without an
//!    adjacency index.
//! 2. [`BfsClosure`] — adjacency-indexed breadth-first traversal.
//! 3. [`MemoClosure`] — fully materialized reachability bitsets.
//! 4. [`crate::interval::IntervalClosure`] — Agrawal–Borgida–Jagadish
//!    tree-cover interval labels: near-materialized speed at a fraction of
//!    the memory.
//!
//! ## Abstraction boundaries
//!
//! With [`TraverseOpts::stop_at_abstraction`] set, edges whose derivation
//! tool is abstracted (§V's "gcc 3.3.3") are not traversed: the tool's
//! name/version remain available on the derivation record, but its own
//! history stays collapsed.

use crate::arena::NodeIdx;
use crate::bitset::BitSet;
use crate::error::Result;
use crate::graph::{AncestryGraph, Direction};
use std::collections::VecDeque;

/// Traversal options shared by every strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraverseOpts {
    /// Stop after this many hops (`None` = unbounded).
    pub max_depth: Option<u32>,
    /// Do not cross abstracted derivation edges.
    pub stop_at_abstraction: bool,
}

impl TraverseOpts {
    /// Unbounded, abstraction-crossing traversal.
    pub fn unbounded() -> Self {
        TraverseOpts::default()
    }

    /// Depth-limited traversal.
    pub fn depth(max: u32) -> Self {
        TraverseOpts { max_depth: Some(max), ..TraverseOpts::default() }
    }
}

/// A transitive-closure evaluation strategy.
///
/// `reachable` returns every node reachable from `from` in `dir`
/// (excluding `from` itself), sorted ascending.
pub trait ReachStrategy {
    /// Human-readable name for bench output.
    fn name(&self) -> &'static str;

    /// Computes the reachable set.
    fn reachable(
        &self,
        g: &AncestryGraph,
        from: NodeIdx,
        dir: Direction,
        opts: &TraverseOpts,
    ) -> Vec<NodeIdx>;
}

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

/// Adjacency-indexed breadth-first traversal. No precomputation; cost is
/// proportional to the visited subgraph.
#[derive(Debug, Default, Clone, Copy)]
pub struct BfsClosure;

impl ReachStrategy for BfsClosure {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn reachable(
        &self,
        g: &AncestryGraph,
        from: NodeIdx,
        dir: Direction,
        opts: &TraverseOpts,
    ) -> Vec<NodeIdx> {
        let mut visited = BitSet::new(g.node_count());
        let mut out = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back((from, 0u32));
        visited.insert(from);
        while let Some((node, depth)) = queue.pop_front() {
            if opts.max_depth.is_some_and(|d| depth >= d) {
                continue;
            }
            for e in g.neighbors(node, dir) {
                if opts.stop_at_abstraction && e.abstracted {
                    continue;
                }
                if !visited.contains(e.node) {
                    visited.insert(e.node);
                    out.push(e.node);
                    queue.push_back((e.node, depth + 1));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

// ---------------------------------------------------------------------------
// Naive relational join
// ---------------------------------------------------------------------------

/// The unaugmented baseline: evaluates the closure the way a recursive
/// self-join over a flat `(child, parent)` relation does when no adjacency
/// index exists — every iteration scans *all* edges. Semi-naive (joins
/// only the frontier), so it terminates in `depth` rounds, but each round
/// costs `O(|E|)` regardless of frontier size.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveJoinClosure;

impl ReachStrategy for NaiveJoinClosure {
    fn name(&self) -> &'static str {
        "naive-join"
    }

    fn reachable(
        &self,
        g: &AncestryGraph,
        from: NodeIdx,
        dir: Direction,
        opts: &TraverseOpts,
    ) -> Vec<NodeIdx> {
        let edges = g.all_edges();
        let mut visited = BitSet::new(g.node_count());
        visited.insert(from);
        let mut frontier = BitSet::new(g.node_count());
        frontier.insert(from);
        let mut out = Vec::new();
        let mut depth = 0u32;
        loop {
            if opts.max_depth.is_some_and(|d| depth >= d) {
                break;
            }
            let mut next = BitSet::new(g.node_count());
            let mut grew = false;
            // Full relation scan — deliberately index-free.
            for &(child, parent, abstracted) in &edges {
                if opts.stop_at_abstraction && abstracted {
                    continue;
                }
                let (src, dst) = match dir {
                    Direction::Ancestors => (child, parent),
                    Direction::Descendants => (parent, child),
                };
                if frontier.contains(src) && !visited.contains(dst) {
                    visited.insert(dst);
                    next.insert(dst);
                    out.push(dst);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
            frontier = next;
            depth += 1;
        }
        out.sort_unstable();
        out
    }
}

// ---------------------------------------------------------------------------
// Materialized bitsets
// ---------------------------------------------------------------------------

/// Fully materialized reachability: one bitset per node per direction,
/// built in one topological pass. Queries are `O(answer)`; memory is
/// `O(V²/8)` — the expensive end of the E3 ablation.
#[derive(Debug)]
pub struct MemoClosure {
    ancestors: Vec<BitSet>,
    descendants: Vec<BitSet>,
    skip_abstracted: bool,
}

impl MemoClosure {
    /// Builds both directions. Fails on cyclic graphs.
    pub fn build(g: &AncestryGraph, skip_abstracted: bool) -> Result<Self> {
        let order = g.topo_order()?;
        let n = g.node_count();
        let mut ancestors: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        // Parents precede children in `order`: ancestor sets accumulate.
        for &node in &order {
            let mut acc = BitSet::new(n);
            for e in g.parents_of(node) {
                if skip_abstracted && e.abstracted {
                    continue;
                }
                acc.insert(e.node);
                acc.union_with(&ancestors[e.node as usize]);
            }
            ancestors[node as usize] = acc;
        }
        let mut descendants: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &node in order.iter().rev() {
            let mut acc = BitSet::new(n);
            for e in g.children_of(node) {
                if skip_abstracted && e.abstracted {
                    continue;
                }
                acc.insert(e.node);
                acc.union_with(&descendants[e.node as usize]);
            }
            descendants[node as usize] = acc;
        }
        Ok(MemoClosure { ancestors, descendants, skip_abstracted })
    }

    /// Bytes held by the bitsets.
    pub fn size_bytes(&self) -> usize {
        self.ancestors.iter().map(BitSet::size_bytes).sum::<usize>()
            + self.descendants.iter().map(BitSet::size_bytes).sum::<usize>()
    }
}

impl ReachStrategy for MemoClosure {
    fn name(&self) -> &'static str {
        "memo-bitset"
    }

    fn reachable(
        &self,
        g: &AncestryGraph,
        from: NodeIdx,
        dir: Direction,
        opts: &TraverseOpts,
    ) -> Vec<NodeIdx> {
        // The materialization bakes in one abstraction setting and no depth
        // limit; anything else falls back to BFS for correctness.
        if opts.max_depth.is_some() || opts.stop_at_abstraction != self.skip_abstracted {
            return BfsClosure.reachable(g, from, dir, opts);
        }
        let sets = match dir {
            Direction::Ancestors => &self.ancestors,
            Direction::Descendants => &self.descendants,
        };
        sets.get(from as usize).map_or_else(Vec::new, BitSet::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::TupleSetId;

    fn id(n: u128) -> TupleSetId {
        TupleSetId(n)
    }

    /// raw(1) -> mid(2) -> leaf(3); raw(1) -> leaf(3) directly too.
    fn small_graph() -> AncestryGraph {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), false)]);
        g.insert(id(3), &[(id(2), false), (id(1), false)]);
        g
    }

    fn ids(g: &AncestryGraph, idxs: Vec<NodeIdx>) -> Vec<u128> {
        let mut v: Vec<u128> = g.resolve_all(&idxs).into_iter().map(|t| t.0).collect();
        v.sort_unstable();
        v
    }

    fn all_strategies(g: &AncestryGraph) -> Vec<Box<dyn ReachStrategy>> {
        vec![
            Box::new(BfsClosure),
            Box::new(NaiveJoinClosure),
            Box::new(MemoClosure::build(g, false).unwrap()),
        ]
    }

    #[test]
    fn ancestors_and_descendants_agree_across_strategies() {
        let g = small_graph();
        let leaf = g.lookup(id(3)).unwrap();
        let raw = g.lookup(id(1)).unwrap();
        for s in all_strategies(&g) {
            let anc = s.reachable(&g, leaf, Direction::Ancestors, &TraverseOpts::unbounded());
            assert_eq!(ids(&g, anc), vec![1, 2], "{} ancestors", s.name());
            let desc = s.reachable(&g, raw, Direction::Descendants, &TraverseOpts::unbounded());
            assert_eq!(ids(&g, desc), vec![2, 3], "{} descendants", s.name());
        }
    }

    #[test]
    fn depth_limit_truncates() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        for i in 2..=5u128 {
            g.insert(id(i), &[(id(i - 1), false)]);
        }
        let leaf = g.lookup(id(5)).unwrap();
        for s in [&BfsClosure as &dyn ReachStrategy, &NaiveJoinClosure] {
            let got = s.reachable(&g, leaf, Direction::Ancestors, &TraverseOpts::depth(2));
            assert_eq!(ids(&g, got), vec![3, 4], "{}", s.name());
        }
        // Memo falls back to BFS under a depth limit.
        let memo = MemoClosure::build(&g, false).unwrap();
        let got = memo.reachable(&g, leaf, Direction::Ancestors, &TraverseOpts::depth(2));
        assert_eq!(ids(&g, got), vec![3, 4]);
    }

    #[test]
    fn abstraction_boundary_stops_traversal() {
        // data(3) -[abstracted]-> toolchain(2) -> toolsrc(1); data(3) -> raw(4).
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), false)]);
        g.insert(id(4), &[]);
        g.insert(id(3), &[(id(2), true), (id(4), false)]);
        let data = g.lookup(id(3)).unwrap();

        let opts = TraverseOpts { stop_at_abstraction: true, ..TraverseOpts::default() };
        for s in [&BfsClosure as &dyn ReachStrategy, &NaiveJoinClosure] {
            let got = s.reachable(&g, data, Direction::Ancestors, &opts);
            assert_eq!(ids(&g, got), vec![4], "{}: toolchain hidden", s.name());
        }
        let memo = MemoClosure::build(&g, true).unwrap();
        let got = memo.reachable(&g, data, Direction::Ancestors, &opts);
        assert_eq!(ids(&g, got), vec![4]);

        // Without the boundary the whole toolchain appears.
        let all = BfsClosure.reachable(&g, data, Direction::Ancestors, &TraverseOpts::unbounded());
        assert_eq!(ids(&g, all), vec![1, 2, 4]);
    }

    #[test]
    fn diamond_counts_nodes_once() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), false)]);
        g.insert(id(3), &[(id(1), false)]);
        g.insert(id(4), &[(id(2), false), (id(3), false)]);
        let four = g.lookup(id(4)).unwrap();
        for s in all_strategies(&g) {
            let got = s.reachable(&g, four, Direction::Ancestors, &TraverseOpts::unbounded());
            assert_eq!(ids(&g, got), vec![1, 2, 3], "{}", s.name());
        }
    }

    #[test]
    fn isolated_node_reaches_nothing() {
        let mut g = AncestryGraph::new();
        let lone = g.insert(id(9), &[]);
        for s in all_strategies(&g) {
            assert!(s
                .reachable(&g, lone, Direction::Ancestors, &TraverseOpts::unbounded())
                .is_empty());
            assert!(s
                .reachable(&g, lone, Direction::Descendants, &TraverseOpts::unbounded())
                .is_empty());
        }
    }

    #[test]
    fn memo_size_reporting() {
        let g = small_graph();
        let memo = MemoClosure::build(&g, false).unwrap();
        assert!(memo.size_bytes() > 0);
    }
}
