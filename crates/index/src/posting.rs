//! Sorted posting lists and their set algebra.
//!
//! Multi-attribute queries (§II-B: "efficient lookups in many dimensions")
//! reduce to intersections and unions of per-attribute posting lists.
//! Intersection uses galloping search, so `rare ∩ common` costs
//! `O(|rare| · log |common|)`.

use crate::arena::NodeIdx;

/// A sorted, deduplicated list of dense node indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    items: Vec<NodeIdx>,
}

impl PostingList {
    /// An empty list.
    pub fn new() -> Self {
        PostingList::default()
    }

    /// Builds from a vector already sorted and deduplicated (debug-checked).
    pub fn from_sorted(items: Vec<NodeIdx>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "input must be strictly sorted");
        PostingList { items }
    }

    /// Inserts one index, keeping order (O(log n) search + O(n) shift; the
    /// common ingest path appends monotonically growing indexes, which is
    /// O(1) amortized).
    pub fn insert(&mut self, idx: NodeIdx) {
        match self.items.last() {
            Some(&last) if last < idx => self.items.push(idx),
            _ => {
                if let Err(pos) = self.items.binary_search(&idx) {
                    self.items.insert(pos, idx);
                }
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, idx: NodeIdx) -> bool {
        self.items.binary_search(&idx).is_ok()
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The postings as a sorted slice.
    pub fn as_slice(&self) -> &[NodeIdx] {
        &self.items
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.items.iter().copied()
    }

    /// Galloping intersection: iterate the shorter list, gallop in the
    /// longer one.
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        let (small, large) = if self.len() <= other.len() {
            (&self.items, &other.items)
        } else {
            (&other.items, &self.items)
        };
        let mut out = Vec::with_capacity(small.len().min(large.len()));
        let mut lo = 0usize;
        for &x in small {
            lo = gallop_to(large, lo, x);
            if lo >= large.len() {
                break;
            }
            if large[lo] == x {
                out.push(x);
                lo += 1;
            }
        }
        PostingList { items: out }
    }

    /// Linear-merge union.
    pub fn union(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (a, b) = (&self.items, &other.items);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        PostingList { items: out }
    }

    /// `self \ other`.
    pub fn difference(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len());
        let mut j = 0usize;
        for &x in &self.items {
            while j < other.items.len() && other.items[j] < x {
                j += 1;
            }
            if j >= other.items.len() || other.items[j] != x {
                out.push(x);
            }
        }
        PostingList { items: out }
    }

    /// Intersects many lists, cheapest-first so intermediate results stay
    /// small. Returns the empty list when `lists` is empty.
    pub fn intersect_all(mut lists: Vec<&PostingList>) -> PostingList {
        if lists.is_empty() {
            return PostingList::new();
        }
        lists.sort_by_key(|l| l.len());
        let mut acc = lists[0].clone();
        for l in &lists[1..] {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(l);
        }
        acc
    }

    /// Unions many lists.
    pub fn union_all(lists: Vec<&PostingList>) -> PostingList {
        let mut acc = PostingList::new();
        for l in lists {
            acc = acc.union(l);
        }
        acc
    }

    /// Merges a sorted (ascending, possibly duplicated) run of indexes in
    /// one pass — the bulk-build primitive behind `AttrIndex::insert_bulk`.
    /// Runs that extend past the current tail (the batched-ingest common
    /// case: node indexes grow monotonically) append in O(run).
    pub fn extend_sorted(&mut self, run: &[NodeIdx]) {
        debug_assert!(run.windows(2).all(|w| w[0] <= w[1]), "run must be sorted");
        if run.is_empty() {
            return;
        }
        // Fast path: the whole run lands after the current tail. Dedup
        // only while appending — a whole-list `dedup()` here would make
        // the "O(run)" append O(list) per batch.
        if self.items.last().is_none_or(|&last| last < run[0]) {
            self.items.reserve(run.len());
            for &idx in run {
                if self.items.last() != Some(&idx) {
                    self.items.push(idx);
                }
            }
            return;
        }
        // General path: linear merge.
        let old = std::mem::take(&mut self.items);
        self.items = Vec::with_capacity(old.len() + run.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() && j < run.len() {
            match old[i].cmp(&run[j]) {
                std::cmp::Ordering::Less => {
                    self.items.push(old[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    self.items.push(run[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    self.items.push(old[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.items.extend_from_slice(&old[i..]);
        for &x in &run[j..] {
            if self.items.last() != Some(&x) {
                self.items.push(x);
            }
        }
        self.items.dedup();
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<NodeIdx>()
    }
}

/// Index of the first element `>= x` in `sorted[from..]`, found by
/// exponential (galloping) search followed by binary search.
fn gallop_to(sorted: &[NodeIdx], from: usize, x: NodeIdx) -> usize {
    if from >= sorted.len() || sorted[from] >= x {
        return from;
    }
    // Invariant: sorted[prev] < x.
    let mut prev = from;
    let mut step = 1usize;
    let mut hi = from + 1;
    while hi < sorted.len() && sorted[hi] < x {
        prev = hi;
        step *= 2;
        hi += step;
    }
    let end = hi.min(sorted.len());
    prev + 1 + sorted[prev + 1..end].partition_point(|&y| y < x)
}

impl FromIterator<NodeIdx> for PostingList {
    /// Builds from any iterator (sorts and dedups).
    fn from_iter<I: IntoIterator<Item = NodeIdx>>(iter: I) -> Self {
        let mut items: Vec<NodeIdx> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        PostingList { items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(v: &[u32]) -> PostingList {
        PostingList::from_iter(v.iter().copied())
    }

    #[test]
    fn insert_maintains_sorted_dedup() {
        let mut l = PostingList::new();
        for i in [5u32, 1, 3, 5, 2, 10, 1] {
            l.insert(i);
        }
        assert_eq!(l.as_slice(), &[1, 2, 3, 5, 10]);
        assert!(l.contains(3));
        assert!(!l.contains(4));
    }

    #[test]
    fn intersect_basic_and_asymmetric() {
        assert_eq!(pl(&[1, 3, 5, 7]).intersect(&pl(&[3, 4, 5, 6])).as_slice(), &[3, 5]);
        // Rare ∩ common with galloping.
        let common: Vec<u32> = (0..10_000).collect();
        let rare = [17u32, 4_096, 9_999];
        assert_eq!(pl(&rare).intersect(&pl(&common)).as_slice(), &rare);
        assert_eq!(pl(&common).intersect(&pl(&rare)).as_slice(), &rare);
    }

    #[test]
    fn intersect_empty_and_disjoint() {
        assert!(pl(&[]).intersect(&pl(&[1, 2])).is_empty());
        assert!(pl(&[1, 2]).intersect(&pl(&[])).is_empty());
        assert!(pl(&[1, 3]).intersect(&pl(&[2, 4])).is_empty());
    }

    #[test]
    fn union_merges_with_dedup() {
        assert_eq!(pl(&[1, 3]).union(&pl(&[2, 3, 4])).as_slice(), &[1, 2, 3, 4]);
        assert_eq!(pl(&[]).union(&pl(&[7])).as_slice(), &[7]);
    }

    #[test]
    fn difference_removes_matches() {
        assert_eq!(pl(&[1, 2, 3, 4]).difference(&pl(&[2, 4, 6])).as_slice(), &[1, 3]);
        assert_eq!(pl(&[1, 2]).difference(&pl(&[])).as_slice(), &[1, 2]);
    }

    #[test]
    fn intersect_all_orders_by_cost() {
        let a = pl(&(0..1000).collect::<Vec<_>>());
        let b = pl(&[5, 500, 999]);
        let c = pl(&(0..1000).filter(|x| x % 5 == 0).collect::<Vec<_>>());
        assert_eq!(PostingList::intersect_all(vec![&a, &b, &c]).as_slice(), &[5, 500]);
        assert!(PostingList::intersect_all(vec![]).is_empty());
    }

    #[test]
    fn union_all_accumulates() {
        let got = PostingList::union_all(vec![&pl(&[1]), &pl(&[3]), &pl(&[2, 3])]);
        assert_eq!(got.as_slice(), &[1, 2, 3]);
    }
}
