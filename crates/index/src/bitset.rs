//! A minimal fixed-capacity bitset for reachability closures.

/// A bitset over dense node indexes `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// All-zero set of the given capacity.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// Sets bit `i`. Panics when out of range (programmer error: indexes
    /// come from the same arena that sized the set).
    pub fn insert(&mut self, i: u32) {
        let i = i as usize;
        assert!(i < self.capacity, "bit {i} out of capacity {}", self.capacity);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Tests bit `i` (out-of-range reads are simply false).
    pub fn contains(&self, i: u32) -> bool {
        let i = i as usize;
        i < self.capacity && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                Some(wi as u32 * 64 + tz)
            })
        })
    }

    /// Set bits as a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Heap bytes used by the word array.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter() {
        let mut b = BitSet::new(200);
        for i in [0u32, 63, 64, 65, 130, 199] {
            b.insert(i);
        }
        assert_eq!(b.to_vec(), vec![0, 63, 64, 65, 130, 199]);
        assert_eq!(b.count(), 6);
        assert!(b.contains(63));
        assert!(!b.contains(62));
        assert!(!b.contains(10_000), "out of range reads are false");
    }

    #[test]
    fn union_accumulates() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(64);
        a.union_with(&b);
        assert_eq!(a.to_vec(), vec![1, 64]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn empty_set() {
        let b = BitSet::new(0);
        assert_eq!(b.count(), 0);
        assert_eq!(b.to_vec(), Vec::<u32>::new());
    }
}
