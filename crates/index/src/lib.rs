//! # pass-index — provenance indexing structures
//!
//! §II-B demands "efficient lookups in many dimensions, as well as
//! efficient recursive or transitive queries". This crate supplies both
//! halves for a local PASS:
//!
//! * **Dimensional** — [`AttrIndex`] (equality + range over any
//!   attribute), [`TimeIndex`] (interval overlap), [`KeywordIndex`]
//!   (annotation text), combined through [`PostingList`] set algebra.
//! * **Recursive** — [`AncestryGraph`] plus four interchangeable
//!   [`ReachStrategy`] implementations ([`NaiveJoinClosure`],
//!   [`BfsClosure`], [`MemoClosure`], [`IntervalClosure`]) that form the
//!   E3 ablation ladder.
//!
//! Indexes speak dense [`NodeIdx`]es internally; [`IdArena`] maintains the
//! bijection with 128-bit tuple-set identities.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod attr;
pub mod bitset;
pub mod closure;
pub mod error;
pub mod graph;
pub mod interval;
pub mod keyword;
pub mod posting;
pub mod time;

pub use arena::{IdArena, NodeIdx};
pub use attr::AttrIndex;
pub use bitset::BitSet;
pub use closure::{BfsClosure, MemoClosure, NaiveJoinClosure, ReachStrategy, TraverseOpts};
pub use error::{IndexError, Result};
pub use graph::{AncestryGraph, Direction, Edge};
pub use interval::IntervalClosure;
pub use keyword::KeywordIndex;
pub use posting::PostingList;
pub use time::TimeIndex;
