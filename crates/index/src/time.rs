//! Time-interval index.
//!
//! Tuple sets carry `[time.start, time.end]` windows; the dominant sensor
//! query shape is "overlaps `[a, b]`" (§III: commuters query by location,
//! planners by time). Intervals are kept sorted by start with a parallel
//! prefix-maximum of ends, so an overlap query binary-searches the start
//! bound and then scans only a bounded tail.

use crate::arena::NodeIdx;
use crate::posting::PostingList;
use pass_model::TimeRange;

/// An index over closed time intervals.
#[derive(Debug, Default, Clone)]
pub struct TimeIndex {
    /// (start, end, node), sorted by (start, end, node) once built.
    intervals: Vec<(u64, u64, NodeIdx)>,
    /// `prefix_max_end[i]` = max end among `intervals[..=i]`; rebuilt lazily.
    prefix_max_end: Vec<u64>,
    dirty: bool,
}

impl TimeIndex {
    /// An empty index.
    pub fn new() -> Self {
        TimeIndex::default()
    }

    /// Adds an interval.
    pub fn insert(&mut self, idx: NodeIdx, range: TimeRange) {
        self.intervals.push((range.start.0, range.end.0, idx));
        self.dirty = true;
    }

    /// Sorts the interval table and rebuilds the prefix-maximum, making
    /// queries `O(log n + answer)`. The batched ingest path calls this
    /// once per committed batch, so shared (snapshot) readers never need a
    /// write lock; an unbuilt index still answers queries via a linear
    /// scan.
    pub fn build(&mut self) {
        if !self.dirty {
            return;
        }
        self.intervals.sort_unstable();
        self.prefix_max_end.clear();
        self.prefix_max_end.reserve(self.intervals.len());
        let mut max_end = 0u64;
        for &(_, end, _) in &self.intervals {
            max_end = max_end.max(end);
            self.prefix_max_end.push(max_end);
        }
        self.dirty = false;
    }

    /// Nodes whose interval overlaps `query` (closed-interval semantics).
    ///
    /// Lock-free: when the index has pending unsorted inserts (no
    /// [`TimeIndex::build`] since), this falls back to a full scan rather
    /// than mutating shared state.
    pub fn overlapping(&self, query: TimeRange) -> PostingList {
        if self.dirty {
            return PostingList::from_iter(
                self.intervals
                    .iter()
                    .filter(|&&(start, end, _)| start <= query.end.0 && end >= query.start.0)
                    .map(|&(_, _, node)| node),
            );
        }
        // Candidates must have start <= query.end.
        let upper = self.intervals.partition_point(|&(start, _, _)| start <= query.end.0);
        // Walk backwards; once the prefix max end drops below query.start,
        // nothing earlier can overlap.
        let mut out = Vec::new();
        for i in (0..upper).rev() {
            if self.prefix_max_end[i] < query.start.0 {
                break;
            }
            let (_, end, node) = self.intervals[i];
            if end >= query.start.0 {
                out.push(node);
            }
        }
        PostingList::from_iter(out)
    }

    /// Nodes whose interval lies entirely within `query` (same laziness
    /// contract as [`TimeIndex::overlapping`]).
    pub fn covered_by(&self, query: TimeRange) -> PostingList {
        if self.dirty {
            return PostingList::from_iter(
                self.intervals
                    .iter()
                    .filter(|&&(start, end, _)| start >= query.start.0 && end <= query.end.0)
                    .map(|&(_, _, node)| node),
            );
        }
        let lower = self.intervals.partition_point(|&(start, _, _)| start < query.start.0);
        let upper = self.intervals.partition_point(|&(start, _, _)| start <= query.end.0);
        PostingList::from_iter(
            self.intervals[lower..upper]
                .iter()
                .filter(|&&(_, end, _)| end <= query.end.0)
                .map(|&(_, _, node)| node),
        )
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Rough heap footprint.
    pub fn size_bytes(&self) -> usize {
        self.intervals.capacity() * std::mem::size_of::<(u64, u64, NodeIdx)>()
            + self.prefix_max_end.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::Timestamp;

    fn range(a: u64, b: u64) -> TimeRange {
        TimeRange::new(Timestamp(a), Timestamp(b))
    }

    fn sample() -> TimeIndex {
        let mut ix = TimeIndex::new();
        ix.insert(0, range(0, 10));
        ix.insert(1, range(5, 15));
        ix.insert(2, range(20, 30));
        ix.insert(3, range(0, 100)); // long interval spanning everything
        ix
    }

    #[test]
    fn overlap_queries() {
        let ix = sample();
        assert_eq!(ix.overlapping(range(12, 18)).as_slice(), &[1, 3]);
        assert_eq!(ix.overlapping(range(10, 10)).as_slice(), &[0, 1, 3]);
        assert_eq!(ix.overlapping(range(16, 19)).as_slice(), &[3]);
        assert_eq!(ix.overlapping(range(0, 100)).len(), 4);
        assert!(ix.overlapping(range(101, 200)).as_slice() == &[] as &[u32]);
    }

    #[test]
    fn long_interval_found_despite_early_start() {
        // The prefix-max walk must not stop early and miss node 3.
        let mut ix = TimeIndex::new();
        ix.insert(0, range(0, 1000));
        for i in 1..100u32 {
            ix.insert(i, range(u64::from(i) * 2, u64::from(i) * 2 + 1));
        }
        let got = ix.overlapping(range(500, 501));
        assert!(got.contains(0), "long early interval must be found");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn covered_by_requires_full_containment() {
        let ix = sample();
        assert_eq!(ix.covered_by(range(0, 15)).as_slice(), &[0, 1]);
        assert_eq!(ix.covered_by(range(0, 100)).len(), 4);
        assert!(ix.covered_by(range(6, 9)).is_empty());
    }

    #[test]
    fn inserts_after_query_are_visible() {
        let mut ix = sample();
        assert_eq!(ix.overlapping(range(50, 60)).as_slice(), &[3]);
        ix.insert(9, range(55, 56));
        assert_eq!(ix.overlapping(range(50, 60)).as_slice(), &[3, 9]);
    }

    #[test]
    fn instant_intervals() {
        let mut ix = TimeIndex::new();
        ix.insert(0, range(5, 5));
        assert_eq!(ix.overlapping(range(5, 5)).as_slice(), &[0]);
        assert!(ix.overlapping(range(4, 4)).is_empty());
        assert!(ix.overlapping(range(6, 6)).is_empty());
    }
}
