//! Tree-cover interval labeling (Agrawal–Borgida–Jagadish style).
//!
//! The middle point of the E3 ablation: queries nearly as fast as fully
//! materialized bitsets, memory closer to the raw graph. The construction:
//!
//! 1. Pick a spanning forest of the DAG (each node keeps one incoming
//!    edge as its *tree* edge) and number nodes by DFS postorder.
//! 2. A node's *tree interval* `[low, post]` covers exactly its tree
//!    descendants.
//! 3. Walk nodes in reverse topological order, setting
//!    `label(v) = {tree_interval(v)} ∪ ⋃ label(w)` over all DAG successors
//!    `w`, merging overlapping intervals. Non-tree reachability shows up
//!    as extra intervals; tree reachability is absorbed into the tree
//!    interval.
//!
//! `v ∈ reach(u)` ⟺ `post(v)` falls inside some interval of `label(u)`.

use crate::arena::NodeIdx;
use crate::closure::{BfsClosure, ReachStrategy, TraverseOpts};
use crate::error::Result;
use crate::graph::{AncestryGraph, Direction};

/// Interval labels for one traversal direction.
#[derive(Debug)]
struct Labeling {
    /// Merged, sorted `[low, high]` post-number intervals per node.
    labels: Vec<Vec<(u32, u32)>>,
    /// Postorder number per node.
    post: Vec<u32>,
    /// Node at each postorder number (inverse of `post`).
    node_at_post: Vec<NodeIdx>,
}

impl Labeling {
    fn build(g: &AncestryGraph, dir: Direction, skip_abstracted: bool) -> Result<Self> {
        let n = g.node_count();
        let mut order = g.topo_order()?;
        if dir == Direction::Ancestors {
            // succ(v) for Ancestors = parents; process order must put
            // successors (parents) *later* during the reverse walk, i.e.
            // reverse the conventional order.
            order.reverse();
        }
        // `order` now lists predecessors-before-successors w.r.t. `dir`.

        // Spanning forest: each node's tree parent is its first
        // predecessor (w.r.t. dir); roots have none.
        let pred_dir = match dir {
            Direction::Ancestors => Direction::Descendants,
            Direction::Descendants => Direction::Ancestors,
        };
        let mut tree_children: Vec<Vec<NodeIdx>> = vec![Vec::new(); n];
        let mut roots: Vec<NodeIdx> = Vec::new();
        for &v in &order {
            let tree_parent = g
                .neighbors(v, pred_dir)
                .iter()
                .find(|e| !(skip_abstracted && e.abstracted))
                .map(|e| e.node);
            match tree_parent {
                Some(p) => tree_children[p as usize].push(v),
                None => roots.push(v),
            }
        }

        // Iterative DFS postorder over the forest.
        let mut post = vec![0u32; n];
        let mut low = vec![0u32; n];
        let mut node_at_post = vec![0 as NodeIdx; n];
        let mut counter = 0u32;
        for &root in &roots {
            // Stack of (node, child cursor).
            let mut stack: Vec<(NodeIdx, usize)> = vec![(root, 0)];
            let mut lows: Vec<u32> = vec![counter];
            while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
                if *cursor < tree_children[node as usize].len() {
                    let child = tree_children[node as usize][*cursor];
                    *cursor += 1;
                    stack.push((child, 0));
                    lows.push(counter);
                } else {
                    stack.pop();
                    let my_low = lows.pop().expect("low per frame");
                    low[node as usize] = my_low;
                    post[node as usize] = counter;
                    node_at_post[counter as usize] = node;
                    counter += 1;
                }
            }
        }
        debug_assert_eq!(counter as usize, n, "every node must be numbered");

        // Reverse-topo accumulation: successors first.
        let mut labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for &v in order.iter().rev() {
            let mut intervals = vec![(low[v as usize], post[v as usize])];
            for e in g.neighbors(v, dir) {
                if skip_abstracted && e.abstracted {
                    continue;
                }
                intervals.extend_from_slice(&labels[e.node as usize]);
            }
            labels[v as usize] = merge_intervals(intervals);
        }
        Ok(Labeling { labels, post, node_at_post })
    }

    fn reachable(&self, from: NodeIdx) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        let own_post = self.post[from as usize];
        for &(lo, hi) in &self.labels[from as usize] {
            for p in lo..=hi {
                let node = self.node_at_post[p as usize];
                if p != own_post {
                    out.push(node);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn contains(&self, from: NodeIdx, target: NodeIdx) -> bool {
        if from == target {
            return false;
        }
        let p = self.post[target as usize];
        self.labels[from as usize].iter().any(|&(lo, hi)| lo <= p && p <= hi)
    }

    fn size_bytes(&self) -> usize {
        self.labels.iter().map(|l| l.capacity() * 8).sum::<usize>() + self.post.len() * 8
    }
}

/// Merges `[lo, hi]` integer intervals (overlapping *or adjacent*).
fn merge_intervals(mut intervals: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    if intervals.is_empty() {
        return intervals;
    }
    intervals.sort_unstable();
    let mut out = Vec::with_capacity(intervals.len());
    let (mut lo, mut hi) = intervals[0];
    for &(l, h) in &intervals[1..] {
        if l <= hi.saturating_add(1) {
            hi = hi.max(h);
        } else {
            out.push((lo, hi));
            lo = l;
            hi = h;
        }
    }
    out.push((lo, hi));
    out
}

/// Interval-labeled closure over both directions.
#[derive(Debug)]
pub struct IntervalClosure {
    ancestors: Labeling,
    descendants: Labeling,
    skip_abstracted: bool,
}

impl IntervalClosure {
    /// Builds labelings for both directions. Fails on cyclic graphs.
    pub fn build(g: &AncestryGraph, skip_abstracted: bool) -> Result<Self> {
        Ok(IntervalClosure {
            ancestors: Labeling::build(g, Direction::Ancestors, skip_abstracted)?,
            descendants: Labeling::build(g, Direction::Descendants, skip_abstracted)?,
            skip_abstracted,
        })
    }

    /// Point reachability test (`target` reachable from `from`?).
    pub fn contains(&self, from: NodeIdx, dir: Direction, target: NodeIdx) -> bool {
        match dir {
            Direction::Ancestors => self.ancestors.contains(from, target),
            Direction::Descendants => self.descendants.contains(from, target),
        }
    }

    /// Bytes held by the labels.
    pub fn size_bytes(&self) -> usize {
        self.ancestors.size_bytes() + self.descendants.size_bytes()
    }
}

impl ReachStrategy for IntervalClosure {
    fn name(&self) -> &'static str {
        "interval-label"
    }

    fn reachable(
        &self,
        g: &AncestryGraph,
        from: NodeIdx,
        dir: Direction,
        opts: &TraverseOpts,
    ) -> Vec<NodeIdx> {
        if opts.max_depth.is_some() || opts.stop_at_abstraction != self.skip_abstracted {
            return BfsClosure.reachable(g, from, dir, opts);
        }
        match dir {
            Direction::Ancestors => self.ancestors.reachable(from),
            Direction::Descendants => self.descendants.reachable(from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::TupleSetId;

    fn id(n: u128) -> TupleSetId {
        TupleSetId(n)
    }

    fn ids(g: &AncestryGraph, idxs: Vec<NodeIdx>) -> Vec<u128> {
        let mut v: Vec<u128> = g.resolve_all(&idxs).into_iter().map(|t| t.0).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merge_intervals_cases() {
        assert_eq!(merge_intervals(vec![]), vec![]);
        assert_eq!(merge_intervals(vec![(1, 3), (2, 5)]), vec![(1, 5)]);
        assert_eq!(merge_intervals(vec![(1, 2), (3, 4)]), vec![(1, 4)], "adjacent merge");
        assert_eq!(merge_intervals(vec![(1, 2), (5, 6)]), vec![(1, 2), (5, 6)]);
        assert_eq!(merge_intervals(vec![(5, 6), (1, 2), (2, 4)]), vec![(1, 6)]);
    }

    #[test]
    fn chain_reachability() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        for i in 2..=6u128 {
            g.insert(id(i), &[(id(i - 1), false)]);
        }
        let ic = IntervalClosure::build(&g, false).unwrap();
        let leaf = g.lookup(id(6)).unwrap();
        let got = ic.reachable(&g, leaf, Direction::Ancestors, &TraverseOpts::unbounded());
        assert_eq!(ids(&g, got), vec![1, 2, 3, 4, 5]);
        let root = g.lookup(id(1)).unwrap();
        let got = ic.reachable(&g, root, Direction::Descendants, &TraverseOpts::unbounded());
        assert_eq!(ids(&g, got), vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn diamond_with_cross_edges_matches_bfs() {
        // Dense little DAG exercising non-tree edges.
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), false)]);
        g.insert(id(3), &[(id(1), false)]);
        g.insert(id(4), &[(id(2), false), (id(3), false)]);
        g.insert(id(5), &[(id(4), false), (id(2), false)]);
        g.insert(id(6), &[(id(3), false), (id(5), false), (id(1), false)]);
        let ic = IntervalClosure::build(&g, false).unwrap();
        for node in 0..g.node_count() as u32 {
            for dir in [Direction::Ancestors, Direction::Descendants] {
                let got = ic.reachable(&g, node, dir, &TraverseOpts::unbounded());
                let want = BfsClosure.reachable(&g, node, dir, &TraverseOpts::unbounded());
                assert_eq!(got, want, "node {node} dir {dir:?}");
            }
        }
    }

    #[test]
    fn point_containment_queries() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), false)]);
        g.insert(id(3), &[]);
        let ic = IntervalClosure::build(&g, false).unwrap();
        let one = g.lookup(id(1)).unwrap();
        let two = g.lookup(id(2)).unwrap();
        let three = g.lookup(id(3)).unwrap();
        assert!(ic.contains(two, Direction::Ancestors, one));
        assert!(!ic.contains(two, Direction::Ancestors, three));
        assert!(ic.contains(one, Direction::Descendants, two));
        assert!(!ic.contains(one, Direction::Ancestors, one), "self is excluded");
    }

    #[test]
    fn abstraction_respected_when_baked_in() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), true)]); // abstracted edge
        g.insert(id(3), &[(id(2), false)]);
        let ic = IntervalClosure::build(&g, true).unwrap();
        let three = g.lookup(id(3)).unwrap();
        let opts = TraverseOpts { stop_at_abstraction: true, ..Default::default() };
        let got = ic.reachable(&g, three, Direction::Ancestors, &opts);
        assert_eq!(ids(&g, got), vec![2], "traversal stops at abstracted edge");
    }

    #[test]
    fn forest_of_disconnected_components() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), false)]);
        g.insert(id(10), &[]);
        g.insert(id(11), &[(id(10), false)]);
        let ic = IntervalClosure::build(&g, false).unwrap();
        let two = g.lookup(id(2)).unwrap();
        let got = ic.reachable(&g, two, Direction::Ancestors, &TraverseOpts::unbounded());
        assert_eq!(ids(&g, got), vec![1], "components stay separate");
    }
}
