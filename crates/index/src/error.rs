//! Index-layer errors.

use std::fmt;

/// Errors raised by index construction or maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A precomputed reachability structure requires a DAG, but the graph
    /// contains a cycle through this node. Well-formed provenance is
    /// acyclic (identities are digests of parent identities), so a cycle
    /// indicates corrupted or hand-forged records.
    CycleDetected {
        /// A node on the detected cycle (dense index).
        node: u32,
    },
    /// A dense node index was out of range for this graph.
    UnknownNode(u32),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::CycleDetected { node } => {
                write!(f, "ancestry graph contains a cycle through node {node}")
            }
            IndexError::UnknownNode(n) => write!(f, "unknown node index {n}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, IndexError>;
