//! The attribute index: per-attribute sorted value maps over posting
//! lists. This is the "efficient lookups in many dimensions" structure of
//! §II-B: any attribute can be queried by equality or range, with no
//! significance ordering among attributes (the failure §IV-B pins on
//! hierarchical namespaces).

use crate::arena::NodeIdx;
use crate::posting::PostingList;
use pass_model::{Attributes, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// An inverted index from `(attribute, value)` to posting lists, with
/// ordered values per attribute so range predicates are index-served.
#[derive(Debug, Default, Clone)]
pub struct AttrIndex {
    by_attr: HashMap<String, BTreeMap<Value, PostingList>>,
    entries: u64,
}

impl AttrIndex {
    /// An empty index.
    pub fn new() -> Self {
        AttrIndex::default()
    }

    /// Indexes every attribute of a record.
    pub fn insert_attrs(&mut self, idx: NodeIdx, attrs: &Attributes) {
        for (name, value) in attrs.iter() {
            self.insert(idx, name, value.clone());
        }
    }

    /// Indexes a single `(attribute, value)` pair.
    pub fn insert(&mut self, idx: NodeIdx, name: &str, value: Value) {
        self.by_attr.entry(name.to_owned()).or_default().entry(value).or_default().insert(idx);
        self.entries += 1;
    }

    /// Bulk-indexes `(node, attribute, value)` triples from a whole ingest
    /// batch. Entries are sorted once and merged group-by-group into the
    /// posting lists (`PostingList::extend_sorted`), so index maintenance
    /// costs one sort plus one merge per touched `(attr, value)` pair
    /// instead of one ordered insert per triple.
    pub fn insert_bulk(&mut self, mut entries: Vec<(NodeIdx, String, Value)>) {
        self.entries += entries.len() as u64;
        entries.sort_unstable_by(|a, b| {
            a.1.cmp(&b.1).then_with(|| a.2.cmp(&b.2)).then_with(|| a.0.cmp(&b.0))
        });
        let mut entries = entries.into_iter().peekable();
        let mut run: Vec<NodeIdx> = Vec::new();
        while let Some((idx, name, value)) = entries.next() {
            run.clear();
            run.push(idx);
            while let Some((nidx, _, _)) = entries.next_if(|(_, n, v)| *n == name && *v == value) {
                run.push(nidx);
            }
            self.by_attr.entry(name).or_default().entry(value).or_default().extend_sorted(&run);
        }
    }

    /// Posting list for `attr = value` (empty when absent).
    pub fn eq(&self, name: &str, value: &Value) -> PostingList {
        self.by_attr.get(name).and_then(|m| m.get(value)).cloned().unwrap_or_default()
    }

    /// Posting list for `low <op> attr <op> high` with inclusive/exclusive
    /// bounds. `None` bounds are unbounded.
    pub fn range(&self, name: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
        let Some(m) = self.by_attr.get(name) else {
            return PostingList::new();
        };
        // Guard inverted bounds: BTreeMap::range panics on start > end.
        if let (Bound::Included(l) | Bound::Excluded(l), Bound::Included(h) | Bound::Excluded(h)) =
            (&low, &high)
        {
            if l > h {
                return PostingList::new();
            }
        }
        let lists: Vec<&PostingList> = m.range((low, high)).map(|(_, pl)| pl).collect();
        PostingList::union_all(lists)
    }

    /// Posting list of every node that *has* the attribute, any value.
    pub fn has_attr(&self, name: &str) -> PostingList {
        let Some(m) = self.by_attr.get(name) else {
            return PostingList::new();
        };
        PostingList::union_all(m.values().collect())
    }

    /// Number of distinct values recorded for an attribute (selectivity
    /// statistics for the planner).
    pub fn distinct_values(&self, name: &str) -> usize {
        self.by_attr.get(name).map_or(0, BTreeMap::len)
    }

    /// Total postings under an attribute (≈ how many records carry it).
    pub fn attr_cardinality(&self, name: &str) -> usize {
        self.by_attr.get(name).map_or(0, |m| m.values().map(PostingList::len).sum())
    }

    /// Attribute names present in the index.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.by_attr.keys().map(String::as_str)
    }

    /// Total `(attr, value, node)` entries indexed.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Rough heap footprint, for the E1 index-size series.
    pub fn size_bytes(&self) -> usize {
        self.by_attr
            .iter()
            .map(|(name, m)| {
                name.len()
                    + m.iter().map(|(v, pl)| value_size(v) + pl.size_bytes() + 32).sum::<usize>()
            })
            .sum()
    }
}

fn value_size(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::List(vs) => vs.iter().map(value_size).sum(),
            _ => 0,
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::Timestamp;

    fn sample() -> AttrIndex {
        let mut ix = AttrIndex::new();
        for (i, (domain, count)) in
            [("traffic", 10i64), ("traffic", 20), ("weather", 30), ("medical", 20)]
                .iter()
                .enumerate()
        {
            let attrs = Attributes::new().with("domain", *domain).with("count", *count);
            ix.insert_attrs(i as NodeIdx, &attrs);
        }
        ix
    }

    #[test]
    fn eq_lookup() {
        let ix = sample();
        assert_eq!(ix.eq("domain", &Value::from("traffic")).as_slice(), &[0, 1]);
        assert_eq!(ix.eq("domain", &Value::from("weather")).as_slice(), &[2]);
        assert!(ix.eq("domain", &Value::from("volcano")).is_empty());
        assert!(ix.eq("missing", &Value::from("x")).is_empty());
    }

    #[test]
    fn range_lookup_inclusive_exclusive() {
        let ix = sample();
        let got =
            ix.range("count", Bound::Included(&Value::Int(20)), Bound::Included(&Value::Int(30)));
        assert_eq!(got.as_slice(), &[1, 2, 3]);
        let got = ix.range("count", Bound::Excluded(&Value::Int(20)), Bound::Unbounded);
        assert_eq!(got.as_slice(), &[2]);
    }

    #[test]
    fn inverted_range_is_empty_not_panic() {
        let ix = sample();
        let got =
            ix.range("count", Bound::Included(&Value::Int(30)), Bound::Included(&Value::Int(10)));
        assert!(got.is_empty());
    }

    #[test]
    fn has_attr_unions_all_values() {
        let ix = sample();
        assert_eq!(ix.has_attr("domain").len(), 4);
        assert!(ix.has_attr("nope").is_empty());
    }

    #[test]
    fn selectivity_stats() {
        let ix = sample();
        assert_eq!(ix.distinct_values("domain"), 3);
        assert_eq!(ix.attr_cardinality("domain"), 4);
        assert_eq!(ix.distinct_values("missing"), 0);
    }

    #[test]
    fn values_of_mixed_types_coexist_under_one_attr() {
        let mut ix = AttrIndex::new();
        ix.insert(0, "k", Value::Int(5));
        ix.insert(1, "k", Value::Str("five".into()));
        ix.insert(2, "k", Value::Time(Timestamp(5)));
        assert_eq!(ix.eq("k", &Value::Int(5)).as_slice(), &[0]);
        assert_eq!(ix.eq("k", &Value::from("five")).as_slice(), &[1]);
        assert_eq!(ix.has_attr("k").len(), 3);
    }

    #[test]
    fn size_bytes_is_nonzero_once_populated() {
        assert_eq!(AttrIndex::new().size_bytes(), 0);
        assert!(sample().size_bytes() > 0);
    }
}
