//! The ancestry graph: derivation edges between tuple sets.
//!
//! "Queries are often recursive, as there may have been several steps
//! involved with multiple intermediate data sets" (§II-B). The graph keeps
//! parent and child adjacency so closure queries run in both directions —
//! "backwards, to find ultimate origins, and also forwards, to find
//! derived data that may be many generations downstream" (§III-D).
//!
//! Parents referenced before (or without ever) being inserted get
//! placeholder nodes: provenance must survive ancestor removal (PASS
//! property 4) and ancestors may live at other sites.

use crate::arena::{IdArena, NodeIdx};
use pass_model::TupleSetId;

/// One directed derivation edge (child → parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The adjacent node.
    pub node: NodeIdx,
    /// True when this derivation crossed an abstraction boundary (§V:
    /// "gcc 3.3.3"): traversals may stop here instead of expanding.
    pub abstracted: bool,
}

/// Direction of a closure traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow child → parent edges ("find ultimate origins").
    Ancestors,
    /// Follow parent → child edges ("find all downstream data").
    Descendants,
}

/// The in-memory ancestry DAG.
#[derive(Debug, Default, Clone)]
pub struct AncestryGraph {
    arena: IdArena,
    parents: Vec<Vec<Edge>>,
    children: Vec<Vec<Edge>>,
    /// Nodes that exist only as referenced parents, never inserted.
    placeholder: Vec<bool>,
    edge_count: usize,
}

impl AncestryGraph {
    /// An empty graph.
    pub fn new() -> Self {
        AncestryGraph::default()
    }

    fn ensure_node(&mut self, id: TupleSetId, is_placeholder: bool) -> NodeIdx {
        let idx = self.arena.intern(id);
        while self.parents.len() <= idx as usize {
            self.parents.push(Vec::new());
            self.children.push(Vec::new());
            self.placeholder.push(true);
        }
        if !is_placeholder {
            self.placeholder[idx as usize] = false;
        }
        idx
    }

    /// Inserts (or completes) a node with its derivation edges.
    /// `parents` pairs each parent id with the `abstracted` flag of the
    /// tool that performed the derivation.
    pub fn insert(&mut self, id: TupleSetId, parents: &[(TupleSetId, bool)]) -> NodeIdx {
        let idx = self.ensure_node(id, false);
        for &(parent_id, abstracted) in parents {
            let pidx = self.ensure_node(parent_id, true);
            self.parents[idx as usize].push(Edge { node: pidx, abstracted });
            self.children[pidx as usize].push(Edge { node: idx, abstracted });
            self.edge_count += 1;
        }
        idx
    }

    /// Dense index of an id, if known.
    pub fn lookup(&self, id: TupleSetId) -> Option<NodeIdx> {
        self.arena.lookup(id)
    }

    /// Identity behind a dense index.
    pub fn resolve(&self, idx: NodeIdx) -> Option<TupleSetId> {
        self.arena.resolve(idx)
    }

    /// Maps dense indexes back to identities.
    pub fn resolve_all(&self, idxs: &[NodeIdx]) -> Vec<TupleSetId> {
        self.arena.resolve_all(idxs)
    }

    /// Edges toward parents of `idx`.
    pub fn parents_of(&self, idx: NodeIdx) -> &[Edge] {
        self.parents.get(idx as usize).map_or(&[], Vec::as_slice)
    }

    /// Edges toward children of `idx`.
    pub fn children_of(&self, idx: NodeIdx) -> &[Edge] {
        self.children.get(idx as usize).map_or(&[], Vec::as_slice)
    }

    /// Adjacency in a traversal direction.
    pub fn neighbors(&self, idx: NodeIdx, dir: Direction) -> &[Edge] {
        match dir {
            Direction::Ancestors => self.parents_of(idx),
            Direction::Descendants => self.children_of(idx),
        }
    }

    /// True when the node was only ever referenced as a parent (removed
    /// ancestor or remote tuple set).
    pub fn is_placeholder(&self, idx: NodeIdx) -> bool {
        self.placeholder.get(idx as usize).copied().unwrap_or(false)
    }

    /// Number of nodes (placeholders included).
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of derivation edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// All edges as `(child, parent, abstracted)` triples — the flat
    /// relation the naive-join closure baseline scans.
    pub fn all_edges(&self) -> Vec<(NodeIdx, NodeIdx, bool)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (child, edges) in self.parents.iter().enumerate() {
            for e in edges {
                out.push((child as NodeIdx, e.node, e.abstracted));
            }
        }
        out
    }

    /// Topological order (parents before children), or the node on a cycle.
    ///
    /// Well-formed provenance cannot cycle (identity hashes bind children
    /// to parents), so an `Err` here means forged or corrupt records.
    pub fn topo_order(&self) -> Result<Vec<NodeIdx>, crate::error::IndexError> {
        let n = self.node_count();
        let mut in_deg = vec![0u32; n];
        for edges in &self.parents {
            // Node has `edges.len()` parents; in-degree counts parents.
            let _ = edges;
        }
        for (child, edges) in self.parents.iter().enumerate() {
            in_deg[child] = edges.len() as u32;
        }
        let mut queue: Vec<NodeIdx> = (0..n as u32).filter(|&i| in_deg[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0usize;
        while head < queue.len() {
            let node = queue[head];
            head += 1;
            order.push(node);
            for e in self.children_of(node) {
                in_deg[e.node as usize] -= 1;
                if in_deg[e.node as usize] == 0 {
                    queue.push(e.node);
                }
            }
        }
        if order.len() != n {
            let culprit = (0..n as u32).find(|&i| in_deg[i as usize] > 0).unwrap_or(0);
            return Err(crate::error::IndexError::CycleDetected { node: culprit });
        }
        Ok(order)
    }

    /// Rough heap footprint.
    pub fn size_bytes(&self) -> usize {
        let edge = std::mem::size_of::<Edge>();
        self.parents.iter().map(|v| v.capacity() * edge).sum::<usize>()
            + self.children.iter().map(|v| v.capacity() * edge).sum::<usize>()
            + self.node_count() * (16 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u128) -> TupleSetId {
        TupleSetId(n)
    }

    #[test]
    fn insert_builds_bidirectional_adjacency() {
        let mut g = AncestryGraph::new();
        let raw = g.insert(id(1), &[]);
        let derived = g.insert(id(2), &[(id(1), false)]);
        assert_eq!(g.parents_of(derived), &[Edge { node: raw, abstracted: false }]);
        assert_eq!(g.children_of(raw), &[Edge { node: derived, abstracted: false }]);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn forward_references_create_placeholders() {
        let mut g = AncestryGraph::new();
        let child = g.insert(id(2), &[(id(1), false)]);
        let parent = g.lookup(id(1)).unwrap();
        assert!(g.is_placeholder(parent));
        assert!(!g.is_placeholder(child));
        // Later real insert clears the placeholder bit.
        g.insert(id(1), &[]);
        assert!(!g.is_placeholder(parent));
    }

    #[test]
    fn diamond_topology() {
        // 1 -> 2, 1 -> 3, {2,3} -> 4
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), false)]);
        g.insert(id(3), &[(id(1), false)]);
        let four = g.insert(id(4), &[(id(2), false), (id(3), false)]);
        assert_eq!(g.parents_of(four).len(), 2);
        let order = g.topo_order().unwrap();
        let pos = |x: TupleSetId| order.iter().position(|&n| g.resolve(n) == Some(x)).unwrap();
        assert!(pos(id(1)) < pos(id(2)));
        assert!(pos(id(1)) < pos(id(3)));
        assert!(pos(id(2)) < pos(id(4)));
        assert!(pos(id(3)) < pos(id(4)));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[(id(2), false)]);
        g.insert(id(2), &[(id(1), false)]);
        assert!(matches!(g.topo_order(), Err(crate::error::IndexError::CycleDetected { .. })));
    }

    #[test]
    fn abstracted_flag_is_preserved_per_edge() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        let c = g.insert(id(3), &[(id(1), true)]);
        assert!(g.parents_of(c)[0].abstracted);
    }

    #[test]
    fn all_edges_lists_child_parent_pairs() {
        let mut g = AncestryGraph::new();
        g.insert(id(1), &[]);
        g.insert(id(2), &[(id(1), false)]);
        g.insert(id(3), &[(id(1), true), (id(2), false)]);
        let mut edges = g.all_edges();
        edges.sort();
        let one = g.lookup(id(1)).unwrap();
        let two = g.lookup(id(2)).unwrap();
        let three = g.lookup(id(3)).unwrap();
        assert_eq!(edges, vec![(two, one, false), (three, one, true), (three, two, false)]);
    }
}
