//! Property tests: posting-list algebra must match naive set algebra, and
//! all four closure strategies must agree on arbitrary DAGs.

use pass_index::closure::{BfsClosure, MemoClosure, NaiveJoinClosure, ReachStrategy, TraverseOpts};
use pass_index::{AncestryGraph, Direction, IntervalClosure, PostingList};
use pass_model::TupleSetId;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_list() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..200, 0..60)
}

/// A random DAG: each node links to a random subset of lower-numbered
/// nodes (guarantees acyclicity), with some edges marked abstracted.
fn arb_dag() -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..1000, any::<bool>(), 1u32..4), 0..4),
        1..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, parents)| {
                parents
                    .into_iter()
                    .filter(|_| i > 0)
                    .map(|(p, abs, _)| (p % i.max(1), abs))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect()
            })
            .collect()
    })
}

fn build_graph(dag: &[Vec<(usize, bool)>]) -> AncestryGraph {
    let mut g = AncestryGraph::new();
    for (i, parents) in dag.iter().enumerate() {
        let edges: Vec<(TupleSetId, bool)> =
            parents.iter().map(|&(p, abs)| (TupleSetId(p as u128 + 1), abs)).collect();
        g.insert(TupleSetId(i as u128 + 1), &edges);
    }
    g
}

proptest! {
    #[test]
    fn posting_algebra_matches_sets(a in arb_list(), b in arb_list()) {
        let pa = PostingList::from_iter(a.iter().copied());
        let pb = PostingList::from_iter(b.iter().copied());
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();

        let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
        let got_inter = pa.intersect(&pb);
        prop_assert_eq!(got_inter.as_slice(), inter.as_slice());

        let uni: Vec<u32> = sa.union(&sb).copied().collect();
        let got_uni = pa.union(&pb);
        prop_assert_eq!(got_uni.as_slice(), uni.as_slice());

        let diff: Vec<u32> = sa.difference(&sb).copied().collect();
        let got_diff = pa.difference(&pb);
        prop_assert_eq!(got_diff.as_slice(), diff.as_slice());
    }

    #[test]
    fn intersect_is_commutative_and_bounded(a in arb_list(), b in arb_list()) {
        let pa = PostingList::from_iter(a.iter().copied());
        let pb = PostingList::from_iter(b.iter().copied());
        let ab = pa.intersect(&pb);
        let ba = pb.intersect(&pa);
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
        prop_assert!(ab.len() <= pa.len().min(pb.len()));
    }

    #[test]
    fn closure_strategies_agree_on_random_dags(dag in arb_dag()) {
        let g = build_graph(&dag);
        let memo = MemoClosure::build(&g, false).unwrap();
        let interval = IntervalClosure::build(&g, false).unwrap();
        let opts = TraverseOpts::unbounded();
        for node in 0..g.node_count() as u32 {
            for dir in [Direction::Ancestors, Direction::Descendants] {
                let want = BfsClosure.reachable(&g, node, dir, &opts);
                let naive = NaiveJoinClosure.reachable(&g, node, dir, &opts);
                prop_assert_eq!(&naive, &want, "naive vs bfs at {} {:?}", node, dir);
                let m = memo.reachable(&g, node, dir, &opts);
                prop_assert_eq!(&m, &want, "memo vs bfs at {} {:?}", node, dir);
                let iv = interval.reachable(&g, node, dir, &opts);
                prop_assert_eq!(&iv, &want, "interval vs bfs at {} {:?}", node, dir);
            }
        }
    }

    #[test]
    fn closure_strategies_agree_with_abstraction(dag in arb_dag()) {
        let g = build_graph(&dag);
        let memo = MemoClosure::build(&g, true).unwrap();
        let interval = IntervalClosure::build(&g, true).unwrap();
        let opts = TraverseOpts { stop_at_abstraction: true, ..TraverseOpts::default() };
        for node in (0..g.node_count() as u32).step_by(3) {
            for dir in [Direction::Ancestors, Direction::Descendants] {
                let want = BfsClosure.reachable(&g, node, dir, &opts);
                prop_assert_eq!(&NaiveJoinClosure.reachable(&g, node, dir, &opts), &want);
                prop_assert_eq!(&memo.reachable(&g, node, dir, &opts), &want);
                prop_assert_eq!(&interval.reachable(&g, node, dir, &opts), &want);
            }
        }
    }

    #[test]
    fn depth_limited_bfs_is_prefix_of_unbounded(dag in arb_dag(), depth in 1u32..5) {
        let g = build_graph(&dag);
        for node in (0..g.node_count() as u32).step_by(2) {
            let full = BfsClosure.reachable(&g, node, Direction::Ancestors, &TraverseOpts::unbounded());
            let limited = BfsClosure.reachable(&g, node, Direction::Ancestors, &TraverseOpts::depth(depth));
            // Depth-limited results are a subset of the full closure.
            let full_set: BTreeSet<u32> = full.into_iter().collect();
            prop_assert!(limited.iter().all(|n| full_set.contains(n)));
        }
    }

    #[test]
    fn interval_point_queries_match_set_queries(dag in arb_dag()) {
        let g = build_graph(&dag);
        let interval = IntervalClosure::build(&g, false).unwrap();
        for node in (0..g.node_count() as u32).step_by(2) {
            let set: BTreeSet<u32> = interval
                .reachable(&g, node, Direction::Ancestors, &TraverseOpts::unbounded())
                .into_iter()
                .collect();
            for target in 0..g.node_count() as u32 {
                prop_assert_eq!(
                    interval.contains(node, Direction::Ancestors, target),
                    set.contains(&target),
                    "node {} target {}", node, target
                );
            }
        }
    }
}
