//! Synthetic publish workload.
//!
//! Batches must be *unique* — the store is content-addressed, so
//! resending identical readings would dedup into cheap idempotent
//! commits and flatter the latency numbers. Every tuple set here is
//! keyed by `(connection, sequence, slot)` down to its reading times
//! and field values.

use pass_model::{ProvenanceBuilder, Reading, SensorId, SiteId, Timestamp, TupleSet};

/// Builds one publish batch for connection `conn`, batch sequence
/// number `seq`: `sets` tuple sets of `readings` readings each.
pub fn batch(conn: u32, seq: u64, sets: usize, readings: usize) -> Vec<TupleSet> {
    (0..sets.max(1))
        .map(|slot| {
            let base = seq * 1_000 + slot as u64 * 100;
            let readings: Vec<Reading> = (0..readings.max(1))
                .map(|r| {
                    Reading::new(
                        SensorId(u64::from(conn) * 10_000 + slot as u64),
                        Timestamp(base + r as u64),
                    )
                    .with("v", base as f64 + r as f64 * 0.5)
                })
                .collect();
            let record = ProvenanceBuilder::new(SiteId(conn), Timestamp(base))
                .attr("domain", "loadgen")
                .attr("conn", conn as i64)
                .attr("seq", seq as i64)
                .build(TupleSet::content_digest_of(&readings));
            TupleSet::new_unchecked(record, readings)
        })
        .collect()
}
