//! Poisson arrival schedules.
//!
//! An open-loop generator decides *when* requests arrive before the run
//! starts: arrivals are a Poisson process at the offered rate, so
//! inter-arrival gaps are exponential with mean `1/rate`. The server
//! being slow does not slow the schedule down — that is the whole
//! point. When the experiment splits the offered rate across N
//! connections, each connection runs an independent Poisson process at
//! `rate/N`; their superposition is again Poisson at `rate` (the
//! superposition property), so per-connection scheduling loses nothing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Precomputed arrival offsets (from the run's start instant) for one
/// connection: a Poisson process at `rate_per_sec`, truncated to
/// `duration`. Deterministic per seed.
pub fn poisson_offsets(rate_per_sec: f64, duration: Duration, seed: u64) -> Vec<Duration> {
    assert!(rate_per_sec > 0.0, "offered rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = duration.as_secs_f64();
    let mut at = 0.0f64;
    let mut out = Vec::with_capacity((rate_per_sec * horizon) as usize + 8);
    loop {
        // Inverse-CDF exponential sample. `gen::<f64>()` is in [0, 1);
        // flip to (0, 1] so ln never sees zero.
        let u: f64 = 1.0 - rng.gen::<f64>();
        at += -u.ln() / rate_per_sec;
        if at >= horizon {
            return out;
        }
        out.push(Duration::from_secs_f64(at));
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn mean_rate_tracks_offered() {
        let rate = 500.0;
        let offsets = poisson_offsets(rate, Duration::from_secs(20), 7);
        let n = offsets.len() as f64;
        // 10k expected arrivals; the count should be within a few std
        // deviations (sigma = sqrt(10000) = 100).
        assert!((n - rate * 20.0).abs() < 500.0, "arrival count {n}");
        // Strictly increasing within the horizon.
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(offsets.last().unwrap() < &Duration::from_secs(20));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = poisson_offsets(100.0, Duration::from_secs(2), 3);
        let b = poisson_offsets(100.0, Duration::from_secs(2), 3);
        let c = poisson_offsets(100.0, Duration::from_secs(2), 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaps_look_exponential() {
        // Coefficient of variation of exponential gaps is 1; uniform
        // gaps would give ~0.58. A loose band distinguishes the two.
        let offsets = poisson_offsets(1_000.0, Duration::from_secs(10), 11);
        let gaps: Vec<f64> = offsets.windows(2).map(|w| (w[1] - w[0]).as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((0.85..1.15).contains(&cv), "coefficient of variation {cv}");
    }
}
