//! Log-bucketed latency histogram.
//!
//! HDR-style layout: 64 linear sub-buckets per power of two of
//! microseconds, giving ≤ ~1.6% relative error per bucket across the
//! whole range — plenty for p50/p99/p999 over runs of 10³–10⁷ samples,
//! with O(1) record and a few KiB of memory.

const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS; // 64 sub-buckets per octave
const OCTAVES: usize = 43; // covers > 2^42 µs ≈ 50 days
const BUCKETS: usize = SUB * OCTAVES;

/// A latency histogram over microsecond values.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    max: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], count: 0, max: 0, sum: 0 }
    }

    fn bucket_of(micros: u64) -> usize {
        if micros < SUB as u64 {
            return micros as usize;
        }
        let octave = (63 - micros.leading_zeros()) as usize - SUB_BITS as usize;
        let base = (octave + 1) * SUB;
        let sub = (micros >> octave) as usize - SUB;
        (base + sub).min(BUCKETS - 1)
    }

    /// The representative (upper-edge) value for a bucket index.
    fn value_of(bucket: usize) -> u64 {
        if bucket < SUB {
            return bucket as u64;
        }
        let octave = bucket / SUB - 1;
        let sub = (bucket % SUB) as u64;
        (SUB as u64 + sub) << octave
    }

    /// Records one latency sample (in microseconds).
    pub fn record(&mut self, micros: u64) {
        let at = Self::bucket_of(micros);
        if let Some(slot) = self.counts.get_mut(at) {
            *slot += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(micros);
        self.max = self.max.max(micros);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed), in microseconds.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, in microseconds.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The value at quantile `q` in `[0, 1]`, in microseconds (bucketed;
    /// `q = 1.0` returns the exact max). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (at, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::value_of(at).min(self.max);
            }
        }
        self.max
    }
}

/// The quantile summary E24 reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Mean, milliseconds.
    pub mean_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile, milliseconds.
    pub p999_ms: f64,
    /// Maximum, milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarizes a histogram in milliseconds.
    pub fn of(hist: &Histogram) -> LatencySummary {
        let ms = |micros: u64| micros as f64 / 1_000.0;
        LatencySummary {
            count: hist.count(),
            mean_ms: hist.mean() / 1_000.0,
            p50_ms: ms(hist.quantile(0.50)),
            p99_ms: ms(hist.quantile(0.99)),
            p999_ms: ms(hist.quantile(0.999)),
            max_ms: ms(hist.max()),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // ≤ ~1.6% bucket error plus the upper-edge convention.
        assert!((4_900..=5_200).contains(&p50), "p50 {p50}");
        assert!((9_700..=10_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 63] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..1_000u64 {
            let scaled = v * 37 + 5;
            if v % 2 == 0 {
                a.record(scaled)
            } else {
                b.record(scaled)
            }
            both.record(scaled);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn huge_values_do_not_overflow_buckets() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Sub-1.0 quantiles are bucketed (the top octave's edge sits
        // far below u64::MAX); only q >= 1.0 promises the exact max.
        assert!(h.quantile(0.9999) >= h.quantile(0.5));
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
