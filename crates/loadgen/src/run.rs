//! The open-loop runner: schedules, sends, and measures.
//!
//! Each connection gets a **sender** thread and a **receiver** thread
//! over one socket. The sender walks a precomputed Poisson schedule of
//! absolute send instants and writes publish frames; the receiver
//! decodes replies and attributes each one to its scheduled arrival.
//!
//! **Coordinated omission** is the classic closed-loop measurement bug:
//! when the server stalls, a closed-loop client stops *issuing*
//! requests, so the stall hurts only the one in-flight sample and the
//! histogram silently under-reports. Two properties here prevent it:
//!
//! 1. the schedule never slips — if the sender falls behind it sends
//!    late, it does not re-plan; and
//! 2. latency is measured from the **scheduled** arrival instant, not
//!    from the moment the bytes happened to leave. A request that
//!    waited in the sender because the socket was backed up *counts*
//!    that wait.

use crate::hist::{Histogram, LatencySummary};
use crate::schedule::poisson_offsets;
use crate::workload;
use pass_distrib::wire::WireMsg;
use pass_server::frame::{encode_msg, FrameDecoder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered publish rate across all connections, per second.
    pub offered_rate: f64,
    /// Measurement window.
    pub duration: Duration,
    /// Client connections; the rate splits evenly across them.
    pub connections: usize,
    /// Tuple sets per publish batch.
    pub sets_per_batch: usize,
    /// Readings per tuple set.
    pub readings_per_set: usize,
    /// RNG seed (schedules and payloads are deterministic per seed).
    pub seed: u64,
    /// Extra time after the window to wait for straggler replies.
    pub drain: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            offered_rate: 500.0,
            duration: Duration::from_secs(5),
            connections: 4,
            sets_per_batch: 4,
            readings_per_set: 4,
            seed: 24,
            drain: Duration::from_secs(5),
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The configured offered rate (publishes/s).
    pub offered_rate: f64,
    /// Arrivals the schedule contained.
    pub scheduled: u64,
    /// Publishes actually written to sockets.
    pub sent: u64,
    /// Publishes acknowledged `PublishOk`.
    pub committed: u64,
    /// Publishes shed with `Overloaded`.
    pub overloaded: u64,
    /// Protocol or transport errors observed by receivers.
    pub errors: u64,
    /// Publishes never answered within the drain window.
    pub unanswered: u64,
    /// Committed publishes per second of measurement window.
    pub goodput: f64,
    /// Latency of committed publishes, scheduled-arrival → reply.
    pub latency: LatencySummary,
    /// Latency of shed publishes (the cost of a rejection).
    pub shed_latency: LatencySummary,
}

struct ConnOutcome {
    committed: u64,
    overloaded: u64,
    errors: u64,
    ok_hist: Histogram,
    shed_hist: Histogram,
}

/// Runs one open-loop load experiment against a served address.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> std::io::Result<LoadReport> {
    assert!(config.connections > 0, "at least one connection");
    let per_conn_rate = config.offered_rate / config.connections as f64;

    // Plan and pre-encode everything before the clock starts: encoding
    // cost must not eat into send punctuality.
    let mut plans = Vec::with_capacity(config.connections);
    for conn in 0..config.connections {
        let seed = config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(conn as u64);
        let offsets = poisson_offsets(per_conn_rate, config.duration, seed);
        let frames: Vec<Vec<u8>> = offsets
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let sets = workload::batch(
                    conn as u32,
                    i as u64,
                    config.sets_per_batch,
                    config.readings_per_set,
                );
                encode_msg(&WireMsg::Publish { op: i as u64 + 1, sets })
            })
            .collect();
        plans.push((Arc::new(offsets), frames));
    }
    let scheduled: u64 = plans.iter().map(|(o, _)| o.len() as u64).sum();

    let start = Instant::now() + Duration::from_millis(50);
    let deadline = start + config.duration + config.drain;

    let mut handles = Vec::with_capacity(config.connections);
    for (offsets, frames) in plans {
        let read_half = TcpStream::connect(addr)?;
        read_half.set_nodelay(true)?;
        read_half.set_read_timeout(Some(Duration::from_millis(20)))?;
        let write_half = read_half.try_clone()?;

        let send_offsets = Arc::clone(&offsets);
        let sender =
            std::thread::spawn(move || sender_loop(write_half, &send_offsets, frames, start));
        let expect = offsets.len() as u64;
        let receiver =
            std::thread::spawn(move || receiver_loop(read_half, &offsets, start, expect, deadline));
        handles.push((sender, receiver));
    }

    let mut ok_hist = Histogram::new();
    let mut shed_hist = Histogram::new();
    let mut report = LoadReport {
        offered_rate: config.offered_rate,
        scheduled,
        sent: 0,
        committed: 0,
        overloaded: 0,
        errors: 0,
        unanswered: 0,
        goodput: 0.0,
        latency: LatencySummary::default(),
        shed_latency: LatencySummary::default(),
    };
    for (sender, receiver) in handles {
        let sent = sender.join().unwrap_or(0);
        let outcome = receiver.join().unwrap_or_else(|_| ConnOutcome {
            committed: 0,
            overloaded: 0,
            errors: 1,
            ok_hist: Histogram::new(),
            shed_hist: Histogram::new(),
        });
        report.sent += sent;
        report.committed += outcome.committed;
        report.overloaded += outcome.overloaded;
        report.errors += outcome.errors;
        report.unanswered += sent.saturating_sub(outcome.committed + outcome.overloaded);
        ok_hist.merge(&outcome.ok_hist);
        shed_hist.merge(&outcome.shed_hist);
    }
    report.goodput = report.committed as f64 / config.duration.as_secs_f64();
    report.latency = LatencySummary::of(&ok_hist);
    report.shed_latency = LatencySummary::of(&shed_hist);
    Ok(report)
}

/// Writes each pre-encoded frame at (or as soon as possible after) its
/// scheduled instant. Returns how many were written.
fn sender_loop(
    mut stream: TcpStream,
    offsets: &[Duration],
    frames: Vec<Vec<u8>>,
    start: Instant,
) -> u64 {
    let mut sent = 0u64;
    for (offset, frame) in offsets.iter().zip(&frames) {
        let due = start + *offset;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        // Behind schedule: send immediately, never re-plan. The reply
        // will be measured against `due`, charging the backlog.
        if stream.write_all(frame).is_err() {
            break;
        }
        sent += 1;
    }
    // Half-close so the server's reader sees EOF once the schedule is
    // done; the read half stays open for straggler replies.
    if let Err(_e) = stream.shutdown(std::net::Shutdown::Write) {
        // Already closed by the peer — the receiver will observe it.
    }
    sent
}

/// Decodes reply frames and attributes each to its scheduled arrival.
fn receiver_loop(
    mut stream: TcpStream,
    offsets: &[Duration],
    start: Instant,
    expect: u64,
    deadline: Instant,
) -> ConnOutcome {
    let mut outcome = ConnOutcome {
        committed: 0,
        overloaded: 0,
        errors: 0,
        ok_hist: Histogram::new(),
        shed_hist: Histogram::new(),
    };
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 << 10];
    let mut answered = 0u64;
    'outer: while answered < expect && Instant::now() < deadline {
        loop {
            let frame = match decoder.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => {
                    outcome.errors += 1;
                    break 'outer;
                }
            };
            let msg = match WireMsg::decode_body(frame.kind, &frame.payload) {
                Ok(msg) => msg,
                Err(_) => {
                    outcome.errors += 1;
                    continue;
                }
            };
            let scheduled_at =
                |op: u64| offsets.get(op.checked_sub(1)? as usize).map(|offset| start + *offset);
            match msg {
                WireMsg::PublishOk { op, .. } => {
                    if let Some(due) = scheduled_at(op) {
                        let lat = Instant::now().saturating_duration_since(due);
                        outcome.ok_hist.record(lat.as_micros() as u64);
                        outcome.committed += 1;
                        answered += 1;
                    }
                }
                WireMsg::Overloaded { op } => {
                    if let Some(due) = scheduled_at(op) {
                        let lat = Instant::now().saturating_duration_since(due);
                        outcome.shed_hist.record(lat.as_micros() as u64);
                        outcome.overloaded += 1;
                        answered += 1;
                    }
                }
                WireMsg::Error { .. } => {
                    outcome.errors += 1;
                    answered += 1;
                }
                WireMsg::Goodbye { .. } => break 'outer,
                _ => {}
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => decoder.extend(buf.get(..n).unwrap_or_default()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                outcome.errors += 1;
                break;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn workload_batches_are_unique_and_valid() {
        let a = workload::batch(0, 0, 3, 2);
        let b = workload::batch(0, 1, 3, 2);
        let c = workload::batch(1, 0, 3, 2);
        assert_eq!(a.len(), 3);
        let id = |sets: &[pass_model::TupleSet]| sets[0].provenance.id;
        assert_ne!(id(&a), id(&b));
        assert_ne!(id(&a), id(&c));
        for set in a.iter().chain(&b).chain(&c) {
            // Round-trips the content-digest invariant TupleSet::new checks.
            pass_model::TupleSet::new(set.provenance.clone(), set.readings.clone())
                .expect("digest-consistent workload");
        }
    }
}
