//! `pass-loadgen` — open-loop load generation for the serving layer.
//!
//! Closed-loop clients (send, wait, send again) measure a different
//! system than the one production sees: when the server slows down, a
//! closed loop obligingly offers less load. The experiments in E24 need
//! the opposite — a fixed *offered* rate that keeps arriving whether or
//! not the server keeps up — so the generator here is open-loop:
//!
//! * [`schedule`] turns an offered rate into a Poisson arrival plan,
//!   fixed before the run starts;
//! * [`mod@run`] replays that plan against a live `pass-server`, measuring
//!   each reply against its **scheduled** arrival instant
//!   (coordinated-omission-safe — a request delayed by backlog is
//!   charged for the wait);
//! * [`hist`] holds the log-bucketed histogram behind the reported
//!   p50/p99/p999.
//!
//! Like `pass-server`, this crate reads wall clocks by design and is
//! exempt from the determinism rule (L4).

#![warn(missing_docs)]

pub mod hist;
pub mod run;
pub mod schedule;
pub mod workload;

pub use hist::{Histogram, LatencySummary};
pub use run::{run, LoadConfig, LoadReport};
pub use schedule::poisson_offsets;
