//! Mandatory sensitivity labels: a small security lattice carried on
//! provenance attributes.
//!
//! The paper asks for "strong guarantees that privacy policies will be
//! enforced" (§V). Discretionary rules alone cannot give that guarantee —
//! a missing rule silently allows. Labels give the mandatory floor: every
//! record carries a [`PolicyLabel`] (sensitivity level + category set), a
//! principal carries a [`Clearance`], and no rule can release a record to
//! a principal whose clearance does not dominate the label.
//!
//! Labels are stored as ordinary provenance attributes
//! (`policy.sensitivity`, `policy.categories`), so they are named,
//! indexed, and queried by the same machinery as every other part of the
//! provenance — and because attributes participate in record identity,
//! a label cannot be stripped without changing the record's name.
//!
//! Derived data inherits the *join* (least upper bound) of its parents'
//! labels — the "sticky policy" rule. Joins make the lattice: sensitivity
//! joins by `max`, categories join by set union.

use pass_model::{Attributes, ProvenanceRecord, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Attribute name under which the sensitivity level is stored.
pub const ATTR_SENSITIVITY: &str = "policy.sensitivity";
/// Attribute name under which the category set is stored.
pub const ATTR_CATEGORIES: &str = "policy.categories";

/// Ordered sensitivity levels. `Public < Internal < Restricted < Private`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Sensitivity {
    /// Releasable to anyone (e.g. aggregate traffic counts).
    #[default]
    Public,
    /// Internal to the collecting organization.
    Internal,
    /// Restricted to named roles (e.g. city planners).
    Restricted,
    /// Identifiable private data (e.g. a patient's vitals — the paper's
    /// §V motivating case).
    Private,
}

impl Sensitivity {
    /// All levels, ascending.
    pub const ALL: [Sensitivity; 4] =
        [Sensitivity::Public, Sensitivity::Internal, Sensitivity::Restricted, Sensitivity::Private];

    /// Stable integer encoding (used in the attribute representation).
    pub fn rank(self) -> i64 {
        match self {
            Sensitivity::Public => 0,
            Sensitivity::Internal => 1,
            Sensitivity::Restricted => 2,
            Sensitivity::Private => 3,
        }
    }

    /// Inverse of [`Sensitivity::rank`]; out-of-range ranks clamp to
    /// `Private` (fail closed: an unknown level must never widen access).
    pub fn from_rank(rank: i64) -> Sensitivity {
        match rank {
            0 => Sensitivity::Public,
            1 => Sensitivity::Internal,
            2 => Sensitivity::Restricted,
            _ => Sensitivity::Private,
        }
    }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sensitivity::Public => "public",
            Sensitivity::Internal => "internal",
            Sensitivity::Restricted => "restricted",
            Sensitivity::Private => "private",
        };
        f.write_str(s)
    }
}

/// A record's mandatory label: sensitivity level plus a set of need-to-know
/// categories (`"phi"`, `"location"`, …).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PolicyLabel {
    /// How sensitive the record is.
    pub sensitivity: Sensitivity,
    /// Need-to-know compartments a reader must be authorized for.
    pub categories: BTreeSet<String>,
}

impl PolicyLabel {
    /// A label at `sensitivity` with no categories.
    pub fn new(sensitivity: Sensitivity) -> Self {
        PolicyLabel { sensitivity, categories: BTreeSet::new() }
    }

    /// The bottom of the lattice: public, no categories. Records without
    /// label attributes read back as this.
    pub fn public() -> Self {
        PolicyLabel::default()
    }

    /// Adds a category, returning `self` for chaining.
    pub fn with_category(mut self, category: impl Into<String>) -> Self {
        self.categories.insert(category.into());
        self
    }

    /// Least upper bound: max sensitivity, union of categories. This is
    /// the sticky-propagation operator — a derived record's label is the
    /// join of its own label with all of its parents'.
    pub fn join(&self, other: &PolicyLabel) -> PolicyLabel {
        PolicyLabel {
            sensitivity: self.sensitivity.max(other.sensitivity),
            categories: self.categories.union(&other.categories).cloned().collect(),
        }
    }

    /// Lattice partial order: `self ⊑ other` iff `other` is at least as
    /// sensitive and carries every category of `self`.
    pub fn leq(&self, other: &PolicyLabel) -> bool {
        self.sensitivity <= other.sensitivity && self.categories.is_subset(&other.categories)
    }

    /// True when `clearance` dominates this label: level high enough and
    /// every category authorized.
    pub fn permits(&self, clearance: &Clearance) -> bool {
        self.sensitivity <= clearance.level && self.categories.is_subset(&clearance.categories)
    }

    /// Renders the label as the two reserved provenance attributes.
    pub fn to_attributes(&self) -> Attributes {
        let cats: Vec<Value> = self.categories.iter().map(|c| Value::from(c.as_str())).collect();
        Attributes::new()
            .with(ATTR_SENSITIVITY, self.sensitivity.rank())
            .with(ATTR_CATEGORIES, Value::List(cats))
    }

    /// Stamps the label onto an attribute set (overwriting any label
    /// already present).
    pub fn apply_to(&self, attrs: &mut Attributes) {
        attrs.merge(&self.to_attributes());
    }

    /// Reads the label a record carries. Records with no label attributes
    /// are [`PolicyLabel::public`]; a malformed sensitivity fails closed
    /// to `Private`.
    pub fn of_record(record: &ProvenanceRecord) -> PolicyLabel {
        let mut label = PolicyLabel::public();
        match record.attributes.get(ATTR_SENSITIVITY) {
            None => {}
            Some(v) => match v.as_int() {
                Some(rank) => label.sensitivity = Sensitivity::from_rank(rank),
                // Present but not an integer: fail closed.
                None => label.sensitivity = Sensitivity::Private,
            },
        }
        if let Some(Value::List(vs)) = record.attributes.get(ATTR_CATEGORIES) {
            for v in vs {
                if let Some(s) = v.as_str() {
                    label.categories.insert(s.to_owned());
                }
            }
        }
        label
    }
}

impl fmt::Display for PolicyLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sensitivity)?;
        if !self.categories.is_empty() {
            write!(f, "/{{")?;
            for (i, c) in self.categories.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// What a principal is cleared to see: a level and a set of authorized
/// categories. A clearance dominates a label when its level is ≥ the
/// label's and its categories are a superset.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Clearance {
    /// Maximum sensitivity the principal may read.
    pub level: Sensitivity,
    /// Categories the principal is authorized for.
    pub categories: BTreeSet<String>,
}

impl Clearance {
    /// A clearance at `level` with no category authorizations.
    pub fn new(level: Sensitivity) -> Self {
        Clearance { level, categories: BTreeSet::new() }
    }

    /// Adds an authorized category, returning `self` for chaining.
    pub fn with_category(mut self, category: impl Into<String>) -> Self {
        self.categories.insert(category.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp};

    fn record_with(attrs: Attributes) -> ProvenanceRecord {
        ProvenanceBuilder::new(SiteId(1), Timestamp(1)).attrs(&attrs).build(Digest128::of(b"x"))
    }

    #[test]
    fn sensitivity_is_totally_ordered() {
        for w in Sensitivity::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
        for s in Sensitivity::ALL {
            assert_eq!(Sensitivity::from_rank(s.rank()), s);
        }
    }

    #[test]
    fn unknown_rank_fails_closed() {
        assert_eq!(Sensitivity::from_rank(99), Sensitivity::Private);
        assert_eq!(Sensitivity::from_rank(-1), Sensitivity::Private);
    }

    #[test]
    fn join_takes_max_level_and_union_categories() {
        let a = PolicyLabel::new(Sensitivity::Internal).with_category("phi");
        let b = PolicyLabel::new(Sensitivity::Private).with_category("location");
        let j = a.join(&b);
        assert_eq!(j.sensitivity, Sensitivity::Private);
        assert!(j.categories.contains("phi") && j.categories.contains("location"));
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn permits_requires_level_and_categories() {
        let label = PolicyLabel::new(Sensitivity::Restricted).with_category("phi");
        let high = Clearance::new(Sensitivity::Private).with_category("phi");
        let right_level_wrong_cat = Clearance::new(Sensitivity::Private);
        let wrong_level_right_cat = Clearance::new(Sensitivity::Internal).with_category("phi");
        assert!(label.permits(&high));
        assert!(!label.permits(&right_level_wrong_cat));
        assert!(!label.permits(&wrong_level_right_cat));
    }

    #[test]
    fn label_round_trips_through_attributes() {
        let label = PolicyLabel::new(Sensitivity::Restricted)
            .with_category("phi")
            .with_category("location");
        let record = record_with(label.to_attributes().with("domain", "medical"));
        assert_eq!(PolicyLabel::of_record(&record), label);
    }

    #[test]
    fn unlabeled_record_is_public() {
        let record = record_with(Attributes::new().with("domain", "traffic"));
        assert_eq!(PolicyLabel::of_record(&record), PolicyLabel::public());
    }

    #[test]
    fn malformed_sensitivity_fails_closed_to_private() {
        let record = record_with(Attributes::new().with(ATTR_SENSITIVITY, "not a number"));
        assert_eq!(PolicyLabel::of_record(&record).sensitivity, Sensitivity::Private);
    }

    #[test]
    fn label_changes_record_identity() {
        // A label cannot be stripped without renaming the record: identity
        // covers attributes, and the label is an attribute.
        let base = Attributes::new().with("domain", "medical");
        let mut labeled = base.clone();
        PolicyLabel::new(Sensitivity::Private).apply_to(&mut labeled);
        assert_ne!(record_with(base).id, record_with(labeled).id);
    }

    #[test]
    fn display_forms() {
        let label = PolicyLabel::new(Sensitivity::Private).with_category("phi");
        assert_eq!(label.to_string(), "private/{phi}");
        assert_eq!(PolicyLabel::public().to_string(), "public");
    }
}
