//! Privacy-preserving aggregation with measurable provenance.
//!
//! §V: "Much of this data is valuable even when aggregated to preserve
//! privacy. What degree of aggregation is necessary? How does one
//! represent the provenance of such aggregates?"
//!
//! This module implements full-domain k-anonymous aggregation: readings
//! are grouped by their *quasi-identifier* fields (the fields that could
//! re-identify a subject — age, location cell, admission time), the
//! quasi-identifiers are generalized up a per-field ladder until every
//! released group holds at least `k` readings, and groups that still
//! fall short are suppressed. The released product is one aggregate
//! reading per group (count/mean/min/max of the sensitive field).
//!
//! Both §V questions become measurable:
//!
//! * *what degree of aggregation is necessary?* — [`KAnonymized`]
//!   reports the re-identification risk (`1 / min-group-size`), the
//!   suppression rate, and the utility loss (mean absolute error of the
//!   group mean vs the individual values, plus normalized generalization
//!   height). Experiment E17 sweeps `k` over a medical corpus.
//! * *provenance of aggregates* — [`KAnonymized::tool`] renders the
//!   whole anonymization as an ordinary [`ToolDescriptor`] carrying
//!   `(k, level, suppressed)`, so the aggregate tuple set's ancestry
//!   names its sources and its privacy parameters in one queryable
//!   record: `FIND WHERE tool.name = "k-anonymize" AND tool.k >= 5`.

use crate::error::{PolicyError, Result};
use pass_model::{Attributes, Reading, SensorId, Timestamp, ToolDescriptor, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Generalization ladder for one numeric quasi-identifier field.
///
/// Level 0 keeps the exact value; level `i` (1-based) buckets it to
/// width `widths[i-1]`; levels past the ladder generalize to `*`
/// (the field is dropped from the key entirely).
#[derive(Debug, Clone, PartialEq)]
pub struct NumericLadder {
    /// Reading field this ladder generalizes.
    pub field: String,
    /// Bucket widths, coarsest last. Must be strictly increasing.
    pub widths: Vec<f64>,
}

impl NumericLadder {
    /// Builds a ladder; widths must be positive and strictly increasing.
    pub fn new(field: impl Into<String>, widths: Vec<f64>) -> Result<Self> {
        if widths.iter().any(|w| *w <= 0.0 || !w.is_finite()) {
            return Err(PolicyError::Aggregation("ladder widths must be positive".into()));
        }
        if widths.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PolicyError::Aggregation("ladder widths must strictly increase".into()));
        }
        Ok(NumericLadder { field: field.into(), widths })
    }

    /// Height of the ladder including the exact level and the `*` level.
    fn max_level(&self) -> usize {
        self.widths.len() + 1
    }

    /// Renders a value at generalization `level`.
    fn generalize(&self, value: Option<f64>, level: usize) -> GeneralizedValue {
        let Some(v) = value else {
            // A reading missing the field can never be distinguished by
            // it; missing values form their own bucket at every level.
            return GeneralizedValue::Missing;
        };
        if level == 0 {
            return GeneralizedValue::Exact(OrderedF64(v));
        }
        match self.widths.get(level - 1) {
            Some(&w) => {
                let lo = (v / w).floor() * w;
                GeneralizedValue::Bucket { lo: OrderedF64(lo), width: OrderedF64(w) }
            }
            None => GeneralizedValue::Any,
        }
    }
}

/// f64 wrapper ordered with `total_cmp` so bucket keys can key a BTreeMap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One generalized quasi-identifier value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum GeneralizedValue {
    Exact(OrderedF64),
    Bucket { lo: OrderedF64, width: OrderedF64 },
    Any,
    Missing,
}

impl fmt::Display for GeneralizedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneralizedValue::Exact(v) => write!(f, "{}", v.0),
            GeneralizedValue::Bucket { lo, width } => {
                write!(f, "[{}..{})", lo.0, lo.0 + width.0)
            }
            GeneralizedValue::Any => f.write_str("*"),
            GeneralizedValue::Missing => f.write_str("?"),
        }
    }
}

/// The quasi-identifier specification: which fields re-identify, how each
/// generalizes, and which field carries the sensitive measurement.
#[derive(Debug, Clone)]
pub struct QuasiSpec {
    /// Generalization ladders, one per quasi-identifier field.
    pub ladders: Vec<NumericLadder>,
    /// The sensitive numeric field to aggregate (mean/min/max).
    pub sensitive: String,
}

impl QuasiSpec {
    /// Builds a spec; at least one ladder is required.
    pub fn new(ladders: Vec<NumericLadder>, sensitive: impl Into<String>) -> Result<Self> {
        if ladders.is_empty() {
            return Err(PolicyError::Aggregation("at least one quasi-identifier required".into()));
        }
        Ok(QuasiSpec { ladders, sensitive: sensitive.into() })
    }

    /// The coarsest meaningful uniform level (every ladder at `*`).
    fn max_level(&self) -> usize {
        self.ladders.iter().map(NumericLadder::max_level).max().unwrap_or(0)
    }

    fn key_of(&self, reading: &Reading, level: usize) -> Vec<GeneralizedValue> {
        self.ladders
            .iter()
            .map(|l| {
                let v = reading
                    .field(&l.field)
                    .and_then(Value::as_float)
                    .or_else(|| reading.field(&l.field).and_then(Value::as_int).map(|i| i as f64));
                // Clamp per-field: a short ladder hits `*` early.
                l.generalize(v, level.min(l.max_level()))
            })
            .collect()
    }
}

/// One released group: generalized quasi-identifiers plus aggregate
/// statistics of the sensitive field.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateGroup {
    /// Generalized quasi-identifier rendering, one per ladder, in ladder
    /// order (`"[40..50)"`, `"*"`, …).
    pub key: Vec<String>,
    /// Readings in the group (≥ k by construction).
    pub count: usize,
    /// Mean of the sensitive field.
    pub mean: f64,
    /// Minimum of the sensitive field.
    pub min: f64,
    /// Maximum of the sensitive field.
    pub max: f64,
}

impl AggregateGroup {
    /// Renders the group as one aggregate reading: quasi fields as
    /// strings, statistics as numbers.
    pub fn to_reading(&self, spec: &QuasiSpec, at: Timestamp) -> Reading {
        let mut r = Reading::new(SensorId(0), at)
            .with("count", self.count as i64)
            .with(format!("{}.mean", spec.sensitive), self.mean)
            .with(format!("{}.min", spec.sensitive), self.min)
            .with(format!("{}.max", spec.sensitive), self.max);
        for (ladder, key) in spec.ladders.iter().zip(&self.key) {
            r = r.with(ladder.field.as_str(), key.as_str());
        }
        r
    }
}

/// The result of a k-anonymous aggregation, with its privacy/utility
/// metrics.
#[derive(Debug, Clone)]
pub struct KAnonymized {
    /// The k that was enforced.
    pub k: usize,
    /// The uniform generalization level that was needed.
    pub level: usize,
    /// Released groups (every `count` ≥ k).
    pub groups: Vec<AggregateGroup>,
    /// Readings suppressed because their group stayed below k at the
    /// chosen level.
    pub suppressed: usize,
    /// Readings skipped because the sensitive field was absent or
    /// non-numeric.
    pub skipped: usize,
    /// Total readings offered (released + suppressed + skipped).
    pub total: usize,
    /// Mean absolute error of the group mean vs each released reading's
    /// own sensitive value — the utility cost of aggregation.
    pub mean_abs_error: f64,
    /// Normalized generalization height in `[0, 1]` (0 = exact values
    /// released, 1 = every quasi-identifier fully generalized).
    pub info_loss: f64,
}

impl KAnonymized {
    /// Readings released inside groups.
    pub fn released(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Smallest released group (≥ k whenever any group was released).
    pub fn min_group_size(&self) -> Option<usize> {
        self.groups.iter().map(|g| g.count).min()
    }

    /// Worst-case re-identification risk: `1 / min-group-size`
    /// (prosecutor model). Zero when nothing was released.
    pub fn risk(&self) -> f64 {
        match self.min_group_size() {
            Some(m) if m > 0 => 1.0 / m as f64,
            _ => 0.0,
        }
    }

    /// Fraction of usable readings that had to be suppressed.
    pub fn suppression_rate(&self) -> f64 {
        let usable = self.total - self.skipped;
        if usable == 0 {
            0.0
        } else {
            self.suppressed as f64 / usable as f64
        }
    }

    /// The provenance tool descriptor naming this aggregation: the §V
    /// "provenance of such aggregates" answer. Attach it to a `derive`
    /// whose parents are the source tuple sets.
    pub fn tool(&self) -> ToolDescriptor {
        ToolDescriptor::new("k-anonymize", "1.0")
            .with_param("k", self.k as i64)
            .with_param("level", self.level as i64)
            .with_param("suppressed", self.suppressed as i64)
            .with_param("groups", self.groups.len() as i64)
    }

    /// Renders all released groups as aggregate readings.
    pub fn to_readings(&self, spec: &QuasiSpec, at: Timestamp) -> Vec<Reading> {
        self.groups.iter().map(|g| g.to_reading(spec, at)).collect()
    }

    /// Descriptive attributes for the aggregate tuple set.
    pub fn to_attributes(&self) -> Attributes {
        Attributes::new()
            .with("aggregate.k", self.k as i64)
            .with("aggregate.level", self.level as i64)
            .with("aggregate.groups", self.groups.len() as i64)
            .with("aggregate.suppressed", self.suppressed as i64)
    }
}

/// Runs full-domain k-anonymous aggregation over `readings`.
///
/// Starting at level 0 (exact quasi-identifiers), the level rises
/// uniformly until the fraction of readings stuck in below-k groups is at
/// most `max_suppression`; those stragglers are suppressed and the rest
/// released. `max_suppression = 0.0` demands a level at which *every*
/// group reaches k (the fully-generalized level always qualifies, since
/// it pools everything into one group — which is then suppressed only
/// when fewer than k usable readings exist in total).
pub fn kanonymize(
    readings: &[Reading],
    k: usize,
    spec: &QuasiSpec,
    max_suppression: f64,
) -> Result<KAnonymized> {
    if k == 0 {
        return Err(PolicyError::Aggregation("k must be at least 1".into()));
    }
    if !(0.0..=1.0).contains(&max_suppression) {
        return Err(PolicyError::Aggregation("max_suppression must be in [0, 1]".into()));
    }

    // Partition out readings without a usable sensitive value.
    let mut usable: Vec<(&Reading, f64)> = Vec::with_capacity(readings.len());
    let mut skipped = 0usize;
    for r in readings {
        let v = r
            .field(&spec.sensitive)
            .and_then(|v| v.as_float().or_else(|| v.as_int().map(|i| i as f64)));
        match v {
            Some(v) if v.is_finite() => usable.push((r, v)),
            _ => skipped += 1,
        }
    }

    type Groups = BTreeMap<Vec<GeneralizedValue>, Vec<f64>>;
    let max_level = spec.max_level();
    let mut chosen: Option<(usize, Groups)> = None;
    for level in 0..=max_level {
        let mut groups: Groups = BTreeMap::new();
        for (r, v) in &usable {
            groups.entry(spec.key_of(r, level)).or_default().push(*v);
        }
        let below: usize = groups.values().filter(|g| g.len() < k).map(Vec::len).sum();
        let frac = if usable.is_empty() { 0.0 } else { below as f64 / usable.len() as f64 };
        if frac <= max_suppression || level == max_level {
            chosen = Some((level, groups));
            break;
        }
    }
    let (level, groups) = chosen.expect("loop always selects a level");

    let mut released_groups = Vec::new();
    let mut suppressed = 0usize;
    let mut abs_err_sum = 0.0;
    let mut released_n = 0usize;
    for (key, values) in groups {
        if values.len() < k {
            suppressed += values.len();
            continue;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        abs_err_sum += values.iter().map(|v| (v - mean).abs()).sum::<f64>();
        released_n += count;
        released_groups.push(AggregateGroup {
            key: key.iter().map(GeneralizedValue::to_string).collect(),
            count,
            mean,
            min,
            max,
        });
    }

    let info_loss = spec
        .ladders
        .iter()
        .map(|l| level.min(l.max_level()) as f64 / l.max_level() as f64)
        .sum::<f64>()
        / spec.ladders.len() as f64;

    Ok(KAnonymized {
        k,
        level,
        groups: released_groups,
        suppressed,
        skipped,
        total: readings.len(),
        mean_abs_error: if released_n == 0 { 0.0 } else { abs_err_sum / released_n as f64 },
        info_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> QuasiSpec {
        QuasiSpec::new(
            vec![
                NumericLadder::new("age", vec![5.0, 10.0, 25.0]).unwrap(),
                NumericLadder::new("zone", vec![2.0]).unwrap(),
            ],
            "heart_rate",
        )
        .unwrap()
    }

    fn patient(age: f64, zone: f64, hr: f64) -> Reading {
        Reading::new(SensorId(1), Timestamp(0))
            .with("age", age)
            .with("zone", zone)
            .with("heart_rate", hr)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(NumericLadder::new("x", vec![5.0, 5.0]).is_err());
        assert!(NumericLadder::new("x", vec![-1.0]).is_err());
        assert!(QuasiSpec::new(vec![], "v").is_err());
        let s = spec();
        assert!(kanonymize(&[], 0, &s, 0.0).is_err());
        assert!(kanonymize(&[], 1, &s, 1.5).is_err());
    }

    #[test]
    fn k1_releases_exact_groups() {
        let rs = vec![patient(30.0, 1.0, 70.0), patient(30.0, 1.0, 80.0), patient(41.0, 1.0, 90.0)];
        let out = kanonymize(&rs, 1, &spec(), 0.0).unwrap();
        assert_eq!(out.level, 0, "k=1 never needs generalization");
        assert_eq!(out.groups.len(), 2);
        assert_eq!(out.suppressed, 0);
        assert_eq!(out.info_loss, 0.0);
    }

    #[test]
    fn generalization_rises_until_groups_reach_k() {
        // Ages spread over one decade: exact ages are unique, but the
        // 10-wide bucket (level 2) pools them.
        let rs: Vec<Reading> =
            (0..8).map(|i| patient(40.0 + i as f64, 1.0, 60.0 + i as f64)).collect();
        let out = kanonymize(&rs, 4, &spec(), 0.0).unwrap();
        assert!(out.level >= 2, "needed a coarse level, got {}", out.level);
        assert!(out.groups.iter().all(|g| g.count >= 4));
        assert_eq!(out.released() + out.suppressed, 8);
    }

    #[test]
    fn k_above_population_suppresses_everything() {
        let rs = vec![patient(30.0, 1.0, 70.0), patient(31.0, 1.0, 71.0)];
        let out = kanonymize(&rs, 10, &spec(), 0.0).unwrap();
        assert_eq!(out.groups.len(), 0);
        assert_eq!(out.suppressed, 2);
        assert_eq!(out.risk(), 0.0);
        assert_eq!(out.suppression_rate(), 1.0);
    }

    #[test]
    fn group_stats_are_correct() {
        let rs = vec![patient(30.0, 1.0, 60.0), patient(30.0, 1.0, 80.0)];
        let out = kanonymize(&rs, 2, &spec(), 0.0).unwrap();
        assert_eq!(out.groups.len(), 1);
        let g = &out.groups[0];
        assert_eq!((g.count, g.mean, g.min, g.max), (2, 70.0, 60.0, 80.0));
        assert_eq!(out.mean_abs_error, 10.0);
    }

    #[test]
    fn skips_readings_without_sensitive_value() {
        let rs = vec![
            patient(30.0, 1.0, 70.0),
            Reading::new(SensorId(1), Timestamp(0)).with("age", 30.0).with("zone", 1.0),
        ];
        let out = kanonymize(&rs, 1, &spec(), 0.0).unwrap();
        assert_eq!(out.skipped, 1);
        assert_eq!(out.released(), 1);
    }

    #[test]
    fn missing_quasi_field_forms_its_own_bucket() {
        let rs = vec![
            patient(30.0, 1.0, 70.0),
            Reading::new(SensorId(1), Timestamp(0)).with("zone", 1.0).with("heart_rate", 75.0),
        ];
        let out = kanonymize(&rs, 1, &spec(), 0.0).unwrap();
        assert_eq!(out.groups.len(), 2, "missing age must not merge with age=30");
    }

    #[test]
    fn tool_descriptor_names_the_parameters() {
        let rs = vec![patient(30.0, 1.0, 70.0), patient(30.0, 1.0, 72.0)];
        let out = kanonymize(&rs, 2, &spec(), 0.0).unwrap();
        let tool = out.tool();
        assert_eq!(tool.name, "k-anonymize");
        assert_eq!(tool.params.get_int("k"), Some(2));
        assert_eq!(tool.params.get_int("groups"), Some(1));
    }

    #[test]
    fn aggregate_readings_render_key_and_stats() {
        let rs: Vec<Reading> =
            (0..4).map(|i| patient(42.0 + (i % 2) as f64, 1.0, 60.0 + i as f64)).collect();
        let out = kanonymize(&rs, 4, &spec(), 0.0).unwrap();
        let agg = out.to_readings(&spec(), Timestamp(5));
        assert_eq!(agg.len(), out.groups.len());
        let r = &agg[0];
        assert_eq!(r.field("count").and_then(Value::as_int), Some(4));
        assert!(r.field("heart_rate.mean").and_then(Value::as_float).is_some());
        assert!(r.field("age").and_then(Value::as_str).is_some());
    }

    #[test]
    fn max_suppression_trades_level_for_coverage() {
        // 7 clustered + 1 outlier: with tolerance we stay at a fine level
        // and drop the outlier; with zero tolerance the level must rise.
        let mut rs: Vec<Reading> = (0..7).map(|_| patient(30.0, 1.0, 70.0)).collect();
        rs.push(patient(95.0, 9.0, 70.0));
        let strict = kanonymize(&rs, 2, &spec(), 0.0).unwrap();
        let tolerant = kanonymize(&rs, 2, &spec(), 0.2).unwrap();
        assert!(tolerant.level <= strict.level);
        assert_eq!(tolerant.suppressed, 1);
        assert!(tolerant.info_loss <= strict.info_loss);
    }

    #[test]
    fn info_loss_normalized_between_zero_and_one() {
        let rs: Vec<Reading> = (0..6).map(|i| patient(i as f64 * 30.0, i as f64, 70.0)).collect();
        for k in [1, 2, 3, 6, 7] {
            let out = kanonymize(&rs, k, &spec(), 0.0).unwrap();
            assert!((0.0..=1.0).contains(&out.info_loss), "k={k} loss={}", out.info_loss);
        }
    }
}
