//! Discretionary policy rules and the two-layer decision engine.
//!
//! Enforcement is layered so the §V "strong guarantees" question has a
//! concrete answer:
//!
//! 1. **Mandatory layer** — the label lattice ([`crate::label`]). A
//!    principal whose [`Clearance`] does not dominate a record's
//!    [`PolicyLabel`] is denied, unconditionally. No rule can override
//!    this; forgetting to write a rule can never widen access.
//! 2. **Discretionary layer** — ordered [`Rule`]s matched first-hit.
//!    Each rule names an effect, the roles it applies to, the actions it
//!    covers, and a [`Predicate`] over the record's provenance
//!    attributes. Because conditions are ordinary provenance predicates,
//!    policies compose with the paper's "provenance as name" machinery:
//!    a HIPAA rule is just `domain = "medical" AND patient.consent =
//!    false` attached to a deny.
//!
//! When no rule matches, the engine's default effect applies —
//! [`PolicyEngine::deny_by_default`] for regulated regimes.

use crate::label::{Clearance, PolicyLabel, Sensitivity};
use pass_model::{ProvenanceRecord, SiteId};
use pass_query::Predicate;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The operations a policy can govern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Read the readings (the sensor data itself).
    ReadData,
    /// Read the provenance record (attributes, ancestry, annotations).
    ReadProvenance,
    /// Traverse lineage through this record.
    ReadLineage,
    /// Export the record beyond the local PASS (federation, replication).
    Export,
}

impl Action {
    /// All actions.
    pub const ALL: [Action; 4] =
        [Action::ReadData, Action::ReadProvenance, Action::ReadLineage, Action::Export];
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Action::ReadData => "read-data",
            Action::ReadProvenance => "read-provenance",
            Action::ReadLineage => "read-lineage",
            Action::Export => "export",
        };
        f.write_str(s)
    }
}

/// Allow or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effect {
    /// Permit the action.
    Allow,
    /// Refuse the action.
    Deny,
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Effect::Allow => "allow",
            Effect::Deny => "deny",
        })
    }
}

/// Who is asking: a named principal with roles and a mandatory clearance.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Principal {
    /// Stable principal name (audit entries key on it).
    pub name: String,
    /// Roles for discretionary rule matching.
    pub roles: BTreeSet<String>,
    /// Mandatory-layer clearance.
    pub clearance: Clearance,
    /// The site the principal operates from, when locality matters.
    pub site: Option<SiteId>,
}

impl Principal {
    /// A principal with no roles and the bottom clearance (public only).
    pub fn new(name: impl Into<String>) -> Self {
        Principal { name: name.into(), ..Principal::default() }
    }

    /// Adds a role, returning `self` for chaining.
    pub fn with_role(mut self, role: impl Into<String>) -> Self {
        self.roles.insert(role.into());
        self
    }

    /// Sets the clearance level, returning `self` for chaining.
    pub fn with_clearance(mut self, level: Sensitivity) -> Self {
        self.clearance.level = level;
        self
    }

    /// Authorizes a label category, returning `self` for chaining.
    pub fn with_category(mut self, category: impl Into<String>) -> Self {
        self.clearance.categories.insert(category.into());
        self
    }

    /// Pins the principal to a site, returning `self` for chaining.
    pub fn at_site(mut self, site: SiteId) -> Self {
        self.site = Some(site);
        self
    }

    /// True when the principal holds `role`.
    pub fn has_role(&self, role: &str) -> bool {
        self.roles.contains(role)
    }
}

/// One discretionary rule: effect + role scope + action scope + a
/// provenance predicate.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable identifier (audit entries cite it).
    pub id: String,
    /// What the rule does when it matches.
    pub effect: Effect,
    /// Roles the rule applies to; `None` = every principal.
    pub roles: Option<BTreeSet<String>>,
    /// Actions the rule covers.
    pub actions: BTreeSet<Action>,
    /// Condition over the record's provenance attributes;
    /// `Predicate::True` matches every record.
    pub condition: Predicate,
}

impl Rule {
    fn new(id: impl Into<String>, effect: Effect) -> Self {
        Rule {
            id: id.into(),
            effect,
            roles: None,
            actions: Action::ALL.into_iter().collect(),
            condition: Predicate::True,
        }
    }

    /// An allow rule covering all actions, all roles, all records; narrow
    /// it with the builder methods.
    pub fn allow(id: impl Into<String>) -> Self {
        Rule::new(id, Effect::Allow)
    }

    /// A deny rule covering all actions, all roles, all records.
    pub fn deny(id: impl Into<String>) -> Self {
        Rule::new(id, Effect::Deny)
    }

    /// Restricts the rule to principals holding `role` (repeatable; any
    /// listed role matches).
    pub fn for_role(mut self, role: impl Into<String>) -> Self {
        self.roles.get_or_insert_with(BTreeSet::new).insert(role.into());
        self
    }

    /// Restricts the rule to the given actions.
    pub fn on(mut self, actions: impl IntoIterator<Item = Action>) -> Self {
        self.actions = actions.into_iter().collect();
        self
    }

    /// Attaches a provenance condition.
    pub fn when(mut self, condition: Predicate) -> Self {
        self.condition = condition;
        self
    }

    /// True when this rule speaks to (principal, action, record).
    fn matches(&self, principal: &Principal, action: Action, record: &ProvenanceRecord) -> bool {
        if let Some(roles) = &self.roles {
            if !roles.iter().any(|r| principal.has_role(r)) {
                return false;
            }
        }
        self.actions.contains(&action) && self.condition.matches(record)
    }
}

/// Why a decision came out the way it did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reason {
    /// The mandatory label layer refused: clearance does not dominate.
    LabelDominance {
        /// The record's label at decision time.
        label: PolicyLabel,
    },
    /// A discretionary rule matched first.
    Rule {
        /// The matching rule's id.
        id: String,
    },
    /// No rule matched; the engine default applied.
    Default,
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reason::LabelDominance { label } => write!(f, "label {label} not dominated"),
            Reason::Rule { id } => write!(f, "rule {id}"),
            Reason::Default => write!(f, "default"),
        }
    }
}

/// The outcome of a policy check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Allow or deny.
    pub effect: Effect,
    /// Why.
    pub reason: Reason,
}

impl Decision {
    /// True when the action may proceed.
    pub fn allowed(&self) -> bool {
        self.effect == Effect::Allow
    }
}

/// The two-layer decision engine: mandatory labels, then first-match
/// discretionary rules, then a default.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    rules: Vec<Rule>,
    default_effect: Effect,
}

impl PolicyEngine {
    /// An engine that denies when no rule matches (regulated regimes).
    pub fn deny_by_default() -> Self {
        PolicyEngine { rules: Vec::new(), default_effect: Effect::Deny }
    }

    /// An engine that allows when no rule matches (open-data regimes —
    /// the mandatory label layer still applies).
    pub fn allow_by_default() -> Self {
        PolicyEngine { rules: Vec::new(), default_effect: Effect::Allow }
    }

    /// Appends a rule (rules are evaluated in insertion order).
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The configured rules, in evaluation order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The effect applied when no rule matches.
    pub fn default_effect(&self) -> Effect {
        self.default_effect
    }

    /// Decides whether `principal` may perform `action` on `record`.
    ///
    /// The mandatory layer runs first and cannot be overridden: if the
    /// record's label is not dominated by the principal's clearance the
    /// decision is a deny regardless of any rule. Otherwise the first
    /// matching rule wins; with no match, the default effect applies.
    pub fn decide(
        &self,
        principal: &Principal,
        action: Action,
        record: &ProvenanceRecord,
    ) -> Decision {
        let label = PolicyLabel::of_record(record);
        if !label.permits(&principal.clearance) {
            return Decision { effect: Effect::Deny, reason: Reason::LabelDominance { label } };
        }
        for rule in &self.rules {
            if rule.matches(principal, action, record) {
                return Decision {
                    effect: rule.effect,
                    reason: Reason::Rule { id: rule.id.clone() },
                };
            }
        }
        Decision { effect: self.default_effect, reason: Reason::Default }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Attributes, Digest128, ProvenanceBuilder, Timestamp};

    fn record(attrs: Attributes) -> ProvenanceRecord {
        ProvenanceBuilder::new(SiteId(1), Timestamp(1)).attrs(&attrs).build(Digest128::of(b"r"))
    }

    fn phi_record() -> ProvenanceRecord {
        let mut attrs = Attributes::new().with("domain", "medical");
        PolicyLabel::new(Sensitivity::Private).with_category("phi").apply_to(&mut attrs);
        record(attrs)
    }

    fn clinician() -> Principal {
        Principal::new("dr-a")
            .with_role("clinician")
            .with_clearance(Sensitivity::Private)
            .with_category("phi")
    }

    #[test]
    fn mandatory_layer_cannot_be_overridden_by_allow_rules() {
        let engine = PolicyEngine::deny_by_default().with_rule(Rule::allow("open-door"));
        let uncleared = Principal::new("analyst"); // public clearance only
        let d = engine.decide(&uncleared, Action::ReadData, &phi_record());
        assert_eq!(d.effect, Effect::Deny);
        assert!(matches!(d.reason, Reason::LabelDominance { .. }));
    }

    #[test]
    fn first_matching_rule_wins() {
        let engine = PolicyEngine::deny_by_default()
            .with_rule(Rule::deny("no-export").on([Action::Export]))
            .with_rule(Rule::allow("clinician-all").for_role("clinician"));
        let p = clinician();
        let r = phi_record();
        assert_eq!(engine.decide(&p, Action::Export, &r).effect, Effect::Deny);
        assert_eq!(engine.decide(&p, Action::ReadData, &r).effect, Effect::Allow);
        assert_eq!(
            engine.decide(&p, Action::ReadData, &r).reason,
            Reason::Rule { id: "clinician-all".into() }
        );
    }

    #[test]
    fn default_applies_when_no_rule_matches() {
        let deny = PolicyEngine::deny_by_default();
        let allow = PolicyEngine::allow_by_default();
        let p = clinician();
        let r = phi_record();
        assert_eq!(deny.decide(&p, Action::ReadData, &r).effect, Effect::Deny);
        assert_eq!(allow.decide(&p, Action::ReadData, &r).effect, Effect::Allow);
        assert_eq!(allow.decide(&p, Action::ReadData, &r).reason, Reason::Default);
    }

    #[test]
    fn role_scoping_limits_rules() {
        let engine = PolicyEngine::deny_by_default()
            .with_rule(Rule::allow("clinicians-only").for_role("clinician"));
        let outsider =
            Principal::new("x").with_clearance(Sensitivity::Private).with_category("phi");
        assert_eq!(engine.decide(&outsider, Action::ReadData, &phi_record()).effect, Effect::Deny);
        assert_eq!(
            engine.decide(&clinician(), Action::ReadData, &phi_record()).effect,
            Effect::Allow
        );
    }

    #[test]
    fn conditions_are_provenance_predicates() {
        // HIPAA-flavored: deny data reads on medical records lacking consent.
        let engine = PolicyEngine::allow_by_default().with_rule(
            Rule::deny("no-consent").on([Action::ReadData]).when(Predicate::and(vec![
                Predicate::Eq("domain".into(), "medical".into()),
                Predicate::Eq("patient.consent".into(), false.into()),
            ])),
        );
        let p = clinician();
        let mut attrs = Attributes::new().with("domain", "medical").with("patient.consent", false);
        PolicyLabel::new(Sensitivity::Private).with_category("phi").apply_to(&mut attrs);
        let no_consent = record(attrs);
        let mut attrs = Attributes::new().with("domain", "medical").with("patient.consent", true);
        PolicyLabel::new(Sensitivity::Private).with_category("phi").apply_to(&mut attrs);
        let consent = record(attrs);

        assert_eq!(engine.decide(&p, Action::ReadData, &no_consent).effect, Effect::Deny);
        assert_eq!(engine.decide(&p, Action::ReadData, &consent).effect, Effect::Allow);
        // Provenance reads stay open — the rule is action-scoped.
        assert_eq!(engine.decide(&p, Action::ReadProvenance, &no_consent).effect, Effect::Allow);
    }
}
