//! Unified error type for policy-mediated access.

use crate::rule::{Action, Reason};
use pass_model::TupleSetId;
use std::fmt;

/// Errors raised by guarded PASS operations.
#[derive(Debug, Clone)]
pub enum PolicyError {
    /// The policy engine refused the action.
    Denied {
        /// The record the principal tried to touch.
        id: TupleSetId,
        /// What they tried to do.
        action: Action,
        /// Why the engine said no.
        reason: Reason,
    },
    /// The underlying PASS failed (not found, storage, query, …).
    Pass(pass_core::PassError),
    /// An aggregation request was malformed (k = 0, unknown field, empty
    /// generalization ladder).
    Aggregation(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Denied { id, action, reason } => {
                write!(f, "{action} on {id} denied: {reason}")
            }
            PolicyError::Pass(e) => write!(f, "pass error: {e}"),
            PolicyError::Aggregation(msg) => write!(f, "aggregation error: {msg}"),
        }
    }
}

impl std::error::Error for PolicyError {}

impl From<pass_core::PassError> for PolicyError {
    fn from(e: pass_core::PassError) -> Self {
        PolicyError::Pass(e)
    }
}

impl PolicyError {
    /// True when the error is a policy denial (as opposed to an
    /// operational failure).
    pub fn is_denied(&self) -> bool {
        matches!(self, PolicyError::Denied { .. })
    }
}

/// Result alias for guarded operations.
pub type Result<T> = std::result::Result<T, PolicyError>;
