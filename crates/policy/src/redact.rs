//! Policy-aware lineage views: hide what a principal may not see without
//! severing what they may.
//!
//! Two PASS commitments collide when policies arrive: provenance must
//! survive (property 4, §V) but private records must not leak. Deleting
//! forbidden records from a lineage answer would silently disconnect the
//! ancestry of perfectly readable data — a volcanologist cleared for the
//! derived eruption summary but not the raw seismometer feeds would see
//! an orphaned record with no history at all, indistinguishable from raw
//! capture.
//!
//! Redaction resolves the collision by *contracting* forbidden records:
//! the visible nodes keep their transitive connectivity through opaque
//! placeholders. Each surviving edge reports how many hidden records it
//! passed through ([`RedactedEdge::via_redacted`]), so the reader knows
//! derivation steps exist without learning what they were — the lineage
//! analogue of §V's "gcc 3.3.3" abstraction, driven by policy instead of
//! by tool boundaries.

use pass_model::{ProvenanceRecord, TupleSetId};
use std::collections::{HashMap, HashSet, VecDeque};

/// One contracted ancestry edge between two *visible* records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedactedEdge {
    /// The descendant (closer to the query root).
    pub from: TupleSetId,
    /// The nearest visible ancestor in this direction.
    pub to: TupleSetId,
    /// How many redacted records the edge was contracted through
    /// (0 = the edge existed in the full lineage).
    pub via_redacted: usize,
}

/// A lineage answer after policy redaction.
#[derive(Debug, Clone, Default)]
pub struct RedactedLineage {
    /// Records the principal may read, in the input's order.
    pub visible: Vec<ProvenanceRecord>,
    /// How many records were withheld (their contents do not appear
    /// anywhere in this structure).
    pub redacted_count: usize,
    /// Ancestry edges between visible records, contracted through the
    /// withheld ones.
    pub edges: Vec<RedactedEdge>,
}

impl RedactedLineage {
    /// Ids of the visible records.
    pub fn visible_ids(&self) -> Vec<TupleSetId> {
        self.visible.iter().map(|r| r.id).collect()
    }

    /// True when any edge was contracted (i.e. the view is genuinely
    /// redacted rather than merely filtered).
    pub fn has_contractions(&self) -> bool {
        self.edges.iter().any(|e| e.via_redacted > 0)
    }
}

/// Contracts `records` (a lineage closure, typically root-first) against
/// a visibility predicate.
///
/// Guarantees, for records limited to the given set:
///
/// * every record failing `is_visible` is absent from the output;
/// * a visible record B is reachable from visible record A through
///   [`RedactedLineage::edges`] **iff** B was reachable from A through
///   parent edges in the full set — redaction never severs or invents
///   visible-to-visible reachability;
/// * each edge carries the *minimum* number of hidden hops between its
///   endpoints.
pub fn redact_lineage(
    records: &[ProvenanceRecord],
    is_visible: impl Fn(&ProvenanceRecord) -> bool,
) -> RedactedLineage {
    let by_id: HashMap<TupleSetId, &ProvenanceRecord> = records.iter().map(|r| (r.id, r)).collect();
    let visible_ids: HashSet<TupleSetId> =
        records.iter().filter(|r| is_visible(r)).map(|r| r.id).collect();

    let mut edges = Vec::new();
    for record in records {
        if !visible_ids.contains(&record.id) {
            continue;
        }
        // BFS from this visible record through hidden parents; stop at
        // the first visible ancestor on each path. BFS order makes the
        // recorded hop count minimal.
        let mut best: HashMap<TupleSetId, usize> = HashMap::new();
        let mut seen: HashSet<TupleSetId> = HashSet::new();
        let mut queue: VecDeque<(TupleSetId, usize)> = VecDeque::new();
        queue.push_back((record.id, 0));
        seen.insert(record.id);
        while let Some((id, hidden_hops)) = queue.pop_front() {
            let Some(node) = by_id.get(&id) else { continue };
            for parent in node.parents() {
                if !seen.insert(parent) {
                    continue;
                }
                if visible_ids.contains(&parent) {
                    best.entry(parent).or_insert(hidden_hops);
                } else if by_id.contains_key(&parent) {
                    queue.push_back((parent, hidden_hops + 1));
                }
            }
        }
        let mut found: Vec<(TupleSetId, usize)> = best.into_iter().collect();
        found.sort_unstable_by_key(|(id, _)| *id);
        for (to, via_redacted) in found {
            edges.push(RedactedEdge { from: record.id, to, via_redacted });
        }
    }

    RedactedLineage {
        visible: records.iter().filter(|r| visible_ids.contains(&r.id)).cloned().collect(),
        redacted_count: records.len() - visible_ids.len(),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Attributes, Digest128, ProvenanceBuilder, SiteId, Timestamp, ToolDescriptor};

    /// Builds a chain r0 ← r1 ← … ← r(n-1) (each derived from the
    /// previous) and returns it child-last.
    fn chain(n: usize) -> Vec<ProvenanceRecord> {
        let mut out: Vec<ProvenanceRecord> = Vec::new();
        for i in 0..n {
            let mut b = ProvenanceBuilder::new(SiteId(1), Timestamp(i as u64))
                .attrs(&Attributes::new().with("step", i as i64));
            if let Some(prev) = out.last() {
                b = b.derived_from(prev.id, ToolDescriptor::new("t", "1"));
            }
            out.push(b.build(Digest128::of(&[i as u8])));
        }
        out
    }

    fn visible_steps(lineage: &RedactedLineage) -> Vec<i64> {
        lineage.visible.iter().filter_map(|r| r.attributes.get_int("step")).collect()
    }

    #[test]
    fn all_visible_is_identity() {
        let records = chain(4);
        let out = redact_lineage(&records, |_| true);
        assert_eq!(out.visible.len(), 4);
        assert_eq!(out.redacted_count, 0);
        assert!(!out.has_contractions());
        // Three direct edges, each with zero hidden hops.
        assert_eq!(out.edges.len(), 3);
        assert!(out.edges.iter().all(|e| e.via_redacted == 0));
    }

    #[test]
    fn hidden_middle_contracts_the_edge() {
        let records = chain(3); // r0 ← r1 ← r2; hide r1
        let hide = records[1].id;
        let out = redact_lineage(&records, |r| r.id != hide);
        assert_eq!(visible_steps(&out), vec![0, 2]);
        assert_eq!(out.redacted_count, 1);
        assert_eq!(out.edges.len(), 1);
        let e = &out.edges[0];
        assert_eq!((e.from, e.to, e.via_redacted), (records[2].id, records[0].id, 1));
    }

    #[test]
    fn hidden_run_counts_all_hops() {
        let records = chain(5); // hide r1..r3
        let hidden: Vec<TupleSetId> = records[1..4].iter().map(|r| r.id).collect();
        let out = redact_lineage(&records, |r| !hidden.contains(&r.id));
        assert_eq!(out.edges.len(), 1);
        assert_eq!(out.edges[0].via_redacted, 3);
        assert_eq!(out.redacted_count, 3);
    }

    #[test]
    fn no_leak_of_hidden_attributes() {
        let records = chain(4);
        let hide = records[2].id;
        let out = redact_lineage(&records, |r| r.id != hide);
        assert!(out.visible.iter().all(|r| r.id != hide));
        assert!(out.edges.iter().all(|e| e.from != hide && e.to != hide));
    }

    #[test]
    fn diamond_keeps_both_paths() {
        // root ← a, root ← b, a,b ← top (diamond); hide a only.
        let root = ProvenanceBuilder::new(SiteId(1), Timestamp(0)).build(Digest128::of(b"r"));
        let tool = ToolDescriptor::new("t", "1");
        let a = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attrs(&Attributes::new().with("side", "a"))
            .derived_from(root.id, tool.clone())
            .build(Digest128::of(b"a"));
        let b = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attrs(&Attributes::new().with("side", "b"))
            .derived_from(root.id, tool.clone())
            .build(Digest128::of(b"b"));
        let top = ProvenanceBuilder::new(SiteId(1), Timestamp(2))
            .derived_from(a.id, tool.clone())
            .derived_from(b.id, tool)
            .build(Digest128::of(b"t"));
        let records = vec![root.clone(), a.clone(), b.clone(), top.clone()];
        let out = redact_lineage(&records, |r| r.id != a.id);

        // top still reaches root two ways: contracted through a (1 hop)
        // and via b (direct edges top→b, b→root). The contracted edge
        // must carry the minimal hidden count for its endpoint pair.
        let top_to_root =
            out.edges.iter().find(|e| e.from == top.id && e.to == root.id).expect("edge");
        assert_eq!(top_to_root.via_redacted, 1);
        assert!(out.edges.iter().any(|e| e.from == top.id && e.to == b.id));
        assert!(out.edges.iter().any(|e| e.from == b.id && e.to == root.id));
    }

    #[test]
    fn parents_outside_the_set_are_ignored() {
        // A record referencing an ancestor that was never fetched (depth
        // cutoff) must not panic or fabricate edges.
        let ghost = TupleSetId(0xdead);
        let r = ProvenanceBuilder::new(SiteId(1), Timestamp(0))
            .derived_from(ghost, ToolDescriptor::new("t", "1"))
            .build(Digest128::of(b"x"));
        let out = redact_lineage(&[r], |_| true);
        assert_eq!(out.visible.len(), 1);
        assert!(out.edges.is_empty());
    }

    #[test]
    fn everything_hidden_yields_empty_view() {
        let records = chain(3);
        let out = redact_lineage(&records, |_| false);
        assert!(out.visible.is_empty());
        assert_eq!(out.redacted_count, 3);
        assert!(out.edges.is_empty());
    }
}
