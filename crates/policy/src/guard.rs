//! The enforcement point: a [`Pass`] wrapped so every read path runs
//! through the policy engine and every decision is audited.
//!
//! §V asks "how do we provide strong guarantees that privacy policies
//! will be enforced?" — the guard's answer is structural: it *owns* the
//! underlying store, so code holding only a `GuardedPass` cannot reach
//! an unmediated read path, and every mediated read appends to the
//! [`AuditLog`] whether it was allowed or denied.
//!
//! Writes stay open (sensors must keep capturing) but are where sticky
//! labels are applied: [`GuardedPass::capture`] stamps the supplied
//! label, and [`GuardedPass::derive`] joins it with every parent's label
//! so derived data can never silently *lose* protection.

use crate::aggregate::{kanonymize, KAnonymized, QuasiSpec};
use crate::audit::AuditLog;
use crate::error::{PolicyError, Result};
use crate::label::PolicyLabel;
use crate::redact::{redact_lineage, RedactedLineage};
use crate::rule::{Action, Decision, PolicyEngine, Principal};
use pass_core::{Event, Pass, Snapshot, Subscription};
use pass_index::{Direction, TraverseOpts};
use pass_model::{
    Annotation, Attributes, ProvenanceRecord, Reading, Timestamp, ToolDescriptor, TupleSetId,
};
use pass_query::Query;
use std::time::Duration;

/// A policy-enforcing wrapper around a local PASS.
pub struct GuardedPass {
    inner: Pass,
    engine: PolicyEngine,
    audit: AuditLog,
}

impl GuardedPass {
    /// Wraps `pass` with `engine`. The guard takes ownership: all further
    /// access flows through the policy.
    pub fn new(pass: Pass, engine: PolicyEngine) -> Self {
        GuardedPass { inner: pass, engine, audit: AuditLog::new() }
    }

    /// The audit trail of every decision this guard has taken.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The policy engine in force.
    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Unwraps the guard (for administrative migration; the audit log is
    /// returned alongside so the trail is not lost).
    pub fn into_inner(self) -> (Pass, AuditLog) {
        (self.inner, self.audit)
    }

    /// Checks (and audits) one action against one record.
    fn check(&self, principal: &Principal, action: Action, record: &ProvenanceRecord) -> Decision {
        let decision = self.engine.decide(principal, action, record);
        self.audit.record(
            &principal.name,
            action,
            record.id,
            decision.effect,
            decision.reason.clone(),
        );
        decision
    }

    fn deny(id: TupleSetId, action: Action, decision: Decision) -> PolicyError {
        PolicyError::Denied { id, action, reason: decision.reason }
    }

    // -- Writes (labelled) ----------------------------------------------

    /// Captures a raw tuple set, stamping `label` onto its provenance.
    pub fn capture(
        &self,
        principal: &Principal,
        label: PolicyLabel,
        mut attrs: Attributes,
        readings: Vec<Reading>,
        at: Timestamp,
    ) -> Result<TupleSetId> {
        let _ = principal; // capture is open; the principal is recorded on the attrs
        attrs.set("captured.by", principal.name.as_str());
        label.apply_to(&mut attrs);
        Ok(self.inner.capture(attrs, readings, at)?)
    }

    /// Derives a new tuple set. The stored label is the join of `label`
    /// with every *locally known* parent's label — sticky propagation:
    /// protection can be raised at derivation time but never dropped.
    // Mirrors `Pass::derive` plus (principal, label); a request struct
    // would bury the symmetry with the unguarded API.
    #[allow(clippy::too_many_arguments)]
    pub fn derive(
        &self,
        principal: &Principal,
        label: PolicyLabel,
        parents: &[TupleSetId],
        tool: &ToolDescriptor,
        mut attrs: Attributes,
        readings: Vec<Reading>,
        at: Timestamp,
    ) -> Result<TupleSetId> {
        let mut effective = label;
        for &p in parents {
            if let Some(parent) = self.inner.get_record(p) {
                effective = effective.join(&PolicyLabel::of_record(&parent));
            }
        }
        attrs.set("captured.by", principal.name.as_str());
        effective.apply_to(&mut attrs);
        Ok(self.inner.derive(parents, tool, attrs, readings, at)?)
    }

    /// Attaches an annotation (annotations do not change identity or
    /// labels, so no policy gate beyond existence).
    pub fn annotate(&self, id: TupleSetId, annotation: Annotation) -> Result<()> {
        Ok(self.inner.annotate(id, annotation)?)
    }

    // -- Mediated reads --------------------------------------------------

    /// Reads a provenance record, if the policy allows.
    pub fn get_record(&self, principal: &Principal, id: TupleSetId) -> Result<ProvenanceRecord> {
        let record = self.inner.get_record(id).ok_or(pass_core::PassError::NotFound(id))?;
        let d = self.check(principal, Action::ReadProvenance, &record);
        if d.allowed() {
            Ok(record)
        } else {
            Err(Self::deny(id, Action::ReadProvenance, d))
        }
    }

    /// Reads the sensor readings, if the policy allows.
    pub fn get_data(&self, principal: &Principal, id: TupleSetId) -> Result<Option<Vec<Reading>>> {
        let record = self.inner.get_record(id).ok_or(pass_core::PassError::NotFound(id))?;
        let d = self.check(principal, Action::ReadData, &record);
        if d.allowed() {
            Ok(self.inner.get_data(id)?)
        } else {
            Err(Self::deny(id, Action::ReadData, d))
        }
    }

    /// Runs a provenance query and filters the results down to records
    /// the principal may see. Filtering happens per-record *after* index
    /// evaluation, so a denied record influences neither the result set
    /// nor its ordering; the number of withheld hits is reported.
    pub fn query(
        &self,
        principal: &Principal,
        query: &Query,
    ) -> Result<(Vec<ProvenanceRecord>, usize)> {
        let result = self.inner.query(query)?;
        let mut visible = Vec::new();
        let mut withheld = 0usize;
        for id in result.ids() {
            let Some(record) = self.inner.get_record(id) else { continue };
            if self.check(principal, Action::ReadProvenance, &record).allowed() {
                visible.push(record);
            } else {
                withheld += 1;
            }
        }
        Ok((visible, withheld))
    }

    /// Parses and runs query text under the policy.
    pub fn query_text(
        &self,
        principal: &Principal,
        text: &str,
    ) -> Result<(Vec<ProvenanceRecord>, usize)> {
        let query = pass_query::parse(text).map_err(pass_core::PassError::Query)?;
        self.query(principal, &query)
    }

    /// Walks lineage and returns the policy-redacted view: forbidden
    /// records are contracted into opaque hops (see [`redact_lineage`]).
    ///
    /// The traversal itself gates on `ReadLineage` for the root (a
    /// principal who may not traverse a record learns nothing, not even
    /// how many ancestors exist); individual ancestors are then filtered
    /// by `ReadProvenance`.
    pub fn lineage(
        &self,
        principal: &Principal,
        id: TupleSetId,
        direction: Direction,
        opts: TraverseOpts,
    ) -> Result<RedactedLineage> {
        let root = self.inner.get_record(id).ok_or(pass_core::PassError::NotFound(id))?;
        let d = self.check(principal, Action::ReadLineage, &root);
        if !d.allowed() {
            return Err(Self::deny(id, Action::ReadLineage, d));
        }
        let mut records = self.inner.lineage(id, direction, opts)?;
        // Include the root so contracted edges can anchor on it.
        records.insert(0, root);
        Ok(redact_lineage(&records, |r| self.check(principal, Action::ReadProvenance, r).allowed()))
    }

    /// Exports provenance records for shipment beyond this PASS
    /// (federation publish, replication, archival). Gated on
    /// [`Action::Export`], which regimes typically restrict more tightly
    /// than local reads — a clinician may read PHI at the ward but not
    /// ship it to another site.
    pub fn export_records(
        &self,
        principal: &Principal,
        ids: &[TupleSetId],
    ) -> Result<Vec<ProvenanceRecord>> {
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            let record = self.inner.get_record(id).ok_or(pass_core::PassError::NotFound(id))?;
            let d = self.check(principal, Action::Export, &record);
            if !d.allowed() {
                return Err(Self::deny(id, Action::Export, d));
            }
            out.push(record);
        }
        Ok(out)
    }

    // -- Privacy-preserving release (§V aggregation) ----------------------

    /// Builds and ingests a k-anonymous aggregate over the readings of
    /// `parents`, returning the new tuple set and its metrics.
    ///
    /// The caller must hold `ReadData` on every parent (you cannot
    /// aggregate what you may not read). The released aggregate is
    /// labelled `release_label` — typically *lower* than the parents'
    /// labels: aggregation is the one sanctioned way protection is
    /// reduced, and the tuple set's provenance records exactly how
    /// (`k-anonymize` tool with k/level/suppressed parameters).
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate(
        &self,
        principal: &Principal,
        parents: &[TupleSetId],
        k: usize,
        spec: &QuasiSpec,
        max_suppression: f64,
        release_label: PolicyLabel,
        mut attrs: Attributes,
        at: Timestamp,
    ) -> Result<(TupleSetId, KAnonymized)> {
        let mut pooled = Vec::new();
        for &p in parents {
            let record = self.inner.get_record(p).ok_or(pass_core::PassError::NotFound(p))?;
            let d = self.check(principal, Action::ReadData, &record);
            if !d.allowed() {
                return Err(Self::deny(p, Action::ReadData, d));
            }
            if let Some(readings) = self.inner.get_data(p)? {
                pooled.extend(readings);
            }
        }
        let anon = kanonymize(&pooled, k, spec, max_suppression)?;
        let readings = anon.to_readings(spec, at);
        attrs.merge(&anon.to_attributes());
        attrs.set("captured.by", principal.name.as_str());
        release_label.apply_to(&mut attrs);
        // Deliberately *not* `self.derive`: sticky join would re-raise the
        // label to the parents' level, defeating the sanctioned release.
        let id = self.inner.derive(parents, &anon.tool(), attrs, readings, at)?;
        Ok((id, anon))
    }

    // -- Live subscriptions (mediated) ------------------------------------

    /// Opens a continuous query under the policy: the returned
    /// subscription delivers the same snapshot-then-tail stream as
    /// [`Pass::subscribe`], but every [`Event::Match`] is gated on
    /// `ReadProvenance` for `principal` — and audited — before delivery.
    /// Denied matches are withheld (counted, never delivered), so a
    /// subscriber learns nothing about records its label forbids, on the
    /// live path exactly as on the one-shot path.
    ///
    /// A lineage scope (`WATCH DESCENDANTS OF root`) is additionally
    /// gated on `ReadLineage` for the root, exactly like
    /// [`GuardedPass::lineage`]: a principal who may not traverse a
    /// record's lineage must not learn derivation structure by watching
    /// it instead.
    pub fn subscribe(
        &self,
        principal: &Principal,
        query: &Query,
    ) -> Result<GuardedSubscription<'_>> {
        if let Some(clause) = &query.lineage {
            let root = self
                .inner
                .get_record(clause.root)
                .ok_or(pass_core::PassError::NotFound(clause.root))?;
            let d = self.check(principal, Action::ReadLineage, &root);
            if !d.allowed() {
                return Err(Self::deny(clause.root, Action::ReadLineage, d));
            }
        }
        let inner = self.inner.subscribe(query)?;
        Ok(GuardedSubscription { guard: self, principal: principal.clone(), inner, withheld: 0 })
    }

    /// Parses and opens a subscription statement under the policy
    /// (`SUBSCRIBE <query>` / `WATCH DESCENDANTS OF ts:HEX …`).
    pub fn subscribe_text(
        &self,
        principal: &Principal,
        text: &str,
    ) -> Result<GuardedSubscription<'_>> {
        let statement = pass_query::parse_subscribe(text).map_err(pass_core::PassError::Query)?;
        self.subscribe(principal, &statement.query)
    }

    /// A repeatable-read view of the store with the policy still in
    /// force: reads answer from one pinned commit version, and every
    /// record-bearing read is mediated and audited exactly like the live
    /// surface. (The raw [`Snapshot`] stays out of reach — handing it
    /// out would bypass the guard the way `into_inner` deliberately
    /// does, minus the explicit ownership handover.)
    pub fn snapshot(&self) -> GuardedSnapshot<'_> {
        GuardedSnapshot { guard: self, snapshot: self.inner.snapshot() }
    }

    // -- Unmediated metadata ----------------------------------------------

    /// Number of records held (not policy-sensitive).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// A policy-mediated live subscription (see [`GuardedPass::subscribe`]).
///
/// Wraps a [`Subscription`]: catch-up, `CaughtUp`, and tail semantics
/// are unchanged; matches the principal may not read are withheld and
/// the denial is audited.
pub struct GuardedSubscription<'g> {
    guard: &'g GuardedPass,
    principal: Principal,
    inner: Subscription,
    withheld: u64,
}

impl std::fmt::Debug for GuardedSubscription<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardedSubscription")
            .field("principal", &self.principal.name)
            .field("withheld", &self.withheld)
            .finish()
    }
}

impl GuardedSubscription<'_> {
    /// Non-blocking receive; denied matches are skipped (and counted).
    pub fn try_next(&mut self) -> Option<Event> {
        loop {
            let event = self.inner.try_next()?;
            if let Some(event) = self.admit(event) {
                return Some(event);
            }
        }
    }

    /// Blocking receive with a timeout; `None` means the timeout passed.
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<Event> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let event = self.inner.next_timeout(remaining)?;
            if let Some(event) = self.admit(event) {
                return Some(event);
            }
        }
    }

    /// Matches withheld from this subscriber by policy so far.
    pub fn withheld(&self) -> u64 {
        self.withheld
    }

    /// The commit version the catch-up phase reflects.
    pub fn catch_up_version(&self) -> u64 {
        self.inner.catch_up_version()
    }

    fn admit(&mut self, event: Event) -> Option<Event> {
        match event {
            Event::Match(record) => {
                if self.guard.check(&self.principal, Action::ReadProvenance, &record).allowed() {
                    Some(Event::Match(record))
                } else {
                    self.withheld += 1;
                    None
                }
            }
            other => Some(other),
        }
    }
}

/// A policy-mediated snapshot (see [`GuardedPass::snapshot`]): the
/// repeatable-read surface with per-record enforcement intact.
pub struct GuardedSnapshot<'g> {
    guard: &'g GuardedPass,
    snapshot: Snapshot,
}

impl GuardedSnapshot<'_> {
    /// The commit version this view reflects.
    pub fn version(&self) -> u64 {
        self.snapshot.version()
    }

    /// Number of records visible (not policy-sensitive, as on the live
    /// surface).
    pub fn len(&self) -> usize {
        self.snapshot.len()
    }

    /// True when no records are visible.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty()
    }

    /// Reads a provenance record from the pinned state, if the policy
    /// allows (mediated and audited like [`GuardedPass::get_record`]).
    pub fn get_record(&self, principal: &Principal, id: TupleSetId) -> Result<ProvenanceRecord> {
        let record = self.snapshot.get_record(id).ok_or(pass_core::PassError::NotFound(id))?;
        let d = self.guard.check(principal, Action::ReadProvenance, &record);
        if d.allowed() {
            Ok(record)
        } else {
            Err(GuardedPass::deny(id, Action::ReadProvenance, d))
        }
    }

    /// Runs a query against the pinned state and filters the results to
    /// what the principal may see; returns `(visible, withheld)` like
    /// [`GuardedPass::query`], with repeatable reads: re-running against
    /// this view cannot observe later commits.
    pub fn query(
        &self,
        principal: &Principal,
        query: &Query,
    ) -> Result<(Vec<ProvenanceRecord>, usize)> {
        let result = self.snapshot.query(query)?;
        let mut visible = Vec::new();
        let mut withheld = 0usize;
        for record in result.records {
            if self.guard.check(principal, Action::ReadProvenance, &record).allowed() {
                visible.push(record);
            } else {
                withheld += 1;
            }
        }
        Ok((visible, withheld))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Sensitivity;
    use crate::rule::Rule;
    use pass_model::{SensorId, SiteId};

    fn clinician() -> Principal {
        Principal::new("emt-1")
            .with_role("clinician")
            .with_clearance(Sensitivity::Private)
            .with_category("phi")
    }

    fn engine() -> PolicyEngine {
        PolicyEngine::deny_by_default()
            .with_rule(Rule::allow("clinician").for_role("clinician"))
            .with_rule(Rule::allow("public-read").when(pass_query::Predicate::Cmp(
                crate::label::ATTR_SENSITIVITY.into(),
                pass_query::CmpOp::Le,
                0i64.into(),
            )))
    }

    fn vitals(hr: f64) -> Vec<Reading> {
        vec![Reading::new(SensorId(1), Timestamp(1)).with("heart_rate", hr).with("age", 40.0)]
    }

    fn phi_label() -> PolicyLabel {
        PolicyLabel::new(Sensitivity::Private).with_category("phi")
    }

    fn guarded() -> GuardedPass {
        GuardedPass::new(Pass::open_memory(SiteId(1)), engine())
    }

    #[test]
    fn denied_reader_gets_error_and_audit_entry() {
        let g = guarded();
        let id = g
            .capture(
                &clinician(),
                phi_label(),
                Attributes::new().with("domain", "medical"),
                vitals(80.0),
                Timestamp(1),
            )
            .unwrap();
        let outsider = Principal::new("analyst");
        let err = g.get_data(&outsider, id).unwrap_err();
        assert!(err.is_denied());
        assert_eq!(g.audit().denials().len(), 1);
        assert_eq!(g.audit().denials()[0].principal, "analyst");
        // The clinician succeeds, and that is audited too.
        assert!(g.get_data(&clinician(), id).unwrap().is_some());
        assert_eq!(g.audit().len(), 2);
    }

    #[test]
    fn derive_joins_parent_labels_sticky() {
        let g = guarded();
        let emt = clinician();
        let private =
            g.capture(&emt, phi_label(), Attributes::new(), vitals(80.0), Timestamp(1)).unwrap();
        // Attempted downgrade: derive with a Public label.
        let derived = g
            .derive(
                &emt,
                PolicyLabel::public(),
                &[private],
                &ToolDescriptor::new("smooth", "1"),
                Attributes::new(),
                vitals(79.0),
                Timestamp(2),
            )
            .unwrap();
        let record = g.get_record(&emt, derived).unwrap();
        let label = PolicyLabel::of_record(&record);
        assert_eq!(label.sensitivity, Sensitivity::Private, "downgrade must not stick");
        assert!(label.categories.contains("phi"));
    }

    #[test]
    fn query_filters_and_counts_withheld() {
        let g = guarded();
        let emt = clinician();
        g.capture(
            &emt,
            phi_label(),
            Attributes::new().with("domain", "medical"),
            vitals(80.0),
            Timestamp(1),
        )
        .unwrap();
        g.capture(
            &emt,
            PolicyLabel::public(),
            Attributes::new().with("domain", "medical"),
            vitals(81.0),
            Timestamp(2),
        )
        .unwrap();

        let outsider = Principal::new("analyst");
        let (visible, withheld) =
            g.query_text(&outsider, r#"FIND WHERE domain = "medical""#).unwrap();
        assert_eq!((visible.len(), withheld), (1, 1));
        let (visible, withheld) = g.query_text(&emt, r#"FIND WHERE domain = "medical""#).unwrap();
        assert_eq!((visible.len(), withheld), (2, 0));
    }

    #[test]
    fn lineage_is_redacted_not_severed() {
        let g = guarded();
        let emt = clinician();
        let raw =
            g.capture(&emt, phi_label(), Attributes::new(), vitals(90.0), Timestamp(1)).unwrap();
        let mid = g
            .derive(
                &emt,
                phi_label(),
                &[raw],
                &ToolDescriptor::new("filter", "1"),
                Attributes::new(),
                vitals(88.0),
                Timestamp(2),
            )
            .unwrap();
        // Public summary derived from the PHI chain, sanctioned release.
        let spec = QuasiSpec::new(
            vec![crate::aggregate::NumericLadder::new("age", vec![10.0]).unwrap()],
            "heart_rate",
        )
        .unwrap();
        let (summary, _) = g
            .aggregate(
                &emt,
                &[mid],
                1,
                &spec,
                0.0,
                PolicyLabel::public(),
                Attributes::new(),
                Timestamp(3),
            )
            .unwrap();

        // A public reader walks the summary's ancestry: the two PHI
        // records are contracted, not shown, and not severed.
        let public = Principal::new("citizen");
        let view =
            g.lineage(&public, summary, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
        assert_eq!(view.redacted_count, 2);
        assert!(view.visible.iter().all(|r| r.id == summary));
        assert!(view.edges.is_empty(), "no visible ancestor remains");

        // The clinician sees everything.
        let full =
            g.lineage(&emt, summary, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
        assert_eq!(full.redacted_count, 0);
        assert_eq!(full.visible.len(), 3);
    }

    #[test]
    fn lineage_root_gate_blocks_uncleared_traversal() {
        let g = guarded();
        let emt = clinician();
        let raw =
            g.capture(&emt, phi_label(), Attributes::new(), vitals(90.0), Timestamp(1)).unwrap();
        let outsider = Principal::new("analyst");
        let err =
            g.lineage(&outsider, raw, Direction::Ancestors, TraverseOpts::unbounded()).unwrap_err();
        assert!(err.is_denied());
    }

    #[test]
    fn aggregate_requires_read_data_on_parents() {
        let g = guarded();
        let emt = clinician();
        let raw =
            g.capture(&emt, phi_label(), Attributes::new(), vitals(90.0), Timestamp(1)).unwrap();
        let spec = QuasiSpec::new(
            vec![crate::aggregate::NumericLadder::new("age", vec![10.0]).unwrap()],
            "heart_rate",
        )
        .unwrap();
        let outsider = Principal::new("analyst");
        let err = g
            .aggregate(
                &outsider,
                &[raw],
                1,
                &spec,
                0.0,
                PolicyLabel::public(),
                Attributes::new(),
                Timestamp(2),
            )
            .unwrap_err();
        assert!(err.is_denied());
    }

    #[test]
    fn export_is_gated_independently_of_read() {
        // Clinicians read PHI locally but may not ship it out; the export
        // rule carves Export out of the clinician allow.
        let engine = PolicyEngine::deny_by_default()
            .with_rule(
                Rule::deny("no-phi-export")
                    .on([Action::Export])
                    .when(pass_query::Predicate::Eq("domain".into(), "medical".into())),
            )
            .with_rule(Rule::allow("clinician").for_role("clinician"));
        let g = GuardedPass::new(Pass::open_memory(SiteId(1)), engine);
        let emt = clinician();
        let id = g
            .capture(
                &emt,
                phi_label(),
                Attributes::new().with("domain", "medical"),
                vitals(88.0),
                Timestamp(1),
            )
            .unwrap();

        assert!(g.get_data(&emt, id).is_ok(), "local read allowed");
        let err = g.export_records(&emt, &[id]).unwrap_err();
        assert!(err.is_denied(), "export refused: {err}");

        // Non-medical records export fine under the same engine.
        let ok = g
            .capture(
                &emt,
                PolicyLabel::public(),
                Attributes::new().with("domain", "traffic"),
                vec![],
                Timestamp(2),
            )
            .unwrap();
        assert_eq!(g.export_records(&emt, &[ok]).unwrap().len(), 1);
    }

    #[test]
    fn export_of_batch_fails_atomically() {
        let g = guarded();
        let emt = clinician();
        let readable = g
            .capture(&emt, PolicyLabel::public(), Attributes::new(), vec![], Timestamp(1))
            .unwrap();
        let forbidden =
            g.capture(&emt, phi_label(), Attributes::new(), vitals(80.0), Timestamp(2)).unwrap();
        let outsider = Principal::new("mirror-daemon");
        // Alone, the public record exports (public-read covers Export).
        assert_eq!(g.export_records(&outsider, &[readable]).unwrap().len(), 1);
        // Mixed with a forbidden record, the whole batch is refused — no
        // partial shipment.
        let err = g.export_records(&outsider, &[readable, forbidden]).unwrap_err();
        assert!(err.is_denied());
    }

    #[test]
    fn concurrent_guarded_reads_audit_everything() {
        use std::sync::Arc;
        let g = Arc::new(guarded());
        let emt = clinician();
        let mut ids = Vec::new();
        for i in 0..8u64 {
            let label = if i % 2 == 0 { phi_label() } else { PolicyLabel::public() };
            ids.push(
                g.capture(
                    &emt,
                    label,
                    Attributes::new().with("domain", "medical"),
                    vitals(70.0 + i as f64),
                    Timestamp(i),
                )
                .unwrap(),
            );
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let g = Arc::clone(&g);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                let reader =
                    if t % 2 == 0 { clinician() } else { Principal::new(format!("outsider-{t}")) };
                let mut allowed = 0usize;
                for _ in 0..25 {
                    for &id in &ids {
                        if g.get_record(&reader, id).is_ok() {
                            allowed += 1;
                        }
                    }
                }
                allowed
            }));
        }
        let allowed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Clinician threads see all 8; outsiders only the 4 public ones
        // (public-read rule matches sensitivity 0).
        assert_eq!(allowed, 2 * 25 * 8 + 2 * 25 * 4);
        // Every single probe was audited, none lost under contention.
        assert_eq!(g.audit().len(), 4 * 25 * 8);
    }

    #[test]
    fn redaction_composes_with_abstraction_boundaries() {
        // A lineage that has BOTH an abstraction boundary (§V "gcc 3.3.3")
        // and policy-hidden records: the traversal stops at the abstracted
        // tool, and what it does return is still policy-redacted.
        let g = guarded();
        let emt = clinician();
        let toolchain = g
            .capture(
                &emt,
                PolicyLabel::public(),
                Attributes::new().with("domain", "toolchain"),
                vec![],
                Timestamp(1),
            )
            .unwrap();
        // `compiled` derives from the toolchain via an *abstracted* tool.
        let compiled = g
            .derive(
                &emt,
                phi_label(),
                &[toolchain],
                &pass_model::ToolDescriptor::abstracted("gcc", "3.3.3"),
                Attributes::new(),
                vitals(1.0),
                Timestamp(2),
            )
            .unwrap();
        let result = g
            .derive(
                &emt,
                PolicyLabel::public(),
                &[compiled],
                &ToolDescriptor::new("analyze", "1"),
                Attributes::new(),
                vec![],
                Timestamp(3),
            )
            .unwrap();
        // Sticky labels: `result` asked for public but joins `compiled`'s
        // PHI label, so grant the reader lineage on the root via clearance…
        let reader = Principal::new("reviewer")
            .with_role("clinician")
            .with_clearance(Sensitivity::Private)
            .with_category("phi");

        let abstracted = g
            .lineage(
                &reader,
                result,
                Direction::Ancestors,
                TraverseOpts { stop_at_abstraction: true, ..TraverseOpts::default() },
            )
            .unwrap();
        // Abstraction stops before the toolchain's own history.
        assert!(abstracted.visible.iter().all(|r| r.id != toolchain));
        assert_eq!(abstracted.redacted_count, 0, "reader is fully cleared");

        // An uncleared-for-PHI reader with lineage rights on the root sees
        // `compiled` contracted away even inside the abstracted view.
        let engine = PolicyEngine::allow_by_default();
        let (pass, _) = g.into_inner();
        let open = GuardedPass::new(pass, engine);
        let public_reader = Principal::new("citizen");
        let err = open
            .lineage(&public_reader, result, Direction::Ancestors, TraverseOpts::unbounded())
            .unwrap_err();
        assert!(err.is_denied(), "root itself is PHI (sticky), so traversal is gated");
    }

    #[test]
    fn guarded_subscription_withholds_and_audits_denied_matches() {
        let g = guarded();
        let emt = clinician();
        // One public record pre-subscribe (catch-up), then one PHI + one
        // public record live (tail).
        g.capture(
            &emt,
            PolicyLabel::public(),
            Attributes::new().with("domain", "medical").with("seq", 0i64),
            vitals(70.0),
            Timestamp(1),
        )
        .unwrap();

        let outsider = Principal::new("analyst");
        let mut sub = g
            .subscribe_text(&outsider, r#"SUBSCRIBE FIND WHERE domain = "medical""#)
            .expect("subscribe");
        let audit_before = g.audit().len();

        g.capture(
            &emt,
            phi_label(),
            Attributes::new().with("domain", "medical").with("seq", 1i64),
            vitals(80.0),
            Timestamp(2),
        )
        .unwrap();
        g.capture(
            &emt,
            PolicyLabel::public(),
            Attributes::new().with("domain", "medical").with("seq", 2i64),
            vitals(81.0),
            Timestamp(3),
        )
        .unwrap();

        let mut delivered = Vec::new();
        while let Some(event) = sub.try_next() {
            match event {
                Event::Match(r) => {
                    delivered.push(r.attributes.get("seq").unwrap().as_int().unwrap())
                }
                Event::CaughtUp { .. } => {}
                Event::Lagged(n) => panic!("lagged {n}"),
            }
        }
        assert_eq!(delivered, vec![0, 2], "PHI match withheld from the outsider");
        assert_eq!(sub.withheld(), 1);
        // Every delivered AND withheld match was audited.
        assert_eq!(g.audit().len() - audit_before, 3);
        assert_eq!(g.audit().denials().len(), 1);
        drop(sub);

        // The clinician's subscription sees everything.
        let mut sub = g
            .subscribe_text(&emt, r#"SUBSCRIBE FIND WHERE domain = "medical""#)
            .expect("subscribe");
        let mut seen = 0;
        while let Some(event) = sub.try_next() {
            if matches!(event, Event::Match(_)) {
                seen += 1;
            }
        }
        assert_eq!((seen, sub.withheld()), (3, 0));
    }

    #[test]
    fn watch_subscription_is_gated_on_lineage_rights() {
        let g = guarded();
        let emt = clinician();
        let root =
            g.capture(&emt, phi_label(), Attributes::new(), vitals(90.0), Timestamp(1)).unwrap();
        let statement = format!("WATCH DESCENDANTS OF ts:{}", root.full_hex());

        // The outsider may not traverse the PHI root's lineage — and may
        // not watch it either, even though public descendants would pass
        // the per-record gate.
        let outsider = Principal::new("analyst");
        let err = g.subscribe_text(&outsider, &statement).unwrap_err();
        assert!(err.is_denied(), "{err}");
        assert_eq!(g.audit().denials().len(), 1, "the refused watch is audited");

        // The clinician watches fine.
        assert!(g.subscribe_text(&emt, &statement).is_ok());
    }

    #[test]
    fn guarded_snapshot_mediates_pinned_reads() {
        let g = guarded();
        let emt = clinician();
        let private = g
            .capture(
                &emt,
                phi_label(),
                Attributes::new().with("domain", "medical"),
                vitals(80.0),
                Timestamp(1),
            )
            .unwrap();
        g.capture(
            &emt,
            PolicyLabel::public(),
            Attributes::new().with("domain", "medical"),
            vitals(81.0),
            Timestamp(2),
        )
        .unwrap();

        let view = g.snapshot();
        assert_eq!(view.len(), 2);

        // Mediated reads against the pinned state.
        let outsider = Principal::new("analyst");
        assert!(view.get_record(&outsider, private).unwrap_err().is_denied());
        assert!(view.get_record(&emt, private).is_ok());
        let (visible, withheld) = view
            .query(&outsider, &pass_query::parse(r#"FIND WHERE domain = "medical""#).unwrap())
            .unwrap();
        assert_eq!((visible.len(), withheld), (1, 1));

        // Repeatable reads: a commit after the snapshot is invisible.
        g.capture(
            &emt,
            PolicyLabel::public(),
            Attributes::new().with("domain", "medical"),
            vitals(82.0),
            Timestamp(3),
        )
        .unwrap();
        assert_eq!(view.len(), 2, "pinned");
        let (visible, _) = view
            .query(&emt, &pass_query::parse(r#"FIND WHERE domain = "medical""#).unwrap())
            .unwrap();
        assert_eq!(visible.len(), 2, "query answers from the pinned version");
        assert_eq!(g.len(), 3, "live surface moved on");
    }

    #[test]
    fn aggregate_release_is_publicly_readable_with_provenance() {
        let g = guarded();
        let emt = clinician();
        let mut parents = Vec::new();
        for i in 0..5u64 {
            parents.push(
                g.capture(
                    &emt,
                    phi_label(),
                    Attributes::new().with("patient", i as i64),
                    vitals(70.0 + i as f64),
                    Timestamp(i),
                )
                .unwrap(),
            );
        }
        let spec = QuasiSpec::new(
            vec![crate::aggregate::NumericLadder::new("age", vec![10.0]).unwrap()],
            "heart_rate",
        )
        .unwrap();
        let (id, anon) = g
            .aggregate(
                &emt,
                &parents,
                5,
                &spec,
                0.0,
                PolicyLabel::public(),
                Attributes::new().with("domain", "medical"),
                Timestamp(10),
            )
            .unwrap();
        assert_eq!(anon.released(), 5);

        let public = Principal::new("citizen");
        let record = g.get_record(&public, id).expect("public aggregate readable");
        assert_eq!(record.ancestry.len(), 5, "provenance names all sources");
        assert_eq!(record.ancestry[0].tool.name, "k-anonymize");
        let data = g.get_data(&public, id).unwrap().unwrap();
        assert_eq!(data.len(), anon.groups.len());
    }
}
