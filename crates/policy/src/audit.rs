//! The append-only audit trail.
//!
//! "How do we provide strong guarantees that privacy policies will be
//! enforced?" (§V). Guarantees need evidence: every decision the guard
//! takes — allow or deny — is appended here with the principal, the
//! action, the subject record, and the reason the engine gave. The log
//! can be filtered for review and exported as ordinary sensor readings,
//! so an auditor's PASS can `capture` the trail and the audit record
//! itself gains provenance (who exported it, when, from which store).

use crate::rule::{Action, Effect, Reason};
use parking_lot::RwLock;
use pass_model::{Reading, SensorId, Timestamp, TupleSetId};

/// One audited decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Monotone sequence number (the log's own ordering).
    pub seq: u64,
    /// Who asked.
    pub principal: String,
    /// What they asked to do.
    pub action: Action,
    /// The record they asked about.
    pub subject: TupleSetId,
    /// What the engine said.
    pub effect: Effect,
    /// Why (label dominance, rule id, or default).
    pub reason: Reason,
}

/// Append-only, thread-safe audit log.
///
/// The log deliberately has no `remove`: §V's enforcement guarantee is
/// only as strong as the trail's completeness.
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: RwLock<Vec<AuditEntry>>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends a decision, returning its sequence number.
    pub fn record(
        &self,
        principal: &str,
        action: Action,
        subject: TupleSetId,
        effect: Effect,
        reason: Reason,
    ) -> u64 {
        let mut entries = self.entries.write();
        let seq = entries.len() as u64;
        entries.push(AuditEntry {
            seq,
            principal: principal.to_owned(),
            action,
            subject,
            effect,
            reason,
        });
        seq
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when nothing has been audited yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the full trail, in sequence order.
    pub fn entries(&self) -> Vec<AuditEntry> {
        self.entries.read().clone()
    }

    /// Snapshot of denials only.
    pub fn denials(&self) -> Vec<AuditEntry> {
        self.entries.read().iter().filter(|e| e.effect == Effect::Deny).cloned().collect()
    }

    /// Snapshot of the entries for one principal.
    pub fn by_principal(&self, name: &str) -> Vec<AuditEntry> {
        self.entries.read().iter().filter(|e| e.principal == name).cloned().collect()
    }

    /// Snapshot of the entries touching one record.
    pub fn by_subject(&self, id: TupleSetId) -> Vec<AuditEntry> {
        self.entries.read().iter().filter(|e| e.subject == id).cloned().collect()
    }

    /// Renders the trail as sensor readings (one per entry, sequence
    /// number as the timestamp), ready to `capture` into a PASS so the
    /// audit trail itself carries provenance.
    pub fn export_readings(&self) -> Vec<Reading> {
        self.entries
            .read()
            .iter()
            .map(|e| {
                Reading::new(SensorId(0), Timestamp(e.seq))
                    .with("principal", e.principal.as_str())
                    .with("action", e.action.to_string())
                    .with("subject", e.subject.full_hex())
                    .with("effect", e.effect.to_string())
                    .with("reason", e.reason.to_string())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u128) -> TupleSetId {
        TupleSetId(n)
    }

    #[test]
    fn records_in_sequence_order() {
        let log = AuditLog::new();
        let s0 = log.record("a", Action::ReadData, id(1), Effect::Allow, Reason::Default);
        let s1 = log.record("b", Action::Export, id(2), Effect::Deny, Reason::Default);
        assert_eq!((s0, s1), (0, 1));
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].seq < entries[1].seq);
    }

    #[test]
    fn filters_by_effect_principal_and_subject() {
        let log = AuditLog::new();
        log.record("alice", Action::ReadData, id(1), Effect::Allow, Reason::Default);
        log.record("bob", Action::ReadData, id(1), Effect::Deny, Reason::Default);
        log.record("bob", Action::Export, id(2), Effect::Deny, Reason::Default);
        assert_eq!(log.denials().len(), 2);
        assert_eq!(log.by_principal("bob").len(), 2);
        assert_eq!(log.by_subject(id(1)).len(), 2);
        assert_eq!(log.by_principal("carol").len(), 0);
    }

    #[test]
    fn export_is_one_reading_per_entry_with_fields() {
        let log = AuditLog::new();
        log.record(
            "alice",
            Action::ReadLineage,
            id(7),
            Effect::Deny,
            Reason::Rule { id: "r1".into() },
        );
        let readings = log.export_readings();
        assert_eq!(readings.len(), 1);
        let r = &readings[0];
        assert_eq!(r.field("principal").and_then(|v| v.as_str()), Some("alice"));
        assert_eq!(r.field("effect").and_then(|v| v.as_str()), Some("deny"));
        assert_eq!(r.field("reason").and_then(|v| v.as_str()), Some("rule r1"));
    }

    #[test]
    fn concurrent_appends_never_lose_entries() {
        let log = std::sync::Arc::new(AuditLog::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    log.record(
                        &format!("p{t}"),
                        Action::ReadData,
                        id(i),
                        Effect::Allow,
                        Reason::Default,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 1000);
        // Sequence numbers are unique and dense.
        let mut seqs: Vec<u64> = log.entries().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..1000).collect::<Vec<_>>());
    }
}
