//! # pass-policy — the paper's §V privacy and security agenda, executable
//!
//! Section V of the paper closes with a list of open problems: "Security
//! is essential as well, as much of the data collected in sensor networks
//! (e.g., medical data) is private. Much of this data is valuable even
//! when aggregated to preserve privacy. What degree of aggregation is
//! necessary? How does one represent the provenance of such aggregates?
//! How do regulatory moves like HIPAA affect the situation? And how do we
//! provide strong guarantees that privacy policies will be enforced?"
//!
//! This crate answers each question with a mechanism:
//!
//! | §V question | Mechanism | Module |
//! |---|---|---|
//! | strong enforcement guarantees | mandatory sensitivity-label lattice + discretionary attribute rules, checked on *every* read path | [`label`], [`rule`], [`guard`] |
//! | what degree of aggregation? | k-anonymous aggregation with measured re-identification risk and utility loss (experiment E17 sweeps k) | [`aggregate`] |
//! | provenance of aggregates | aggregates are ordinary derived tuple sets whose [`pass_model::ToolDescriptor`] carries (k, generalization level, suppression count) | [`aggregate`] |
//! | HIPAA-style regimes | deny-by-default engines over `category` labels (e.g. `phi`), with a complete, queryable audit trail | [`rule`], [`audit`] |
//! | provenance must survive protection | lineage redaction collapses forbidden records into opaque placeholders while preserving reachability between visible ones | [`redact`] |
//!
//! Labels ride *on* provenance — they are ordinary attributes
//! (`policy.sensitivity`, `policy.categories`) of the record, so the
//! paper's "provenance as name" machinery indexes, queries, and
//! propagates them for free. Derived tuple sets inherit the join of their
//! parents' labels ("sticky" policies): see
//! [`guard::GuardedPass::derive`].
//!
//! ```
//! use pass_core::Pass;
//! use pass_model::SiteId;
//! use pass_policy::{
//!     Action, Effect, GuardedPass, PolicyEngine, PolicyLabel, Principal, Sensitivity,
//! };
//!
//! // Deny-by-default HIPAA-ish regime: clinicians may read PHI, others not.
//! let engine = PolicyEngine::deny_by_default()
//!     .with_rule(pass_policy::Rule::allow("clinician-read")
//!         .for_role("clinician")
//!         .on([Action::ReadData, Action::ReadProvenance, Action::ReadLineage]));
//! let guarded = GuardedPass::new(Pass::open_memory(SiteId(1)), engine);
//!
//! let emt = Principal::new("emt-7")
//!     .with_role("clinician")
//!     .with_clearance(Sensitivity::Private)
//!     .with_category("phi");
//! let label = PolicyLabel::new(Sensitivity::Private).with_category("phi");
//! let id = guarded
//!     .capture(&emt, label, pass_model::Attributes::new().with("domain", "medical"),
//!              vec![], pass_model::Timestamp(1))
//!     .unwrap();
//!
//! // The clinician reads; an unprivileged analyst is refused and audited.
//! assert!(guarded.get_record(&emt, id).is_ok());
//! let analyst = Principal::new("analyst-1");
//! assert!(guarded.get_record(&analyst, id).is_err());
//! assert_eq!(guarded.audit().denials().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod audit;
pub mod error;
pub mod guard;
pub mod label;
pub mod redact;
pub mod rule;

pub use aggregate::{kanonymize, AggregateGroup, KAnonymized, NumericLadder, QuasiSpec};
pub use audit::{AuditEntry, AuditLog};
pub use error::{PolicyError, Result};
pub use guard::{GuardedPass, GuardedSnapshot, GuardedSubscription};
pub use label::{Clearance, PolicyLabel, Sensitivity};
pub use redact::{redact_lineage, RedactedEdge, RedactedLineage};
pub use rule::{Action, Decision, Effect, PolicyEngine, Principal, Reason, Rule};
