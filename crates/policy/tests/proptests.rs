//! Property suites for the policy crate's invariants:
//!
//! * the label lattice obeys the semilattice laws and `permits` is
//!   monotone in them (the §V "strong guarantee" rests on this);
//! * k-anonymization never releases a group below k, conserves readings,
//!   and degrades monotonically as k grows;
//! * lineage redaction preserves visible-to-visible reachability exactly
//!   and never leaks a hidden id.

use pass_policy::{
    Action, Clearance, Effect, PolicyEngine, PolicyLabel, Principal, Rule, Sensitivity,
};
use proptest::prelude::*;

use pass_model::{
    Attributes, Digest128, ProvenanceBuilder, ProvenanceRecord, Reading, SensorId, SiteId,
    Timestamp, ToolDescriptor, TupleSetId,
};
use pass_policy::{kanonymize, redact_lineage, NumericLadder, QuasiSpec};
use std::collections::{BTreeSet, HashMap, HashSet};

fn arb_sensitivity() -> impl Strategy<Value = Sensitivity> {
    prop_oneof![
        Just(Sensitivity::Public),
        Just(Sensitivity::Internal),
        Just(Sensitivity::Restricted),
        Just(Sensitivity::Private),
    ]
}

fn arb_categories() -> impl Strategy<Value = BTreeSet<String>> {
    proptest::collection::btree_set(
        prop_oneof![Just("phi".to_string()), Just("loc".to_string()), Just("mil".to_string())],
        0..=3,
    )
}

fn arb_label() -> impl Strategy<Value = PolicyLabel> {
    (arb_sensitivity(), arb_categories())
        .prop_map(|(sensitivity, categories)| PolicyLabel { sensitivity, categories })
}

fn arb_clearance() -> impl Strategy<Value = Clearance> {
    (arb_sensitivity(), arb_categories())
        .prop_map(|(level, categories)| Clearance { level, categories })
}

proptest! {
    #[test]
    fn join_is_commutative_associative_idempotent(
        a in arb_label(), b in arb_label(), c in arb_label()
    ) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        prop_assert_eq!(a.join(&a), a.clone());
    }

    #[test]
    fn leq_agrees_with_join(a in arb_label(), b in arb_label()) {
        // a ⊑ b  ⇔  a ⊔ b = b (the defining law of a join-semilattice order).
        prop_assert_eq!(a.leq(&b), a.join(&b) == b);
        // And the join is an upper bound of both.
        let j = a.join(&b);
        prop_assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn permits_is_antitone_in_the_label(
        a in arb_label(), b in arb_label(), clearance in arb_clearance()
    ) {
        // If the stricter label is permitted, the weaker one must be too.
        if a.leq(&b) && b.permits(&clearance) {
            prop_assert!(a.permits(&clearance));
        }
        // The join is permitted iff both halves are.
        prop_assert_eq!(
            a.join(&b).permits(&clearance),
            a.permits(&clearance) && b.permits(&clearance)
        );
    }

    #[test]
    fn label_attribute_round_trip(label in arb_label()) {
        let record = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attrs(&label.to_attributes())
            .build(Digest128::of(b"x"));
        prop_assert_eq!(PolicyLabel::of_record(&record), label);
    }

    #[test]
    fn engine_never_allows_undominated_labels(
        label in arb_label(),
        clearance in arb_clearance(),
        default_allow in any::<bool>(),
    ) {
        // Even an engine made of nothing but allow-everything rules must
        // refuse a principal whose clearance does not dominate.
        let engine = if default_allow {
            PolicyEngine::allow_by_default()
        } else {
            PolicyEngine::deny_by_default()
        }
        .with_rule(Rule::allow("open"));
        let principal = Principal {
            name: "p".into(),
            roles: BTreeSet::new(),
            clearance: clearance.clone(),
            site: None,
        };
        let mut attrs = Attributes::new();
        label.apply_to(&mut attrs);
        let record = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
            .attrs(&attrs)
            .build(Digest128::of(b"r"));
        let decision = engine.decide(&principal, Action::ReadData, &record);
        if !label.permits(&clearance) {
            prop_assert_eq!(decision.effect, Effect::Deny);
        } else {
            prop_assert_eq!(decision.effect, Effect::Allow);
        }
    }
}

// ---------------------------------------------------------------------
// k-anonymity
// ---------------------------------------------------------------------

fn arb_patients() -> impl Strategy<Value = Vec<Reading>> {
    proptest::collection::vec((0u8..100, 0u8..8, 40u16..180), 0..120).prop_map(|rows| {
        rows.into_iter()
            .map(|(age, zone, hr)| {
                Reading::new(SensorId(1), Timestamp(0))
                    .with("age", age as f64)
                    .with("zone", zone as f64)
                    .with("heart_rate", hr as f64)
            })
            .collect()
    })
}

fn medical_spec() -> QuasiSpec {
    QuasiSpec::new(
        vec![
            NumericLadder::new("age", vec![5.0, 10.0, 25.0, 50.0]).unwrap(),
            NumericLadder::new("zone", vec![2.0, 4.0]).unwrap(),
        ],
        "heart_rate",
    )
    .unwrap()
}

proptest! {
    #[test]
    fn every_released_group_has_at_least_k(
        readings in arb_patients(), k in 1usize..12
    ) {
        let out = kanonymize(&readings, k, &medical_spec(), 0.0).unwrap();
        prop_assert!(out.groups.iter().all(|g| g.count >= k));
        if let Some(m) = out.min_group_size() {
            prop_assert!(out.risk() <= 1.0 / k as f64 + f64::EPSILON);
            prop_assert!(m >= k);
        }
    }

    #[test]
    fn readings_are_conserved(
        readings in arb_patients(), k in 1usize..12, tol in 0.0f64..0.5
    ) {
        let out = kanonymize(&readings, k, &medical_spec(), tol).unwrap();
        prop_assert_eq!(out.released() + out.suppressed + out.skipped, readings.len());
        prop_assert_eq!(out.total, readings.len());
    }

    #[test]
    fn generalization_level_is_monotone_in_k(readings in arb_patients()) {
        let mut last_level = 0usize;
        for k in [1usize, 2, 4, 8] {
            let out = kanonymize(&readings, k, &medical_spec(), 0.0).unwrap();
            prop_assert!(
                out.level >= last_level,
                "level dropped from {last_level} to {} at k={k}", out.level
            );
            last_level = out.level;
        }
    }

    #[test]
    fn group_stats_bound_each_other(readings in arb_patients(), k in 1usize..6) {
        let out = kanonymize(&readings, k, &medical_spec(), 0.0).unwrap();
        for g in &out.groups {
            prop_assert!(g.min <= g.mean && g.mean <= g.max);
        }
        prop_assert!((0.0..=1.0).contains(&out.info_loss));
        prop_assert!((0.0..=1.0).contains(&out.suppression_rate()));
    }
}

// ---------------------------------------------------------------------
// Redaction
// ---------------------------------------------------------------------

/// Random DAG: each record derives from a random subset of earlier ones.
fn arb_dag() -> impl Strategy<Value = Vec<ProvenanceRecord>> {
    proptest::collection::vec(proptest::collection::vec(any::<u16>(), 0..4), 1..24).prop_map(
        |parent_picks| {
            let mut records: Vec<ProvenanceRecord> = Vec::new();
            for (i, picks) in parent_picks.into_iter().enumerate() {
                let mut b = ProvenanceBuilder::new(SiteId(1), Timestamp(i as u64))
                    .attrs(&Attributes::new().with("n", i as i64));
                let mut used = HashSet::new();
                for p in picks {
                    if records.is_empty() {
                        break;
                    }
                    let idx = p as usize % records.len();
                    if used.insert(idx) {
                        b = b.derived_from(records[idx].id, ToolDescriptor::new("t", "1"));
                    }
                }
                records.push(b.build(Digest128::of(&(i as u64).to_be_bytes())));
            }
            records
        },
    )
}

/// Transitive reachability over parent edges, restricted to `allowed`.
fn reachable_through(
    records: &[ProvenanceRecord],
    from: TupleSetId,
    to: TupleSetId,
    allowed: &dyn Fn(TupleSetId) -> bool,
) -> bool {
    let by_id: HashMap<TupleSetId, &ProvenanceRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut stack = vec![from];
    let mut seen = HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let Some(r) = by_id.get(&id) else { continue };
        for p in r.parents() {
            if p == to {
                return true;
            }
            // Intermediate hops must be allowed (or we pass through them
            // only if permitted by the caller's notion of traversal).
            if by_id.contains_key(&p) && allowed(p) {
                stack.push(p);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn redaction_preserves_visible_reachability(
        records in arb_dag(), mask in any::<u32>()
    ) {
        let hidden: HashSet<TupleSetId> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 32)) != 0)
            .map(|(_, r)| r.id)
            .collect();
        let view = redact_lineage(&records, |r| !hidden.contains(&r.id));

        // 1. No hidden id anywhere in the view.
        for r in &view.visible {
            prop_assert!(!hidden.contains(&r.id));
        }
        for e in &view.edges {
            prop_assert!(!hidden.contains(&e.from) && !hidden.contains(&e.to));
        }
        prop_assert_eq!(view.redacted_count + view.visible.len(), records.len());

        // 2. Reachability in the contracted edge graph equals full-graph
        //    reachability (traversal allowed through any node).
        let mut contracted: HashMap<TupleSetId, Vec<TupleSetId>> = HashMap::new();
        for e in &view.edges {
            contracted.entry(e.from).or_default().push(e.to);
        }
        let reach_contracted = |from: TupleSetId, to: TupleSetId| -> bool {
            let mut stack = vec![from];
            let mut seen = HashSet::new();
            while let Some(id) = stack.pop() {
                if !seen.insert(id) {
                    continue;
                }
                for &n in contracted.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                    if n == to {
                        return true;
                    }
                    stack.push(n);
                }
            }
            false
        };
        let all = |_: TupleSetId| true;
        for a in &view.visible {
            for b in &view.visible {
                if a.id == b.id {
                    continue;
                }
                prop_assert_eq!(
                    reach_contracted(a.id, b.id),
                    reachable_through(&records, a.id, b.id, &all),
                    "reachability mismatch {} -> {}", a.id, b.id
                );
            }
        }

        // 3. A zero-hop contracted edge corresponds to a real direct edge.
        let direct: HashSet<(TupleSetId, TupleSetId)> = records
            .iter()
            .flat_map(|r| r.parents().map(move |p| (r.id, p)))
            .collect();
        for e in &view.edges {
            if e.via_redacted == 0 {
                prop_assert!(direct.contains(&(e.from, e.to)));
            } else {
                prop_assert!(!direct.contains(&(e.from, e.to)));
            }
        }
    }
}
