//! Version pin registry: which commit versions live readers still hold.
//!
//! Snapshots and subscriptions pin the version they were opened at; the
//! storage maintenance worker reads the *floor* (the oldest pinned
//! version) before every compaction and only drops tombstones from
//! SSTables sealed at or below it. The registry is the one piece of
//! read-side state the background GC consults, so it must be cheap:
//! pin/unpin are one short mutex section over a `BTreeMap`, and the
//! floor is its first key.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Reference-counted set of pinned commit versions.
#[derive(Default)]
pub(crate) struct PinRegistry {
    /// version → number of live readers pinning it.
    pins: Mutex<BTreeMap<u64, usize>>,
}

impl PinRegistry {
    /// Pins `version` until the returned guard drops.
    pub(crate) fn pin(self: &Arc<Self>, version: u64) -> PinGuard {
        *self.pins.lock().entry(version).or_insert(0) += 1;
        PinGuard { registry: Arc::clone(self), version }
    }

    /// The oldest pinned version, or `None` when nothing is pinned
    /// (everything below the current commit version is reclaimable).
    pub(crate) fn floor(&self) -> Option<u64> {
        self.pins.lock().keys().next().copied()
    }
}

/// Keeps one version pinned; dropping it releases the pin.
pub(crate) struct PinGuard {
    registry: Arc<PinRegistry>,
    version: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut pins = self.registry.pins.lock();
        if let Some(count) = pins.get_mut(&self.version) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                pins.remove(&self.version);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_tracks_oldest_live_pin() {
        let reg = Arc::new(PinRegistry::default());
        assert_eq!(reg.floor(), None);
        let old = reg.pin(5);
        let newer = reg.pin(9);
        let also_old = reg.pin(5);
        assert_eq!(reg.floor(), Some(5));
        drop(old);
        assert_eq!(reg.floor(), Some(5), "second reader still pins 5");
        drop(also_old);
        assert_eq!(reg.floor(), Some(9));
        drop(newer);
        assert_eq!(reg.floor(), None);
    }
}
