//! The local Provenance-Aware Storage System.
//!
//! §V's four PASS properties, and where this module enforces them:
//!
//! 1. **Provenance is a first-class object** — records live under their
//!    own storage prefix, are indexed independently of readings, and stay
//!    resident in memory ("provenance metadata is accessed more
//!    frequently than its data", §IV).
//! 2. **Provenance can be queried** — [`Pass::query`] /
//!    [`Pass::query_text`] run the full `pass-query` language over the
//!    attribute, time, keyword, and ancestry indexes.
//! 3. **Nonidentical data items do not have identical provenance** —
//!    [`Pass::ingest`] verifies the record's content digest against the
//!    readings and rejects identity collisions with differing content.
//! 4. **Provenance is not lost if ancestor objects are removed** —
//!    [`Pass::remove_data`] deletes readings only; records, indexes, and
//!    ancestry edges survive, and lineage queries keep answering.
//!
//! Writes couple `{record, data, marker}` in one atomic storage batch, so
//! a crash can never leave a record without its data or vice versa — the
//! consistency the paper demands of a reliable provenance store (§IV) and
//! the property experiment E10 injects faults against.

use crate::archive::{ArchiveExport, ImportStats};
use crate::config::{Backend, ClosureStrategy, PassConfig};
use crate::error::{PassError, Result};
use crate::keyspace;
use parking_lot::{Mutex, RwLock};
use pass_index::{
    AncestryGraph, AttrIndex, BfsClosure, IntervalClosure, KeywordIndex, MemoClosure,
    NaiveJoinClosure, NodeIdx, PostingList, ReachStrategy, TimeIndex, TraverseOpts,
};
use pass_model::codec::{Decode, Encode};
use pass_model::{
    keys, Annotation, Attributes, ModelError, ProvenanceBuilder, ProvenanceRecord, Reading,
    SiteId, TimeRange, Timestamp, ToolDescriptor, TupleSet, TupleSetId, Value,
};
use pass_query::{LineageClause, Provider, Query, QueryResult};
use pass_storage::{KvStore, LsmEngine, MemEngine, WriteBatch};
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// In-memory index state, rebuilt from storage at open.
struct State {
    graph: AncestryGraph,
    attrs: AttrIndex,
    keywords: KeywordIndex,
    records: HashMap<TupleSetId, ProvenanceRecord>,
    data_present: HashSet<TupleSetId>,
}

impl State {
    fn empty() -> Self {
        State {
            graph: AncestryGraph::new(),
            attrs: AttrIndex::new(),
            keywords: KeywordIndex::new(),
            records: HashMap::new(),
            data_present: HashSet::new(),
        }
    }

    /// Indexes a record everywhere except the time index (which lives
    /// behind its own lock).
    fn index_record(&mut self, record: &ProvenanceRecord) -> NodeIdx {
        let parents: Vec<(TupleSetId, bool)> =
            record.ancestry.iter().map(|d| (d.parent, d.tool.abstracted)).collect();
        let idx = self.graph.insert(record.id, &parents);
        self.attrs.insert_attrs(idx, &record.attributes);
        for (name, value) in pass_query::ast::multi_valued_attrs(record) {
            self.attrs.insert(idx, name, value);
        }
        // Pseudo-attributes, indexed so the planner can serve them.
        self.attrs.insert(idx, "origin.site", Value::Int(i64::from(record.origin.0)));
        self.attrs.insert(idx, "created_at", Value::Time(record.created_at));
        self.attrs
            .insert(idx, "ancestry.parents", Value::Int(record.ancestry.len() as i64));
        for ann in &record.annotations {
            self.keywords.insert(idx, &ann.text);
        }
        if let Some(desc) = record.attributes.get_str(keys::DESCRIPTION) {
            self.keywords.insert(idx, desc);
        }
        self.records.insert(record.id, record.clone());
        idx
    }
}

/// Built closure structure, tagged with the graph version it reflects.
enum BuiltClosure {
    None,
    Memo(MemoClosure),
    Interval(IntervalClosure),
}

struct ClosureCache {
    built: BuiltClosure,
    version: u64,
}

/// Cumulative operation counters.
#[derive(Debug, Default)]
struct Metrics {
    ingests: AtomicU64,
    queries: AtomicU64,
    annotations: AtomicU64,
    removals: AtomicU64,
}

/// A snapshot of store statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Provenance records held.
    pub records: usize,
    /// Tuple sets whose readings are still present.
    pub data_blobs: usize,
    /// Ancestry graph nodes (placeholders included).
    pub graph_nodes: usize,
    /// Ancestry graph edges.
    pub graph_edges: usize,
    /// Total `(attr, value, node)` index entries.
    pub attr_entries: u64,
    /// Approximate bytes held by the in-memory indexes.
    pub index_bytes: usize,
    /// Ingests since open.
    pub ingests: u64,
    /// Queries since open.
    pub queries: u64,
}

/// Result of a full storage/index consistency audit (experiment E10).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Records found in storage.
    pub records: usize,
    /// Reading blobs found in storage.
    pub data_blobs: usize,
    /// Records whose stored identity does not match their content
    /// (forged or corrupted records).
    pub identity_failures: Vec<TupleSetId>,
    /// Data blobs whose digest does not match their record.
    pub digest_mismatches: Vec<TupleSetId>,
    /// Data blobs with no owning record — the broken index↔data linkage
    /// §IV-A warns about. Must be empty after any crash.
    pub orphan_data: Vec<TupleSetId>,
    /// Presence markers disagreeing with actual data blobs.
    pub marker_mismatches: Vec<TupleSetId>,
}

impl ConsistencyReport {
    /// True when no violations were found.
    pub fn is_consistent(&self) -> bool {
        self.identity_failures.is_empty()
            && self.digest_mismatches.is_empty()
            && self.orphan_data.is_empty()
            && self.marker_mismatches.is_empty()
    }
}

/// A local provenance-aware store.
pub struct Pass {
    config: PassConfig,
    store: Arc<dyn KvStore>,
    state: RwLock<State>,
    time: Mutex<TimeIndex>,
    closure: Mutex<ClosureCache>,
    version: AtomicU64,
    metrics: Metrics,
}

impl std::fmt::Debug for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pass")
            .field("site", &self.config.site)
            .field("records", &self.state.read().records.len())
            .finish()
    }
}

impl Pass {
    /// Opens a store per `config`, rebuilding in-memory indexes from the
    /// backend's contents.
    pub fn open(config: PassConfig) -> Result<Pass> {
        let store: Arc<dyn KvStore> = match &config.backend {
            Backend::Memory => Arc::new(MemEngine::new()),
            Backend::Disk { dir, options } => {
                Arc::new(LsmEngine::open(dir.clone(), options.clone())?)
            }
        };
        let pass = Pass {
            config,
            store,
            state: RwLock::new(State::empty()),
            time: Mutex::new(TimeIndex::new()),
            closure: Mutex::new(ClosureCache { built: BuiltClosure::None, version: 0 }),
            version: AtomicU64::new(1),
            metrics: Metrics::default(),
        };
        pass.rebuild_indexes()?;
        Ok(pass)
    }

    /// Volatile store for `site`.
    pub fn open_memory(site: SiteId) -> Pass {
        Pass::open(PassConfig::memory(site)).expect("memory backend cannot fail to open")
    }

    /// This store's site identity.
    pub fn site(&self) -> SiteId {
        self.config.site
    }

    fn rebuild_indexes(&self) -> Result<()> {
        let mut state = State::empty();
        let mut time = TimeIndex::new();
        for (key, value) in self.store.scan_prefix(&[keyspace::RECORD])? {
            let Some((_, id)) = keyspace::parse(&key) else {
                continue;
            };
            let record = ProvenanceRecord::decode_all(&value)?;
            debug_assert_eq!(record.id, id, "key/record id agreement");
            let idx = state.index_record(&record);
            if let Some(range) = record.time_range() {
                time.insert(idx, range);
            }
        }
        for (key, _) in self.store.scan_prefix(&[keyspace::MARKER])? {
            if let Some((_, id)) = keyspace::parse(&key) {
                state.data_present.insert(id);
            }
        }
        *self.state.write() = state;
        *self.time.lock() = time;
        self.bump_version();
        Ok(())
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    // -- Ingest --------------------------------------------------------

    /// Ingests a complete tuple set (provenance + readings).
    ///
    /// Verifies identity and content binding; writes record, data, and
    /// marker in one atomic batch. Re-ingesting an identical tuple set is
    /// idempotent; a colliding identity with different content is
    /// rejected.
    pub fn ingest(&self, ts: &TupleSet) -> Result<TupleSetId> {
        let record = &ts.provenance;
        if !record.verify_identity() {
            return Err(PassError::Model(ModelError::Invalid(format!(
                "record {} fails identity verification",
                record.id
            ))));
        }
        let digest = TupleSet::content_digest_of(&ts.readings);
        if digest != record.content_digest {
            return Err(PassError::Model(ModelError::Invalid(format!(
                "content digest mismatch for {}",
                record.id
            ))));
        }
        {
            let state = self.state.read();
            if let Some(existing) = state.records.get(&record.id) {
                // PASS property 3: identical id ⇒ identical provenance.
                // Identity binds the content digest, so matching ids with
                // matching digests are the same tuple set.
                return if existing.content_digest == record.content_digest {
                    Ok(record.id)
                } else {
                    Err(PassError::IdentityCollision(record.id))
                };
            }
        }

        let mut data_buf = Vec::with_capacity(ts.readings.len() * 24 + 8);
        ts.readings.encode_into(&mut data_buf);
        let mut batch = WriteBatch::new();
        batch.put(keyspace::key(keyspace::RECORD, record.id).to_vec(), record.encode_to_vec());
        batch.put(keyspace::key(keyspace::DATA, record.id).to_vec(), data_buf);
        batch.put(keyspace::key(keyspace::MARKER, record.id).to_vec(), vec![1u8]);
        self.store.apply(batch)?;

        {
            let mut state = self.state.write();
            let idx = state.index_record(record);
            state.data_present.insert(record.id);
            if let Some(range) = record.time_range() {
                self.time.lock().insert(idx, range);
            }
        }
        self.bump_version();
        self.metrics.ingests.fetch_add(1, Ordering::Relaxed);
        Ok(record.id)
    }

    /// Captures a raw tuple set produced at this site.
    pub fn capture(
        &self,
        attrs: Attributes,
        readings: Vec<Reading>,
        at: Timestamp,
    ) -> Result<TupleSetId> {
        let record = ProvenanceBuilder::new(self.config.site, at)
            .attrs(&attrs)
            .build(TupleSet::content_digest_of(&readings));
        let ts = TupleSet::new(record, readings)?;
        self.ingest(&ts)
    }

    /// Derives a new tuple set from `parents` using `tool`, ingesting the
    /// result with full ancestry recorded. Parents need not be present
    /// locally (they may live at other sites or have been removed).
    pub fn derive(
        &self,
        parents: &[TupleSetId],
        tool: &ToolDescriptor,
        attrs: Attributes,
        readings: Vec<Reading>,
        at: Timestamp,
    ) -> Result<TupleSetId> {
        let mut builder = ProvenanceBuilder::new(self.config.site, at).attrs(&attrs);
        for &parent in parents {
            builder = builder.derived_from(parent, tool.clone());
        }
        let record = builder.build(TupleSet::content_digest_of(&readings));
        let ts = TupleSet::new(record, readings)?;
        self.ingest(&ts)
    }

    /// Attaches an annotation to an existing record (identity unchanged).
    pub fn annotate(&self, id: TupleSetId, annotation: Annotation) -> Result<()> {
        let mut state = self.state.write();
        let idx = state.graph.lookup(id).ok_or(PassError::NotFound(id))?;
        let record = state.records.get_mut(&id).ok_or(PassError::NotFound(id))?;
        record.annotate(annotation.clone());
        let encoded = record.encode_to_vec();
        self.store.put(&keyspace::key(keyspace::RECORD, id), &encoded)?;
        state.keywords.insert(idx, &annotation.text);
        drop(state);
        self.bump_version();
        self.metrics.annotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // -- Retrieval -----------------------------------------------------

    /// The provenance record for `id`, if present.
    pub fn get_record(&self, id: TupleSetId) -> Option<ProvenanceRecord> {
        self.state.read().records.get(&id).cloned()
    }

    /// The readings for `id`: `Ok(None)` when the data was removed (the
    /// record may well still exist — PASS property 4).
    pub fn get_data(&self, id: TupleSetId) -> Result<Option<Vec<Reading>>> {
        match self.store.get(&keyspace::key(keyspace::DATA, id))? {
            Some(bytes) => Ok(Some(Vec::<Reading>::decode_all(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Record + readings together, when both exist.
    pub fn get_tuple_set(&self, id: TupleSetId) -> Result<Option<TupleSet>> {
        let Some(record) = self.get_record(id) else {
            return Ok(None);
        };
        let Some(readings) = self.get_data(id)? else {
            return Ok(None);
        };
        Ok(Some(TupleSet::new_unchecked(record, readings)))
    }

    /// True when the record exists here.
    pub fn contains(&self, id: TupleSetId) -> bool {
        self.state.read().records.contains_key(&id)
    }

    /// True when the readings are still present.
    pub fn has_data(&self, id: TupleSetId) -> bool {
        self.state.read().data_present.contains(&id)
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.state.read().records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All record ids (unordered).
    pub fn ids(&self) -> Vec<TupleSetId> {
        self.state.read().records.keys().copied().collect()
    }

    // -- Removal (PASS property 4) --------------------------------------

    /// Deletes the *readings* of a tuple set; the provenance record and
    /// every index entry survive. Returns whether data was present.
    pub fn remove_data(&self, id: TupleSetId) -> Result<bool> {
        if !self.contains(id) {
            return Err(PassError::NotFound(id));
        }
        let had = {
            let mut state = self.state.write();
            state.data_present.remove(&id)
        };
        if had {
            let mut batch = WriteBatch::new();
            batch.delete(keyspace::key(keyspace::DATA, id).to_vec());
            batch.delete(keyspace::key(keyspace::MARKER, id).to_vec());
            self.store.apply(batch)?;
            self.metrics.removals.fetch_add(1, Ordering::Relaxed);
        }
        Ok(had)
    }

    // -- Archive exchange (§V: merging local PASS installations) --------

    /// Ingests a bare provenance record — no readings. This is the
    /// federation primitive: metadata replicas from other installations
    /// merge without shipping sensor data.
    ///
    /// Identity is verified. If the record already exists with the same
    /// identity, its annotations (the only post-hoc, identity-free
    /// field) are unioned in; an identity match with a different content
    /// digest is a forgery and is rejected.
    pub fn ingest_record(&self, record: &ProvenanceRecord) -> Result<TupleSetId> {
        self.merge_record(record).map(|_| record.id)
    }

    /// Merge core shared by [`Pass::ingest_record`] and
    /// [`Pass::import_archive`]. Returns `(was_new, annotations_merged)`.
    fn merge_record(&self, record: &ProvenanceRecord) -> Result<(bool, usize)> {
        if !record.verify_identity() {
            return Err(PassError::Model(ModelError::Invalid(format!(
                "record {} fails identity verification",
                record.id
            ))));
        }
        let mut state = self.state.write();
        if let Some(existing) = state.records.get(&record.id) {
            if existing.content_digest != record.content_digest {
                return Err(PassError::IdentityCollision(record.id));
            }
            let fresh: Vec<Annotation> = record
                .annotations
                .iter()
                .filter(|a| !existing.annotations.contains(a))
                .cloned()
                .collect();
            if fresh.is_empty() {
                return Ok((false, 0));
            }
            let idx = state.graph.lookup(record.id).expect("present record is indexed");
            let encoded = {
                let rec = state.records.get_mut(&record.id).expect("checked above");
                rec.annotations.extend(fresh.iter().cloned());
                rec.encode_to_vec()
            };
            self.store.put(&keyspace::key(keyspace::RECORD, record.id), &encoded)?;
            for a in &fresh {
                state.keywords.insert(idx, &a.text);
            }
            drop(state);
            self.bump_version();
            self.metrics.annotations.fetch_add(fresh.len() as u64, Ordering::Relaxed);
            return Ok((false, fresh.len()));
        }
        // New record: persist and index, with no DATA/MARKER keys — the
        // readings live elsewhere (or were removed; PASS property 4).
        self.store.put(&keyspace::key(keyspace::RECORD, record.id), &record.encode_to_vec())?;
        let idx = state.index_record(record);
        if let Some(range) = record.time_range() {
            self.time.lock().insert(idx, range);
        }
        drop(state);
        self.bump_version();
        self.metrics.ingests.fetch_add(1, Ordering::Relaxed);
        Ok((true, 0))
    }

    /// Re-attaches readings to a record whose data is absent here.
    /// Verifies the content digest against the record's identity.
    /// Returns `false` when the data was already present.
    ///
    /// Removal (property 4) is deliberate but not a tombstone: an
    /// archive that still holds the readings re-supplies them.
    pub fn restore_data(&self, ts: &TupleSet) -> Result<bool> {
        let record = &ts.provenance;
        {
            let state = self.state.read();
            let existing =
                state.records.get(&record.id).ok_or(PassError::NotFound(record.id))?;
            if existing.content_digest != record.content_digest {
                return Err(PassError::IdentityCollision(record.id));
            }
            if state.data_present.contains(&record.id) {
                return Ok(false);
            }
        }
        if TupleSet::content_digest_of(&ts.readings) != record.content_digest {
            return Err(PassError::Model(ModelError::Invalid(format!(
                "content digest mismatch for {}",
                record.id
            ))));
        }
        let mut data_buf = Vec::with_capacity(ts.readings.len() * 24 + 8);
        ts.readings.encode_into(&mut data_buf);
        let mut batch = WriteBatch::new();
        batch.put(keyspace::key(keyspace::DATA, record.id).to_vec(), data_buf);
        batch.put(keyspace::key(keyspace::MARKER, record.id).to_vec(), vec![1u8]);
        self.store.apply(batch)?;
        self.state.write().data_present.insert(record.id);
        self.bump_version();
        Ok(true)
    }

    /// Exports everything this store holds, split into full tuple sets
    /// and records whose data is absent. Deterministically ordered by
    /// id, so equal stores export equal archives.
    pub fn export_archive(&self) -> Result<ArchiveExport> {
        let (records, with_data) = {
            let state = self.state.read();
            let records: Vec<ProvenanceRecord> = state.records.values().cloned().collect();
            (records, state.data_present.clone())
        };
        let mut out = ArchiveExport::default();
        for record in records {
            let readings =
                if with_data.contains(&record.id) { self.get_data(record.id)? } else { None };
            match readings {
                Some(readings) => out.tuple_sets.push(TupleSet::new_unchecked(record, readings)),
                None => out.records_only.push(record),
            }
        }
        out.tuple_sets.sort_by_key(|t| t.provenance.id);
        out.records_only.sort_by_key(|r| r.id);
        Ok(out)
    }

    /// Merges another installation's archive into this store (§V:
    /// "merging collections of local PASS installations into single
    /// globally searchable data archives").
    ///
    /// Content-addressed identity makes this a conflict-free, idempotent
    /// set union: re-importing is a no-op, and importing A into B yields
    /// the same record set as importing B into A. Annotations union;
    /// archives that carry readings restore them on records whose data
    /// is absent here.
    pub fn import_archive(&self, archive: &ArchiveExport) -> Result<ImportStats> {
        let mut stats = ImportStats::default();
        for ts in &archive.tuple_sets {
            if !self.contains(ts.provenance.id) {
                self.ingest(ts)?;
                stats.tuple_sets_added += 1;
                continue;
            }
            let (_, anns) = self.merge_record(&ts.provenance)?;
            stats.annotations_merged += anns;
            let restored = if self.has_data(ts.provenance.id) {
                false
            } else {
                self.restore_data(ts)?
            };
            if restored {
                stats.data_restored += 1;
            } else if anns == 0 {
                stats.already_present += 1;
            }
        }
        for record in &archive.records_only {
            let (was_new, anns) = self.merge_record(record)?;
            stats.annotations_merged += anns;
            if was_new {
                stats.records_added += 1;
            } else if anns == 0 {
                stats.already_present += 1;
            }
        }
        Ok(stats)
    }

    // -- Query ---------------------------------------------------------

    /// Executes a parsed query.
    pub fn query(&self, query: &Query) -> Result<QueryResult> {
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        Ok(pass_query::execute(query, self)?)
    }

    /// Parses and executes query text.
    pub fn query_text(&self, text: &str) -> Result<QueryResult> {
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        Ok(pass_query::execute_text(text, self)?)
    }

    /// Lineage closure of `id` as full records, nearest-first order not
    /// guaranteed (sorted by internal index).
    pub fn lineage(
        &self,
        id: TupleSetId,
        direction: pass_index::Direction,
        opts: TraverseOpts,
    ) -> Result<Vec<ProvenanceRecord>> {
        let clause = LineageClause {
            root: id,
            direction,
            max_depth: opts.max_depth,
            stop_at_abstraction: opts.stop_at_abstraction,
            include_root: false,
        };
        let posting = Provider::lineage(self, &clause).ok_or(PassError::NotFound(id))?;
        let state = self.state.read();
        Ok(posting
            .iter()
            .filter_map(|idx| state.graph.resolve(idx))
            .filter_map(|rid| state.records.get(&rid).cloned())
            .collect())
    }

    // -- Maintenance ---------------------------------------------------

    /// Forces buffered writes to stable storage.
    pub fn flush(&self) -> Result<()> {
        Ok(self.store.flush()?)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PassStats {
        let state = self.state.read();
        let time = self.time.lock();
        PassStats {
            records: state.records.len(),
            data_blobs: state.data_present.len(),
            graph_nodes: state.graph.node_count(),
            graph_edges: state.graph.edge_count(),
            attr_entries: state.attrs.len(),
            index_bytes: state.attrs.size_bytes()
                + state.keywords.size_bytes()
                + state.graph.size_bytes()
                + time.size_bytes(),
            ingests: self.metrics.ingests.load(Ordering::Relaxed),
            queries: self.metrics.queries.load(Ordering::Relaxed),
        }
    }

    /// Audits storage against the invariants (see [`ConsistencyReport`]).
    pub fn verify_consistency(&self) -> Result<ConsistencyReport> {
        let mut report = ConsistencyReport::default();
        let mut record_ids = HashSet::new();
        let mut digests: HashMap<TupleSetId, pass_model::Digest128> = HashMap::new();
        for (key, value) in self.store.scan_prefix(&[keyspace::RECORD])? {
            let Some((_, id)) = keyspace::parse(&key) else { continue };
            report.records += 1;
            record_ids.insert(id);
            match ProvenanceRecord::decode_all(&value) {
                Ok(record) => {
                    if !record.verify_identity() || record.id != id {
                        report.identity_failures.push(id);
                    }
                    digests.insert(id, record.content_digest);
                }
                Err(_) => report.identity_failures.push(id),
            }
        }
        let mut data_ids = HashSet::new();
        for (key, value) in self.store.scan_prefix(&[keyspace::DATA])? {
            let Some((_, id)) = keyspace::parse(&key) else { continue };
            report.data_blobs += 1;
            data_ids.insert(id);
            if !record_ids.contains(&id) {
                report.orphan_data.push(id);
                continue;
            }
            match Vec::<Reading>::decode_all(&value) {
                Ok(readings) => {
                    if digests.get(&id) != Some(&TupleSet::content_digest_of(&readings)) {
                        report.digest_mismatches.push(id);
                    }
                }
                Err(_) => report.digest_mismatches.push(id),
            }
        }
        let mut marker_ids = HashSet::new();
        for (key, _) in self.store.scan_prefix(&[keyspace::MARKER])? {
            if let Some((_, id)) = keyspace::parse(&key) {
                marker_ids.insert(id);
            }
        }
        for id in marker_ids.symmetric_difference(&data_ids) {
            report.marker_mismatches.push(*id);
        }
        Ok(report)
    }

    // -- Closure strategy dispatch --------------------------------------

    fn lineage_posting(&self, clause: &LineageClause) -> Option<PostingList> {
        let state = self.state.read();
        let root = state.graph.lookup(clause.root)?;
        let opts = clause.traverse_opts();
        let reach: Vec<NodeIdx> = match self.config.closure {
            ClosureStrategy::Bfs => {
                BfsClosure.reachable(&state.graph, root, clause.direction, &opts)
            }
            ClosureStrategy::NaiveJoin => {
                NaiveJoinClosure.reachable(&state.graph, root, clause.direction, &opts)
            }
            ClosureStrategy::Memo | ClosureStrategy::Interval => {
                let mut cache = self.closure.lock();
                let current = self.version.load(Ordering::Relaxed);
                let needs_rebuild = cache.version != current
                    || !matches!(
                        (&cache.built, self.config.closure),
                        (BuiltClosure::Memo(_), ClosureStrategy::Memo)
                            | (BuiltClosure::Interval(_), ClosureStrategy::Interval)
                    );
                if needs_rebuild {
                    cache.built = match self.config.closure {
                        ClosureStrategy::Memo => match MemoClosure::build(&state.graph, false) {
                            Ok(m) => BuiltClosure::Memo(m),
                            Err(_) => BuiltClosure::None, // cyclic: fall back below
                        },
                        ClosureStrategy::Interval => {
                            match IntervalClosure::build(&state.graph, false) {
                                Ok(i) => BuiltClosure::Interval(i),
                                Err(_) => BuiltClosure::None,
                            }
                        }
                        _ => unreachable!("outer match restricts to Memo/Interval"),
                    };
                    cache.version = current;
                }
                match &cache.built {
                    BuiltClosure::Memo(m) => m.reachable(&state.graph, root, clause.direction, &opts),
                    BuiltClosure::Interval(i) => {
                        i.reachable(&state.graph, root, clause.direction, &opts)
                    }
                    BuiltClosure::None => {
                        BfsClosure.reachable(&state.graph, root, clause.direction, &opts)
                    }
                }
            }
        };
        Some(PostingList::from_iter(reach))
    }
}

impl Provider for Pass {
    fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList {
        self.state.read().attrs.eq(attr, value)
    }

    fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
        self.state.read().attrs.range(attr, low, high)
    }

    fn time_overlap(&self, range: TimeRange) -> PostingList {
        self.time.lock().overlapping(range)
    }

    fn keyword_lookup(&self, phrase: &str) -> PostingList {
        self.state.read().keywords.lookup_all(phrase)
    }

    fn has_attr(&self, attr: &str) -> PostingList {
        self.state.read().attrs.has_attr(attr)
    }

    fn all_nodes(&self) -> PostingList {
        let state = self.state.read();
        PostingList::from_iter(
            state.records.keys().filter_map(|id| state.graph.lookup(*id)),
        )
    }

    fn lineage(&self, clause: &LineageClause) -> Option<PostingList> {
        self.lineage_posting(clause)
    }

    fn node_of(&self, id: TupleSetId) -> Option<NodeIdx> {
        self.state.read().graph.lookup(id)
    }

    fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord> {
        let state = self.state.read();
        let id = state.graph.resolve(idx)?;
        state.records.get(&id).cloned()
    }
}
