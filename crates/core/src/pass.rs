//! The local Provenance-Aware Storage System.
//!
//! §V's four PASS properties, and where this module enforces them:
//!
//! 1. **Provenance is a first-class object** — records live under their
//!    own storage prefix, are indexed independently of readings, and stay
//!    resident in memory ("provenance metadata is accessed more
//!    frequently than its data", §IV).
//! 2. **Provenance can be queried** — [`Pass::query`] /
//!    [`Pass::query_text`] run the full `pass-query` language over the
//!    attribute, time, keyword, and ancestry indexes.
//! 3. **Nonidentical data items do not have identical provenance** —
//!    [`Pass::ingest`] verifies the record's content digest against the
//!    readings and rejects identity collisions with differing content.
//! 4. **Provenance is not lost if ancestor objects are removed** —
//!    [`Pass::remove_data`] deletes readings only; records, indexes, and
//!    ancestry edges survive, and lineage queries keep answering.
//!
//! # Group commit and the atomicity contract
//!
//! Writes couple `{record, data, marker}` in one atomic storage batch, so
//! a crash can never leave a record without its data or vice versa — the
//! consistency the paper demands of a reliable provenance store (§IV) and
//! the property experiment E10 injects faults against.
//!
//! [`Pass::ingest_batch`] extends that coupling to a whole stream of
//! tuple sets: N sets are validated up front, written as **one**
//! [`WriteBatch`] (a single `KvStore::apply`, hence a single WAL append
//! and atomicity domain), and indexed in one bulk pass. The contract is
//! all-or-nothing at two levels:
//!
//! * *validation*: if any set in the batch fails identity/digest
//!   verification or collides with an existing identity, the whole batch
//!   is rejected and **no** storage or index state changes;
//! * *durability*: after a crash, either every set of the batch is
//!   visible or none is (WAL replay applies batches atomically).
//!
//! # Snapshot-isolated reads
//!
//! All in-memory index state lives in one immutable `State` behind an
//! `Arc`. Readers call [`Pass::snapshot`] — an O(1) `Arc` clone — and
//! query the snapshot lock-free with repeatable-read semantics; writers
//! never block them. Writers serialize on a commit mutex and publish a
//! new state via copy-on-write (`Arc::make_mut`): the full clone is paid
//! only on the first write after an outstanding snapshot was taken,
//! which batching amortizes. [`Pass::query`] itself runs against a fresh
//! snapshot, so a single query never observes a half-applied batch.
//!
//! # Sharded multi-writer commits
//!
//! With `shards = N` ([`PassConfig::with_shards`]) the keyspace is
//! hash-partitioned over `TupleSetId` and each shard owns its own commit
//! lock and storage engine (own WAL and memtable on disk) — see
//! [`crate::shard`]. A batch takes only the locks of the shards it
//! touches, so writers on disjoint shards run their validation, WAL
//! appends, and fsyncs fully in parallel; cross-shard batches stay
//! atomic through a roll-forward intent log. What stays global is
//! *visibility*: every commit publishes one new state under the global
//! version counter inside a short, serialized publish+broadcast
//! section, so snapshot isolation, the version-keyed closure cache, and
//! the subscription handoff are exactly as strong as in the single-lock
//! store. `shards = 1` (the default) *is* the single-lock store, same
//! on-disk layout byte for byte.

use crate::archive::{AgeReport, ArchiveExport, ImportStats};
use crate::config::{Backend, ClosureStrategy, PassConfig};
use crate::error::{PassError, Result};
use crate::keyspace;
use crate::pins::{PinGuard, PinRegistry};
use crate::shard::{self, Sharding};
use crate::subscribe::{Hub, Subscription, WatchState, DEFAULT_SUBSCRIPTION_CAPACITY};
use parking_lot::{Mutex, RwLock};
use pass_index::{
    AncestryGraph, AttrIndex, BfsClosure, IntervalClosure, KeywordIndex, MemoClosure,
    NaiveJoinClosure, NodeIdx, PostingList, ReachStrategy, TimeIndex, TraverseOpts,
};
use pass_model::codec::{Decode, Encode};
use pass_model::{
    keys, Annotation, Attributes, ModelError, ProvenanceBuilder, ProvenanceRecord, Reading, SiteId,
    TimeRange, Timestamp, ToolDescriptor, TupleSet, TupleSetId, Value,
};
use pass_query::{Cursor, LineageClause, PreparedQuery, Provider, Query, QueryEngine, QueryResult};
use pass_storage::{
    spawn_engine_worker, spawn_task_worker, KvStore, MaintenanceHandle, MaintenanceOptions,
    WriteBatch,
};
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lazily-built created-order scans, shared by every cursor opened on
/// one published [`State`]. Cloning (the copy-on-write path) and
/// in-place mutation both reset it — see [`Pass::publish`].
#[derive(Default)]
struct CreatedScanCache {
    asc: std::sync::OnceLock<std::sync::Arc<[NodeIdx]>>,
    desc: std::sync::OnceLock<std::sync::Arc<[NodeIdx]>>,
}

impl Clone for CreatedScanCache {
    fn clone(&self) -> Self {
        CreatedScanCache::default()
    }
}

/// In-memory index state: immutable once published, shared by snapshots.
#[derive(Clone)]
struct State {
    graph: AncestryGraph,
    attrs: AttrIndex,
    keywords: KeywordIndex,
    time: TimeIndex,
    records: HashMap<TupleSetId, ProvenanceRecord>,
    data_present: HashSet<TupleSetId>,
    created_scans: CreatedScanCache,
    /// Commit sequence number, assigned under the state write lock so a
    /// snapshot's state and version can never disagree (the shared
    /// closure cache is keyed on it).
    version: u64,
}

impl State {
    /// Dense indexes of every record in creation-time order (ties by
    /// tuple set id, ids ascending even under `desc`) — the `ORDER BY`
    /// pushdown scan behind [`Provider::created_scan`]. Built once per
    /// published state and shared by every cursor (O(n log n) on the
    /// first ordered query after a commit, an `Arc` clone afterwards).
    fn created_scan(&self, desc: bool) -> std::sync::Arc<[NodeIdx]> {
        let cell = if desc { &self.created_scans.desc } else { &self.created_scans.asc };
        cell.get_or_init(|| {
            let keyed = self
                .records
                .iter()
                .filter_map(|(id, r)| self.graph.lookup(*id).map(|idx| (r.created_at, *id, idx)))
                .collect();
            pass_query::created_order_scan(keyed, desc)
        })
        .clone()
    }

    fn empty() -> Self {
        State {
            graph: AncestryGraph::new(),
            attrs: AttrIndex::new(),
            keywords: KeywordIndex::new(),
            time: TimeIndex::new(),
            records: HashMap::new(),
            data_present: HashSet::new(),
            created_scans: CreatedScanCache::default(),
            version: 0,
        }
    }

    /// Indexes one record everywhere (single-record path: annotation
    /// merges and archive imports).
    fn index_record(&mut self, record: &ProvenanceRecord) -> NodeIdx {
        let idx = self.index_records(&[record])[0];
        self.time.build();
        idx
    }

    /// Bulk-indexes a batch of records: graph edges per record, then one
    /// sorted bulk insert per index so maintenance cost is amortized over
    /// the batch (`AttrIndex::insert_bulk`, `KeywordIndex::insert_bulk`,
    /// one `TimeIndex` rebuild). Caller must finish with
    /// `self.time.build()` once all batches of a commit are in.
    fn index_records(&mut self, records: &[&ProvenanceRecord]) -> Vec<NodeIdx> {
        self.apply_delta(IndexDelta::prepare(records))
    }

    /// Applies a pre-extracted [`IndexDelta`]. Only the parts that need
    /// `&mut self` happen here — graph interning (which assigns the
    /// `NodeIdx` every other entry is remapped onto) and the sorted bulk
    /// merges — so shard-parallel writers keep the serialized publish
    /// section as short as possible.
    fn apply_delta(&mut self, delta: IndexDelta) -> Vec<NodeIdx> {
        let mut idxs = Vec::with_capacity(delta.records.len());
        for (slot, record) in delta.records.iter().enumerate() {
            idxs.push(self.graph.insert(record.id, &delta.parents[slot]));
        }
        self.attrs.insert_bulk(
            delta.attrs.into_iter().map(|(slot, name, value)| (idxs[slot], name, value)).collect(),
        );
        self.keywords
            .insert_bulk(delta.docs.iter().map(|(slot, text)| (idxs[*slot], text.as_str())));
        for (slot, range) in delta.ranges {
            self.time.insert(idxs[slot], range);
        }
        for record in delta.records {
            self.records.insert(record.id, record);
        }
        idxs
    }
}

/// Everything a batch contributes to the in-memory indexes, extracted
/// ahead of the publish critical section: record clones, parent edge
/// lists, attribute rows, keyword documents, and time ranges, each keyed
/// by the record's *slot* (position in the batch). Slots are remapped to
/// `NodeIdx` under the state lock — node indices are assigned by graph
/// interning (placeholder reuse makes them non-monotone), so they cannot
/// be precomputed outside it.
struct IndexDelta {
    records: Vec<ProvenanceRecord>,
    parents: Vec<Vec<(TupleSetId, bool)>>,
    attrs: Vec<(usize, String, Value)>,
    docs: Vec<(usize, String)>,
    ranges: Vec<(usize, TimeRange)>,
}

impl IndexDelta {
    fn prepare(records: &[&ProvenanceRecord]) -> IndexDelta {
        let mut delta = IndexDelta {
            records: Vec::with_capacity(records.len()),
            parents: Vec::with_capacity(records.len()),
            attrs: Vec::new(),
            docs: Vec::new(),
            ranges: Vec::new(),
        };
        for (slot, record) in records.iter().enumerate() {
            delta
                .parents
                .push(record.ancestry.iter().map(|d| (d.parent, d.tool.abstracted)).collect());
            for (name, value) in record.attributes.iter() {
                delta.attrs.push((slot, name.to_owned(), value.clone()));
            }
            for (name, value) in pass_query::ast::multi_valued_attrs(record) {
                delta.attrs.push((slot, name.to_owned(), value));
            }
            // Pseudo-attributes, indexed so the planner can serve them.
            delta.attrs.push((
                slot,
                "origin.site".to_owned(),
                Value::Int(i64::from(record.origin.0)),
            ));
            delta.attrs.push((slot, "created_at".to_owned(), Value::Time(record.created_at)));
            delta.attrs.push((
                slot,
                "ancestry.parents".to_owned(),
                Value::Int(record.ancestry.len() as i64),
            ));
            for ann in &record.annotations {
                delta.docs.push((slot, ann.text.clone()));
            }
            if let Some(desc) = record.attributes.get_str(keys::DESCRIPTION) {
                delta.docs.push((slot, desc.to_owned()));
            }
            if let Some(range) = record.time_range() {
                delta.ranges.push((slot, range));
            }
            delta.records.push((*record).clone());
        }
        delta
    }
}

/// Built closure structure, tagged with the graph version it reflects.
enum BuiltClosure {
    None,
    Memo(MemoClosure),
    Interval(IntervalClosure),
}

struct ClosureCache {
    built: BuiltClosure,
    version: u64,
}

/// Cumulative operation counters.
#[derive(Debug, Default)]
struct Metrics {
    ingests: AtomicU64,
    batches: AtomicU64,
    queries: AtomicU64,
    annotations: AtomicU64,
    removals: AtomicU64,
}

/// A snapshot of store statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Provenance records held.
    pub records: usize,
    /// Tuple sets whose readings are still present.
    pub data_blobs: usize,
    /// Ancestry graph nodes (placeholders included).
    pub graph_nodes: usize,
    /// Ancestry graph edges.
    pub graph_edges: usize,
    /// Total `(attr, value, node)` index entries.
    pub attr_entries: u64,
    /// Approximate bytes held by the in-memory indexes.
    pub index_bytes: usize,
    /// Ingests since open (tuple sets, not batches).
    pub ingests: u64,
    /// Group commits since open (an N-set `ingest_batch` counts once).
    pub batches: u64,
    /// Queries since open.
    pub queries: u64,
}

/// Result of a full storage/index consistency audit (experiment E10).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Records found in storage.
    pub records: usize,
    /// Reading blobs found in storage.
    pub data_blobs: usize,
    /// Records whose stored identity does not match their content
    /// (forged or corrupted records).
    pub identity_failures: Vec<TupleSetId>,
    /// Data blobs whose digest does not match their record.
    pub digest_mismatches: Vec<TupleSetId>,
    /// Data blobs with no owning record — the broken index↔data linkage
    /// §IV-A warns about. Must be empty after any crash.
    pub orphan_data: Vec<TupleSetId>,
    /// Presence markers disagreeing with actual data blobs.
    pub marker_mismatches: Vec<TupleSetId>,
}

impl ConsistencyReport {
    /// True when no violations were found.
    pub fn is_consistent(&self) -> bool {
        self.identity_failures.is_empty()
            && self.digest_mismatches.is_empty()
            && self.orphan_data.is_empty()
            && self.marker_mismatches.is_empty()
    }
}

/// A local provenance-aware store.
pub struct Pass {
    config: PassConfig,
    store: Arc<dyn KvStore>,
    /// Published index state. Readers `Arc`-clone it (O(1)); writers
    /// replace it copy-on-write under the commit lock.
    state: RwLock<Arc<State>>,
    /// Per-shard commit locks (one lock — the old global commit mutex —
    /// when `shards = 1`) plus the direct shard handles the commit path
    /// writes through. A commit holds the locks of exactly the shards it
    /// touches, across storage I/O, so the state write lock itself is
    /// only taken for the brief in-memory publish step and writers on
    /// disjoint shards overlap their WAL appends and fsyncs.
    sharding: Sharding,
    /// Serializes the publish+broadcast step across shard-parallel
    /// writers so subscription changelogs leave in version order (the
    /// PR 3 handoff relies on it). Held only around the in-memory
    /// publish and the broadcast — never across storage I/O — so it
    /// costs a short critical section, not commit-wide serialization.
    publish_order: Mutex<()>,
    closure: Arc<Mutex<ClosureCache>>,
    /// Global commit version. Shared (`Arc`) because disk engines hold a
    /// clone as their seal clock: every SSTable flush is stamped with
    /// the version it was sealed at, which is what lets background
    /// compaction compare tables against the snapshot pin floor.
    version: Arc<AtomicU64>,
    /// Commit versions still pinned by live snapshots/subscriptions —
    /// the read-side state the storage GC consults (see [`crate::pins`]).
    pins: Arc<PinRegistry>,
    metrics: Metrics,
    /// Live-subscription registry. Commits broadcast a per-commit
    /// changelog through it — one relaxed atomic load when nobody is
    /// subscribed (see [`crate::subscribe`]).
    hub: Arc<Hub>,
    /// Background maintenance workers (one per disk shard when
    /// [`crate::config::MaintenanceConfig::enabled`]); dropped — and
    /// therefore joined — when the store drops.
    maintenance: Vec<MaintenanceHandle>,
}

impl std::fmt::Debug for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pass")
            .field("site", &self.config.site)
            .field("records", &self.state.read().records.len())
            .finish()
    }
}

impl Pass {
    /// Opens a store per `config`, rebuilding in-memory indexes from the
    /// backend's contents. Disk engines get the global commit version as
    /// their seal clock, and — when maintenance is enabled — one
    /// background compaction worker per shard, wired to the snapshot pin
    /// floor for version GC.
    pub fn open(config: PassConfig) -> Result<Pass> {
        let requested = config.shards.max(1);
        let version = Arc::new(AtomicU64::new(1));
        let pins = Arc::new(PinRegistry::default());
        let (store, sharding, engines) = match &config.backend {
            Backend::Memory => {
                let (store, sharding) = shard::open_memory(requested)?;
                (store, sharding, Vec::new())
            }
            Backend::Disk { dir, options } => {
                let mut options = options.clone();
                options.seal_clock = Some(Arc::clone(&version));
                shard::open_disk(dir, &options, requested)?
            }
        };
        let mut maintenance = Vec::new();
        if config.maintenance.enabled {
            for engine in &engines {
                let registry = Arc::clone(&pins);
                maintenance.push(spawn_engine_worker(
                    Arc::clone(engine),
                    MaintenanceOptions {
                        tick: config.maintenance.tick,
                        pin_floor: Some(Arc::new(move || registry.floor())),
                    },
                ));
            }
        }
        Pass::open_internal(store, sharding, config, version, pins, maintenance)
    }

    /// Opens a store over a caller-supplied storage engine. This is the
    /// embedding/testing hook: counting doubles, fault-injecting wrappers,
    /// or alternative engines all enter here. The engine is treated as a
    /// single commit shard regardless of `config.shards` — sharding is a
    /// layout `Pass::open` builds, not a property an arbitrary engine
    /// has.
    pub fn open_with_store(store: Arc<dyn KvStore>, config: PassConfig) -> Result<Pass> {
        Pass::open_internal(
            store,
            Sharding::single(),
            config,
            Arc::new(AtomicU64::new(1)),
            Arc::new(PinRegistry::default()),
            Vec::new(),
        )
    }

    /// Lock order: constructor — creates the `publish_order` mutex and
    /// shard locks before any commit path can run; takes none of them.
    fn open_internal(
        store: Arc<dyn KvStore>,
        sharding: Sharding,
        config: PassConfig,
        version: Arc<AtomicU64>,
        pins: Arc<PinRegistry>,
        maintenance: Vec<MaintenanceHandle>,
    ) -> Result<Pass> {
        let pass = Pass {
            config,
            store,
            state: RwLock::new(Arc::new(State::empty())),
            sharding,
            publish_order: Mutex::new(()),
            closure: Arc::new(Mutex::new(ClosureCache { built: BuiltClosure::None, version: 0 })),
            version,
            pins,
            metrics: Metrics::default(),
            hub: Arc::new(Hub::default()),
            maintenance,
        };
        pass.rebuild_indexes()?;
        Ok(pass)
    }

    /// Volatile store for `site`.
    #[allow(clippy::expect_used)] // volatile open has no I/O failure mode
    pub fn open_memory(site: SiteId) -> Pass {
        Pass::open(PassConfig::memory(site)).expect("memory backend cannot fail to open")
    }

    /// This store's site identity.
    pub fn site(&self) -> SiteId {
        self.config.site
    }

    /// Number of commit shards actually in effect (for an existing
    /// on-disk store, the persisted layout — not necessarily what the
    /// config asked for).
    pub fn shards(&self) -> usize {
        self.sharding.count()
    }

    /// The commit shard that owns `id` — the routing writers use to
    /// build single-shard batches (see [`pass_sensor`-style pipelines]
    /// and the E20 concurrent-writer series).
    ///
    /// [`pass_sensor`-style pipelines]: crate::shard
    pub fn shard_of(&self, id: TupleSetId) -> usize {
        self.sharding.shard_of(id)
    }

    fn rebuild_indexes(&self) -> Result<()> {
        let mut state = State::empty();
        let mut records = Vec::new();
        for (key, value) in self.store.scan_prefix(&[keyspace::RECORD])? {
            let Some((_, id)) = keyspace::parse(&key) else {
                continue;
            };
            let record = ProvenanceRecord::decode_all(&value)?;
            debug_assert_eq!(record.id, id, "key/record id agreement");
            records.push(record);
        }
        // Open-time rebuild is the largest batch of all — one bulk pass.
        state.index_records(&records.iter().collect::<Vec<_>>());
        state.time.build();
        for (key, _) in self.store.scan_prefix(&[keyspace::MARKER])? {
            if let Some((_, id)) = keyspace::parse(&key) {
                state.data_present.insert(id);
            }
        }
        let mut guard = self.state.write();
        state.version = self.next_version();
        *guard = Arc::new(state);
        Ok(())
    }

    /// Allocates the next commit sequence number. Must be called with the
    /// state write lock held so version order matches publication order.
    fn next_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Runs an in-memory state mutation under copy-on-write: clones the
    /// published state only when snapshots still reference it, then
    /// publishes the mutated state. The write lock is held only for the
    /// mutation itself, never across storage I/O. The new version is
    /// assigned inside the lock, atomically with publication — otherwise
    /// a racing snapshot could pair the old state with the new version
    /// and poison the version-keyed closure cache. Returns the mutation
    /// result and the version the commit was published under (writers
    /// broadcast subscription changelogs tagged with it).
    fn publish<R>(&self, mutate: impl FnOnce(&mut State) -> R) -> (R, u64) {
        let mut guard = self.state.write();
        let state = Arc::make_mut(&mut guard);
        let out = mutate(state);
        // `make_mut` mutates in place when no snapshot holds the state,
        // so the derived-scan cache must be reset explicitly (the
        // copy-on-write path resets it via `Clone`).
        state.created_scans = CreatedScanCache::default();
        state.version = self.next_version();
        (out, state.version)
    }

    // -- Snapshot reads ------------------------------------------------

    /// An O(1), repeatable-read view of the store. The snapshot
    /// implements the query [`Provider`] and [`QueryEngine`] traits and
    /// keeps answering consistently while ingest proceeds; it holds the
    /// index state alive until dropped (writers then pay one
    /// copy-on-write clone on their next commit). It also pins its
    /// commit version in the GC registry, so background compaction
    /// keeps every storage version the snapshot can still read.
    pub fn snapshot(&self) -> Snapshot {
        let state = self.state.read().clone();
        let pin = self.pins.pin(state.version);
        Snapshot {
            version: state.version,
            state,
            _pin: pin,
            store: Arc::clone(&self.store),
            closure: Arc::clone(&self.closure),
            strategy: self.config.closure,
            counters: SnapshotCounters {
                ingests: self.metrics.ingests.load(Ordering::Relaxed),
                batches: self.metrics.batches.load(Ordering::Relaxed),
                queries: self.metrics.queries.load(Ordering::Relaxed),
            },
        }
    }

    // -- Ingest --------------------------------------------------------

    /// Ingests a complete tuple set (provenance + readings).
    ///
    /// Verifies identity and content binding; writes record, data, and
    /// marker in one atomic batch. Re-ingesting an identical tuple set is
    /// idempotent; a colliding identity with different content is
    /// rejected.
    pub fn ingest(&self, ts: &TupleSet) -> Result<TupleSetId> {
        self.ingest_batch(std::slice::from_ref(ts)).map(|ids| ids[0])
    }

    /// Group-commits a whole stream of tuple sets as **one** atomic unit:
    /// a single [`WriteBatch`] (one `KvStore::apply`, one WAL append, one
    /// crash-atomicity domain) and one bulk index pass.
    ///
    /// Validation is all-or-nothing: every set's identity and content
    /// digest are checked — and checked against both the store and the
    /// rest of the batch — before any byte is written. On error, no
    /// storage or index state changes. Sets identical to already-present
    /// ones are skipped idempotently (their ids still appear in the
    /// returned vector, in input order).
    ///
    /// Lock order: delegates to the shared batch commit, which takes the
    /// touched shard commit locks (ascending) and then `publish_order`.
    pub fn ingest_batch(&self, sets: &[TupleSet]) -> Result<Vec<TupleSetId>> {
        self.ingest_batch_inner(sets, true)
    }

    /// Shared batch commit. `verify` re-checks identity and content
    /// binding per set; [`Pass::capture_batch`] passes `false` because it
    /// built (and therefore already hashed) the records itself one line
    /// earlier. Collision and duplicate checks always run.
    ///
    /// Lock order: shard commit locks (ascending, via
    /// [`Sharding::lock_many`]) → intent-log mutex (inside
    /// `apply_parts`, storage only) → `publish_order` → the state write
    /// lock inside `publish`. Strictly this sequence; never backwards.
    fn ingest_batch_inner(&self, sets: &[TupleSet], verify: bool) -> Result<Vec<TupleSetId>> {
        if sets.is_empty() {
            return Ok(Vec::new());
        }
        // Take the commit locks of exactly the shards this batch touches,
        // in ascending index order (the deadlock-free total order shared
        // by every multi-shard committer). Writers whose shard sets are
        // disjoint proceed fully in parallel from here on.
        let mut involved: Vec<usize> =
            sets.iter().map(|ts| self.sharding.shard_of(ts.provenance.id)).collect();
        involved.sort_unstable();
        involved.dedup();
        let _commit = self.sharding.lock_many(&involved);
        // Phase 1: validate everything against the published state and
        // the batch itself. Every id in the batch routes to a locked
        // shard, and an id's record can only be created or changed under
        // its shard's lock — so this read is stable for our ids even
        // while other shards keep committing. Validation borrows the
        // state through the read guard rather than cloning the `Arc`: a
        // cloned handle held here would force every concurrent
        // publisher's `Arc::make_mut` to deep-copy the entire state,
        // serializing shard-parallel writers on copy work.
        let current = self.state.read();
        let mut fresh: Vec<&TupleSet> = Vec::with_capacity(sets.len());
        let mut seen: HashMap<TupleSetId, pass_model::Digest128> = HashMap::new();
        let mut ids = Vec::with_capacity(sets.len());
        for ts in sets {
            let record = &ts.provenance;
            if verify {
                if !record.verify_identity() {
                    return Err(PassError::Model(ModelError::Invalid(format!(
                        "record {} fails identity verification",
                        record.id
                    ))));
                }
                let digest = TupleSet::content_digest_of(&ts.readings);
                if digest != record.content_digest {
                    return Err(PassError::Model(ModelError::Invalid(format!(
                        "content digest mismatch for {}",
                        record.id
                    ))));
                }
            }
            ids.push(record.id);
            // PASS property 3: identical id ⇒ identical provenance.
            // Identity binds the content digest, so matching ids with
            // matching digests are the same tuple set.
            if let Some(existing) = current.records.get(&record.id) {
                if existing.content_digest == record.content_digest {
                    continue; // idempotent re-ingest
                }
                return Err(PassError::IdentityCollision(record.id));
            }
            match seen.get(&record.id) {
                Some(d) if *d == record.content_digest => continue, // intra-batch dup
                Some(_) => return Err(PassError::IdentityCollision(record.id)),
                None => {
                    seen.insert(record.id, record.content_digest);
                    fresh.push(ts);
                }
            }
        }
        if fresh.is_empty() {
            return Ok(ids);
        }
        // Release the read guard: `publish` takes the write side of the
        // same lock, and holding the guard across Phase 2 would stall
        // every other shard's publish behind our storage fsync.
        drop(current);

        // Phase 2: one storage sub-batch per participating shard. A
        // single-shard batch is one engine apply — one WAL append, one
        // fsync, exactly the old single-store commit. A cross-shard
        // batch goes through the intent-log protocol, which keeps the
        // multi-WAL write all-or-nothing across crashes (see
        // [`pass_storage::sharded`]).
        let mut parts: Vec<(usize, WriteBatch)> = Vec::new();
        let mut slot_of: HashMap<usize, usize> = HashMap::new();
        for ts in &fresh {
            let record = &ts.provenance;
            let shard = self.sharding.shard_of(record.id);
            let slot = *slot_of.entry(shard).or_insert_with(|| {
                parts.push((shard, WriteBatch::new()));
                parts.len() - 1
            });
            let batch = &mut parts[slot].1;
            let mut data_buf = Vec::with_capacity(ts.readings.len() * 24 + 8);
            ts.readings.encode_into(&mut data_buf);
            batch.put(keyspace::key(keyspace::RECORD, record.id).to_vec(), record.encode_to_vec());
            batch.put(keyspace::key(keyspace::DATA, record.id).to_vec(), data_buf);
            batch.put(keyspace::key(keyspace::MARKER, record.id).to_vec(), vec![1u8]);
        }
        self.sharding.apply_parts(&self.store, parts)?;

        // Phase 3: one bulk index publish under the global version. The
        // delta (record clones, attribute rows, tokenized docs) is
        // extracted *before* the serialized section; only graph
        // interning, the sorted merges, and the broadcast sit inside it.
        let records: Vec<&ProvenanceRecord> = fresh.iter().map(|ts| &ts.provenance).collect();
        let delta = IndexDelta::prepare(&records);
        let new_ids: Vec<TupleSetId> = records.iter().map(|r| r.id).collect();
        let order = self.publish_order.lock();
        let ((), version) = self.publish(|state| {
            state.apply_delta(delta);
            state.time.build();
            for id in &new_ids {
                state.data_present.insert(*id);
            }
        });
        // Broadcast while still holding the publish-order lock so
        // subscribers receive changelogs in version order even under
        // shard-parallel writers. The record clones are paid only when
        // a subscriber exists.
        self.hub.broadcast(version, || fresh.iter().map(|ts| ts.provenance.clone()).collect());
        drop(order);
        self.metrics.ingests.fetch_add(fresh.len() as u64, Ordering::Relaxed);
        self.metrics.batches.fetch_add(1, Ordering::Relaxed);
        Ok(ids)
    }

    /// Captures a raw tuple set produced at this site.
    pub fn capture(
        &self,
        attrs: Attributes,
        readings: Vec<Reading>,
        at: Timestamp,
    ) -> Result<TupleSetId> {
        self.capture_batch([(attrs, readings, at)]).map(|ids| ids[0])
    }

    /// Captures a whole stream of raw tuple sets in one group commit.
    /// Each `(attributes, readings, timestamp)` item becomes a tuple set
    /// with this site's provenance; the batch then follows the
    /// [`Pass::ingest_batch`] atomicity contract.
    ///
    /// Lock order: delegates to the shared batch commit — shard commit
    /// locks (ascending), then `publish_order`.
    pub fn capture_batch(
        &self,
        items: impl IntoIterator<Item = (Attributes, Vec<Reading>, Timestamp)>,
    ) -> Result<Vec<TupleSetId>> {
        let sets: Vec<TupleSet> = items
            .into_iter()
            .map(|(attrs, readings, at)| {
                let record = ProvenanceBuilder::new(self.config.site, at)
                    .attrs(&attrs)
                    .build(TupleSet::content_digest_of(&readings));
                TupleSet::new_unchecked(record, readings)
            })
            .collect();
        // Identity and digest hold by construction (the digest was hashed
        // into the identity one line up); skip the re-verification pass.
        self.ingest_batch_inner(&sets, false)
    }

    /// Derives a new tuple set from `parents` using `tool`, ingesting the
    /// result with full ancestry recorded. Parents need not be present
    /// locally (they may live at other sites or have been removed).
    pub fn derive(
        &self,
        parents: &[TupleSetId],
        tool: &ToolDescriptor,
        attrs: Attributes,
        readings: Vec<Reading>,
        at: Timestamp,
    ) -> Result<TupleSetId> {
        let mut builder = ProvenanceBuilder::new(self.config.site, at).attrs(&attrs);
        for &parent in parents {
            builder = builder.derived_from(parent, tool.clone());
        }
        let record = builder.build(TupleSet::content_digest_of(&readings));
        let ts = TupleSet::new(record, readings)?;
        self.ingest(&ts)
    }

    /// Attaches an annotation to an existing record (identity unchanged).
    ///
    /// Lock order: takes one shard commit lock, then publishes; never
    /// holds more than one shard lock.
    pub fn annotate(&self, id: TupleSetId, annotation: Annotation) -> Result<()> {
        let _commit = self.sharding.lock_one(self.sharding.shard_of(id));
        let current = self.state.read().clone();
        if current.graph.lookup(id).is_none() {
            return Err(PassError::NotFound(id));
        }
        let Some(mut record) = current.records.get(&id).cloned() else {
            return Err(PassError::NotFound(id));
        };
        record.annotate(annotation.clone());
        let encoded = record.encode_to_vec();
        drop(current);
        self.store.put(&keyspace::key(keyspace::RECORD, id), &encoded)?;
        self.publish(|state| {
            // Both lookups were validated above and the shard lock pins
            // them; a miss here means the state diverged, so skip rather
            // than poison every later commit by panicking mid-publish.
            let Some(idx) = state.graph.lookup(id) else { return };
            let Some(record) = state.records.get_mut(&id) else { return };
            record.annotate(annotation.clone());
            state.keywords.insert(idx, &annotation.text);
        });
        self.metrics.annotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // -- Retrieval -----------------------------------------------------

    /// The provenance record for `id`, if present.
    pub fn get_record(&self, id: TupleSetId) -> Option<ProvenanceRecord> {
        self.state.read().records.get(&id).cloned()
    }

    /// The readings for `id`: `Ok(None)` when the data was removed (the
    /// record may well still exist — PASS property 4).
    pub fn get_data(&self, id: TupleSetId) -> Result<Option<Vec<Reading>>> {
        match self.store.get(&keyspace::key(keyspace::DATA, id))? {
            Some(bytes) => Ok(Some(Vec::<Reading>::decode_all(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Record + readings together, when both exist.
    pub fn get_tuple_set(&self, id: TupleSetId) -> Result<Option<TupleSet>> {
        let Some(record) = self.get_record(id) else {
            return Ok(None);
        };
        let Some(readings) = self.get_data(id)? else {
            return Ok(None);
        };
        Ok(Some(TupleSet::new_unchecked(record, readings)))
    }

    /// True when the record exists here.
    pub fn contains(&self, id: TupleSetId) -> bool {
        self.state.read().records.contains_key(&id)
    }

    /// True when the readings are still present.
    pub fn has_data(&self, id: TupleSetId) -> bool {
        self.state.read().data_present.contains(&id)
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.state.read().records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All record ids (unordered).
    pub fn ids(&self) -> Vec<TupleSetId> {
        self.state.read().records.keys().copied().collect()
    }

    // -- Removal (PASS property 4) --------------------------------------

    /// Deletes the *readings* of a tuple set; the provenance record and
    /// every index entry survive. Returns whether data was present.
    ///
    /// Lock order: takes one shard commit lock, then publishes; never
    /// holds more than one shard lock.
    pub fn remove_data(&self, id: TupleSetId) -> Result<bool> {
        let _commit = self.sharding.lock_one(self.sharding.shard_of(id));
        let current = self.state.read();
        if !current.records.contains_key(&id) {
            return Err(PassError::NotFound(id));
        }
        let had = current.data_present.contains(&id);
        drop(current);
        if had {
            let mut batch = WriteBatch::new();
            batch.delete(keyspace::key(keyspace::DATA, id).to_vec());
            batch.delete(keyspace::key(keyspace::MARKER, id).to_vec());
            self.store.apply(batch)?;
            self.publish(|state| {
                state.data_present.remove(&id);
            });
            self.metrics.removals.fetch_add(1, Ordering::Relaxed);
        }
        Ok(had)
    }

    // -- Archive exchange (§V: merging local PASS installations) --------

    /// Ingests a bare provenance record — no readings. This is the
    /// federation primitive: metadata replicas from other installations
    /// merge without shipping sensor data.
    ///
    /// Identity is verified. If the record already exists with the same
    /// identity, its annotations (the only post-hoc, identity-free
    /// field) are unioned in; an identity match with a different content
    /// digest is a forgery and is rejected.
    pub fn ingest_record(&self, record: &ProvenanceRecord) -> Result<TupleSetId> {
        self.merge_record(record).map(|_| record.id)
    }

    /// Merge core shared by [`Pass::ingest_record`] and
    /// [`Pass::import_archive`]. Returns `(was_new, annotations_merged)`.
    ///
    /// Lock order: one shard commit lock, then `publish_order` (new
    /// records only), then the state write lock inside `publish`.
    fn merge_record(&self, record: &ProvenanceRecord) -> Result<(bool, usize)> {
        if !record.verify_identity() {
            return Err(PassError::Model(ModelError::Invalid(format!(
                "record {} fails identity verification",
                record.id
            ))));
        }
        let _commit = self.sharding.lock_one(self.sharding.shard_of(record.id));
        let current = self.state.read().clone();
        if let Some(existing) = current.records.get(&record.id) {
            if existing.content_digest != record.content_digest {
                return Err(PassError::IdentityCollision(record.id));
            }
            let fresh: Vec<Annotation> = record
                .annotations
                .iter()
                .filter(|a| !existing.annotations.contains(a))
                .cloned()
                .collect();
            if fresh.is_empty() {
                return Ok((false, 0));
            }
            let encoded = {
                let mut rec = existing.clone();
                rec.annotations.extend(fresh.iter().cloned());
                rec.encode_to_vec()
            };
            drop(current);
            self.store.put(&keyspace::key(keyspace::RECORD, record.id), &encoded)?;
            self.publish(|state| {
                // Presence was checked above under the shard lock; a miss
                // here means divergence — skip instead of panicking while
                // holding the publish write lock.
                let Some(idx) = state.graph.lookup(record.id) else { return };
                let Some(rec) = state.records.get_mut(&record.id) else { return };
                rec.annotations.extend(fresh.iter().cloned());
                for a in &fresh {
                    state.keywords.insert(idx, &a.text);
                }
            });
            self.metrics.annotations.fetch_add(fresh.len() as u64, Ordering::Relaxed);
            return Ok((false, fresh.len()));
        }
        // New record: persist and index, with no DATA/MARKER keys — the
        // readings live elsewhere (or were removed; PASS property 4).
        drop(current);
        self.store.put(&keyspace::key(keyspace::RECORD, record.id), &record.encode_to_vec())?;
        let order = self.publish_order.lock();
        let (_, version) = self.publish(|state| {
            state.index_record(record);
        });
        self.hub.broadcast(version, || vec![record.clone()]);
        drop(order);
        self.metrics.ingests.fetch_add(1, Ordering::Relaxed);
        Ok((true, 0))
    }

    /// Re-attaches readings to a record whose data is absent here.
    /// Verifies the content digest against the record's identity.
    /// Returns `false` when the data was already present.
    ///
    /// Removal (property 4) is deliberate but not a tombstone: an
    /// archive that still holds the readings re-supplies them.
    ///
    /// Lock order: takes one shard commit lock, then publishes; never
    /// holds more than one shard lock.
    pub fn restore_data(&self, ts: &TupleSet) -> Result<bool> {
        let record = &ts.provenance;
        let _commit = self.sharding.lock_one(self.sharding.shard_of(record.id));
        {
            let state = self.state.read();
            let existing = state.records.get(&record.id).ok_or(PassError::NotFound(record.id))?;
            if existing.content_digest != record.content_digest {
                return Err(PassError::IdentityCollision(record.id));
            }
            if state.data_present.contains(&record.id) {
                return Ok(false);
            }
        }
        if TupleSet::content_digest_of(&ts.readings) != record.content_digest {
            return Err(PassError::Model(ModelError::Invalid(format!(
                "content digest mismatch for {}",
                record.id
            ))));
        }
        let mut data_buf = Vec::with_capacity(ts.readings.len() * 24 + 8);
        ts.readings.encode_into(&mut data_buf);
        let mut batch = WriteBatch::new();
        batch.put(keyspace::key(keyspace::DATA, record.id).to_vec(), data_buf);
        batch.put(keyspace::key(keyspace::MARKER, record.id).to_vec(), vec![1u8]);
        self.store.apply(batch)?;
        self.publish(|state| {
            state.data_present.insert(record.id);
        });
        Ok(true)
    }

    /// Exports everything this store holds, split into full tuple sets
    /// and records whose data is absent. Deterministically ordered by
    /// id, so equal stores export equal archives.
    pub fn export_archive(&self) -> Result<ArchiveExport> {
        let snapshot = self.snapshot();
        let mut out = ArchiveExport::default();
        for record in snapshot.state.records.values() {
            let readings = if snapshot.state.data_present.contains(&record.id) {
                self.get_data(record.id)?
            } else {
                None
            };
            match readings {
                Some(readings) => {
                    out.tuple_sets.push(TupleSet::new_unchecked(record.clone(), readings))
                }
                None => out.records_only.push(record.clone()),
            }
        }
        out.tuple_sets.sort_by_key(|t| t.provenance.id);
        out.records_only.sort_by_key(|r| r.id);
        Ok(out)
    }

    /// Merges another installation's archive into this store (§V:
    /// "merging collections of local PASS installations into single
    /// globally searchable data archives").
    ///
    /// Content-addressed identity makes this a conflict-free, idempotent
    /// set union: re-importing is a no-op, and importing A into B yields
    /// the same record set as importing B into A. Annotations union;
    /// archives that carry readings restore them on records whose data
    /// is absent here.
    pub fn import_archive(&self, archive: &ArchiveExport) -> Result<ImportStats> {
        let mut stats = ImportStats::default();
        // Group commit: every tuple set not yet present lands in one
        // atomic batch; the rest follow the per-record merge path.
        let fresh: Vec<TupleSet> = archive
            .tuple_sets
            .iter()
            .filter(|ts| !self.contains(ts.provenance.id))
            .cloned()
            .collect();
        let fresh_ids: HashSet<TupleSetId> = fresh.iter().map(|ts| ts.provenance.id).collect();
        if !fresh.is_empty() {
            self.ingest_batch(&fresh)?;
            stats.tuple_sets_added = fresh.len();
        }
        for ts in &archive.tuple_sets {
            if fresh_ids.contains(&ts.provenance.id) {
                continue;
            }
            let (_, anns) = self.merge_record(&ts.provenance)?;
            stats.annotations_merged += anns;
            let restored =
                if self.has_data(ts.provenance.id) { false } else { self.restore_data(ts)? };
            if restored {
                stats.data_restored += 1;
            } else if anns == 0 {
                stats.already_present += 1;
            }
        }
        for record in &archive.records_only {
            let (was_new, anns) = self.merge_record(record)?;
            stats.annotations_merged += anns;
            if was_new {
                stats.records_added += 1;
            } else if anns == 0 {
                stats.already_present += 1;
            }
        }
        Ok(stats)
    }

    // -- Query ---------------------------------------------------------

    /// Executes a parsed query against a fresh snapshot (repeatable
    /// reads: concurrent ingests cannot change the result set mid-query).
    pub fn query(&self, query: &Query) -> Result<QueryResult> {
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        Ok(pass_query::execute(query, &self.snapshot())?)
    }

    /// Parses and executes query text (snapshot semantics as
    /// [`Pass::query`]).
    pub fn query_text(&self, text: &str) -> Result<QueryResult> {
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        Ok(pass_query::execute_text(text, &self.snapshot())?)
    }

    /// Lineage closure of `id` as full records, nearest-first order not
    /// guaranteed (sorted by internal index). Runs against a fresh
    /// snapshot; see [`Snapshot::lineage`] for the repeatable-read form.
    pub fn lineage(
        &self,
        id: TupleSetId,
        direction: pass_index::Direction,
        opts: TraverseOpts,
    ) -> Result<Vec<ProvenanceRecord>> {
        self.snapshot().lineage(id, direction, opts)
    }

    // -- Subscriptions (continuous queries) ------------------------------

    /// Opens a live subscription on `query`: one API for one-shot and
    /// continuous consumption. The returned [`Subscription`] first
    /// drains a *catch-up* phase — exactly the records `query` would
    /// return from [`Pass::query`] at this moment, in the same order —
    /// then emits [`crate::Event::CaughtUp`] and *tails* live commits,
    /// delivering every subsequent matching record exactly once, in
    /// commit order. There is no gap and no duplicate at the handoff:
    /// catch-up covers commit versions ≤ the pinned snapshot's version,
    /// the tail starts at the next version (see [`crate::subscribe`] for
    /// the protocol).
    ///
    /// A `DESCENDANTS OF` lineage scope subscribes to the growing taint
    /// closure (the `WATCH` query form); `ANCESTORS OF` scopes are
    /// rejected — ancestor closures of a fixed root do not grow with new
    /// commits, so a one-shot query answers them.
    ///
    /// `ORDER BY`, `LIMIT`, and `AFTER` shape the catch-up phase exactly
    /// as they shape `execute()`; the tail is always unbounded and in
    /// commit order.
    ///
    /// The tail fires on record **additions** (each record delivered at
    /// most once, keyed by identity). Annotation merges mutate an
    /// existing record and are not replayed — see the
    /// [`crate::subscribe`] module docs for why and what that means for
    /// `ANNOTATION CONTAINS` filters.
    pub fn subscribe(&self, query: &Query) -> Result<Subscription> {
        self.subscribe_with(query, DEFAULT_SUBSCRIPTION_CAPACITY)
    }

    /// [`Pass::subscribe`] with an explicit changelog-queue bound (in
    /// commits). When the consumer falls more than `capacity` commits
    /// behind, the oldest changelogs are discarded and the consumer
    /// receives [`crate::Event::Lagged`] — ingest never blocks on a
    /// stalled subscriber.
    pub fn subscribe_with(&self, query: &Query, capacity: usize) -> Result<Subscription> {
        if let Some(clause) = &query.lineage {
            if clause.direction != pass_index::Direction::Descendants {
                return Err(PassError::Query(pass_query::QueryError::Provider(
                    "SUBSCRIBE supports DESCENDANTS lineage scopes only: the ancestor \
                     closure of a fixed root does not grow with new commits"
                        .to_owned(),
                )));
            }
        }
        let channel = Subscription::make_channel(capacity);
        // Register BEFORE snapshotting: a commit the snapshot misses is
        // then guaranteed to reach the channel (writers publish through
        // the state lock before broadcasting) — the no-gap half of the
        // handoff. The version filter inside the subscription provides
        // the no-duplicate half.
        Subscription::register(&self.hub, &channel);
        let snapshot = self.snapshot();
        let armed =
            (|| -> Result<(std::collections::VecDeque<ProvenanceRecord>, Option<WatchState>)> {
                let catch_up: std::collections::VecDeque<ProvenanceRecord> =
                    snapshot.open_query(query)?.collect();
                let watch = match &query.lineage {
                    Some(clause) => {
                        // Watch membership is filter-independent: seed from
                        // the raw closure, not the filtered catch-up output.
                        let members = snapshot.lineage(
                            clause.root,
                            clause.direction,
                            clause.traverse_opts(),
                        )?;
                        Some(WatchState::init(clause.root, &members, clause))
                    }
                    None => None,
                };
                Ok((catch_up, watch))
            })();
        let (catch_up, watch) = match armed {
            Ok(parts) => parts,
            Err(e) => {
                self.hub.unregister(&channel);
                return Err(e);
            }
        };
        // The subscription outlives the snapshot it was armed from, so
        // it takes its own pin on the same version: storage GC must not
        // reclaim versions the tail consumer may still read through.
        let pin = self.pins.pin(snapshot.version());
        Ok(Subscription::new(
            Arc::clone(&self.hub),
            channel,
            catch_up,
            snapshot.version(),
            query.filter.clone(),
            watch,
            pin,
        ))
    }

    /// Parses and opens a subscription statement: `SUBSCRIBE <query>` or
    /// `WATCH DESCENDANTS OF ts:HEX …` (see the `pass-query` grammar).
    pub fn subscribe_text(&self, text: &str) -> Result<Subscription> {
        let statement = pass_query::parse_subscribe(text).map_err(PassError::Query)?;
        self.subscribe(&statement.query)
    }

    /// Number of live subscriptions (dropped subscribers are swept
    /// lazily, so this may briefly over-count).
    pub fn subscriber_count(&self) -> usize {
        self.hub.subscriber_count()
    }

    // -- Maintenance ---------------------------------------------------

    /// Forces buffered writes to stable storage.
    pub fn flush(&self) -> Result<()> {
        Ok(self.store.flush()?)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PassStats {
        let state = self.state.read().clone();
        PassStats {
            records: state.records.len(),
            data_blobs: state.data_present.len(),
            graph_nodes: state.graph.node_count(),
            graph_edges: state.graph.edge_count(),
            attr_entries: state.attrs.len(),
            index_bytes: state.attrs.size_bytes()
                + state.keywords.size_bytes()
                + state.graph.size_bytes()
                + state.time.size_bytes(),
            ingests: self.metrics.ingests.load(Ordering::Relaxed),
            batches: self.metrics.batches.load(Ordering::Relaxed),
            queries: self.metrics.queries.load(Ordering::Relaxed),
        }
    }

    /// The oldest commit version still pinned by a live snapshot or
    /// subscription, or `None` when nothing is pinned. This is the GC
    /// floor the background maintenance workers consult: tombstones in
    /// SSTables sealed after it are retained by compaction.
    pub fn pin_floor(&self) -> Option<u64> {
        self.pins.floor()
    }

    /// Nudges every background maintenance worker outside its tick
    /// (tests, or a caller that just deleted a lot of data).
    pub fn wake_maintenance(&self) {
        for worker in &self.maintenance {
            worker.wake();
        }
    }

    /// Total background maintenance errors across all shard workers.
    /// Maintenance failure never fails a commit; poll this to surface
    /// trouble.
    pub fn maintenance_errors(&self) -> u64 {
        self.maintenance.iter().map(|w| w.errors()).sum()
    }

    /// Ages cold readings out of local storage: every record created
    /// before `older_than` whose data is still present has its readings
    /// exported and then removed (PASS property 4 — the provenance
    /// record stays and keeps answering queries). The returned
    /// [`AgeReport`] carries the export; feeding it to another
    /// installation's [`Pass::import_archive`] makes aging a *move* into
    /// a long-term archive rather than a loss, and re-importing it here
    /// restores the readings.
    pub fn age_data(&self, older_than: Timestamp) -> Result<AgeReport> {
        let victims: Vec<(TupleSetId, Vec<Reading>)> = {
            let snapshot = self.snapshot();
            let mut cold = Vec::new();
            for record in snapshot.state.records.values() {
                if record.created_at < older_than
                    && snapshot.state.data_present.contains(&record.id)
                {
                    if let Some(readings) = snapshot.get_data(record.id)? {
                        cold.push((record.id, readings));
                    }
                }
            }
            cold
            // Snapshot (and its GC pin) drops here, before the removals
            // below start generating garbage versions.
        };
        let mut export = ArchiveExport::default();
        let mut aged = 0;
        for (id, readings) in victims {
            // Re-check under the commit path: a concurrent remove_data
            // already did the work, and records can never un-exist.
            if self.remove_data(id)? {
                let Some(record) = self.get_record(id) else { continue };
                export.tuple_sets.push(TupleSet::new_unchecked(record, readings));
                aged += 1;
            }
        }
        export.tuple_sets.sort_by_key(|t| t.provenance.id);
        Ok(AgeReport { aged, export })
    }

    /// Spawns a background worker that periodically ages cold readings
    /// (see [`Pass::age_data`]): every `tick` it computes `cutoff()` and
    /// hands the resulting non-empty exports to `sink` — typically an
    /// uplink that ships them to an archive installation. The worker
    /// holds only a weak reference, so it never keeps the store alive;
    /// it idles once the `Pass` drops and stops when the returned handle
    /// drops.
    pub fn spawn_aging(
        self: &Arc<Self>,
        tick: std::time::Duration,
        cutoff: impl Fn() -> Timestamp + Send + 'static,
        mut sink: impl FnMut(ArchiveExport) + Send + 'static,
    ) -> MaintenanceHandle {
        let weak = Arc::downgrade(self);
        spawn_task_worker("pass-aging", tick, move || {
            let Some(pass) = weak.upgrade() else { return };
            // A failed sweep (e.g. storage error mid-removal) is retried
            // on the next tick; aging is idempotent over what remains.
            if let Ok(report) = pass.age_data(cutoff()) {
                if !report.export.is_empty() {
                    sink(report.export);
                }
            }
        })
    }

    /// Audits storage against the invariants (see [`ConsistencyReport`]).
    pub fn verify_consistency(&self) -> Result<ConsistencyReport> {
        let mut report = ConsistencyReport::default();
        let mut record_ids = HashSet::new();
        let mut digests: HashMap<TupleSetId, pass_model::Digest128> = HashMap::new();
        for (key, value) in self.store.scan_prefix(&[keyspace::RECORD])? {
            let Some((_, id)) = keyspace::parse(&key) else { continue };
            report.records += 1;
            record_ids.insert(id);
            match ProvenanceRecord::decode_all(&value) {
                Ok(record) => {
                    if !record.verify_identity() || record.id != id {
                        report.identity_failures.push(id);
                    }
                    digests.insert(id, record.content_digest);
                }
                Err(_) => report.identity_failures.push(id),
            }
        }
        let mut data_ids = HashSet::new();
        for (key, value) in self.store.scan_prefix(&[keyspace::DATA])? {
            let Some((_, id)) = keyspace::parse(&key) else { continue };
            report.data_blobs += 1;
            data_ids.insert(id);
            if !record_ids.contains(&id) {
                report.orphan_data.push(id);
                continue;
            }
            match Vec::<Reading>::decode_all(&value) {
                Ok(readings) => {
                    if digests.get(&id) != Some(&TupleSet::content_digest_of(&readings)) {
                        report.digest_mismatches.push(id);
                    }
                }
                Err(_) => report.digest_mismatches.push(id),
            }
        }
        let mut marker_ids = HashSet::new();
        for (key, _) in self.store.scan_prefix(&[keyspace::MARKER])? {
            if let Some((_, id)) = keyspace::parse(&key) {
                marker_ids.insert(id);
            }
        }
        for id in marker_ids.symmetric_difference(&data_ids) {
            report.marker_mismatches.push(*id);
        }
        Ok(report)
    }
}

/// Operation counters captured at snapshot creation (see
/// [`Snapshot::stats`]).
#[derive(Debug, Clone, Copy)]
struct SnapshotCounters {
    ingests: u64,
    batches: u64,
    queries: u64,
}

/// An immutable view of a [`Pass`] at one version.
///
/// Obtained from [`Pass::snapshot`] (an O(1) `Arc` clone plus one pin
/// registration — see below; reads themselves take no locks). Implements
/// the query [`Provider`] and [`QueryEngine`] traits, so the executor —
/// and any caller — gets repeatable reads: every lookup answers from the
/// same index state no matter how much ingest has happened since, and
/// cursors opened on a snapshot stay valid under concurrent ingest.
/// Dropping the snapshot releases the state; the next write then mutates
/// in place again.
///
/// The snapshot carries the full read surface of [`Pass`] — record
/// retrieval, data reads, queries, statistics — so read-only callers
/// never need to fall back to a `&Pass`. One caveat: reading bytes
/// ([`Snapshot::get_data`]) go to shared storage, which is not
/// versioned; [`Snapshot::has_data`] answers from the pinned index
/// state, so after a concurrent [`Pass::remove_data`] the two can
/// briefly disagree.
///
/// While the snapshot lives it also pins its commit version for the
/// storage GC: background compaction will not drop tombstones from
/// SSTables sealed after the oldest pinned version, so the shared
/// storage caveat above never extends to *resurrecting* data the
/// snapshot should not see.
pub struct Snapshot {
    state: Arc<State>,
    store: Arc<dyn KvStore>,
    closure: Arc<Mutex<ClosureCache>>,
    strategy: ClosureStrategy,
    version: u64,
    counters: SnapshotCounters,
    /// Keeps `version` in the GC pin registry until the snapshot drops.
    _pin: PinGuard,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .field("records", &self.state.records.len())
            .finish()
    }
}

impl Snapshot {
    /// The store version this snapshot reflects (monotonically increasing
    /// across commits).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of records visible.
    pub fn len(&self) -> usize {
        self.state.records.len()
    }

    /// True when no records are visible.
    pub fn is_empty(&self) -> bool {
        self.state.records.is_empty()
    }

    /// True when the record is visible in this snapshot.
    pub fn contains(&self, id: TupleSetId) -> bool {
        self.state.records.contains_key(&id)
    }

    /// The provenance record for `id`, if visible.
    pub fn get_record(&self, id: TupleSetId) -> Option<ProvenanceRecord> {
        self.state.records.get(&id).cloned()
    }

    /// The readings for `id`: `Ok(None)` when the data was removed (the
    /// record may well still exist — PASS property 4). Reading bytes
    /// come from shared storage, which is not versioned; the index
    /// state this snapshot pins is.
    pub fn get_data(&self, id: TupleSetId) -> Result<Option<Vec<Reading>>> {
        match self.store.get(&keyspace::key(keyspace::DATA, id))? {
            Some(bytes) => Ok(Some(Vec::<Reading>::decode_all(&bytes)?)),
            None => Ok(None),
        }
    }

    /// True when the readings were present at snapshot time.
    pub fn has_data(&self, id: TupleSetId) -> bool {
        self.state.data_present.contains(&id)
    }

    /// Record + readings together, when both exist — the snapshot twin
    /// of [`Pass::get_tuple_set`]. The record comes from the pinned
    /// index state; the readings come from shared storage, which is
    /// *not* versioned. After a concurrent [`Pass::remove_data`] this
    /// returns `Ok(None)` even though [`Snapshot::has_data`] (pinned)
    /// still answers `true` — the same divergence documented on
    /// [`Snapshot::get_data`].
    pub fn get_tuple_set(&self, id: TupleSetId) -> Result<Option<TupleSet>> {
        let Some(record) = self.get_record(id) else {
            return Ok(None);
        };
        let Some(readings) = self.get_data(id)? else {
            return Ok(None);
        };
        Ok(Some(TupleSet::new_unchecked(record, readings)))
    }

    /// Lineage closure of `id` as full records — the snapshot twin of
    /// [`Pass::lineage`], with repeatable reads: the closure is computed
    /// entirely from the pinned index state, so concurrent ingest can
    /// neither grow nor reorder the answer.
    pub fn lineage(
        &self,
        id: TupleSetId,
        direction: pass_index::Direction,
        opts: TraverseOpts,
    ) -> Result<Vec<ProvenanceRecord>> {
        let clause = LineageClause {
            root: id,
            direction,
            max_depth: opts.max_depth,
            stop_at_abstraction: opts.stop_at_abstraction,
            include_root: false,
        };
        let posting = self.lineage_posting(&clause).ok_or(PassError::NotFound(id))?;
        Ok(posting
            .iter()
            .filter_map(|idx| self.state.graph.resolve(idx))
            .filter_map(|rid| self.state.records.get(&rid).cloned())
            .collect())
    }

    /// All record ids visible in this snapshot (unordered).
    pub fn ids(&self) -> Vec<TupleSetId> {
        self.state.records.keys().copied().collect()
    }

    /// Store statistics as of this snapshot. Index sizes reflect the
    /// pinned state; the operation counters (`ingests`, `batches`,
    /// `queries`) were captured when the snapshot was taken.
    pub fn stats(&self) -> PassStats {
        let state = &self.state;
        PassStats {
            records: state.records.len(),
            data_blobs: state.data_present.len(),
            graph_nodes: state.graph.node_count(),
            graph_edges: state.graph.edge_count(),
            attr_entries: state.attrs.len(),
            index_bytes: state.attrs.size_bytes()
                + state.keywords.size_bytes()
                + state.graph.size_bytes()
                + state.time.size_bytes(),
            ingests: self.counters.ingests,
            batches: self.counters.batches,
            queries: self.counters.queries,
        }
    }

    /// Executes a parsed query against this snapshot.
    pub fn query(&self, query: &Query) -> Result<QueryResult> {
        Ok(pass_query::execute(query, self)?)
    }

    /// Parses and executes query text against this snapshot.
    pub fn query_text(&self, text: &str) -> Result<QueryResult> {
        Ok(pass_query::execute_text(text, self)?)
    }

    fn lineage_posting(&self, clause: &LineageClause) -> Option<PostingList> {
        let root = self.state.graph.lookup(clause.root)?;
        let opts = clause.traverse_opts();
        let graph = &self.state.graph;
        let reach: Vec<NodeIdx> = match self.strategy {
            ClosureStrategy::Bfs => BfsClosure.reachable(graph, root, clause.direction, &opts),
            ClosureStrategy::NaiveJoin => {
                NaiveJoinClosure.reachable(graph, root, clause.direction, &opts)
            }
            ClosureStrategy::Memo | ClosureStrategy::Interval => {
                let mut cache = self.closure.lock();
                let needs_rebuild = cache.version != self.version
                    || !matches!(
                        (&cache.built, self.strategy),
                        (BuiltClosure::Memo(_), ClosureStrategy::Memo)
                            | (BuiltClosure::Interval(_), ClosureStrategy::Interval)
                    );
                if needs_rebuild {
                    cache.built = match self.strategy {
                        ClosureStrategy::Memo => match MemoClosure::build(graph, false) {
                            Ok(m) => BuiltClosure::Memo(m),
                            Err(_) => BuiltClosure::None, // cyclic: fall back below
                        },
                        ClosureStrategy::Interval => match IntervalClosure::build(graph, false) {
                            Ok(i) => BuiltClosure::Interval(i),
                            Err(_) => BuiltClosure::None,
                        },
                        _ => unreachable!("outer match restricts to Memo/Interval"),
                    };
                    cache.version = self.version;
                }
                match &cache.built {
                    BuiltClosure::Memo(m) => m.reachable(graph, root, clause.direction, &opts),
                    BuiltClosure::Interval(i) => i.reachable(graph, root, clause.direction, &opts),
                    BuiltClosure::None => {
                        BfsClosure.reachable(graph, root, clause.direction, &opts)
                    }
                }
            }
        };
        Some(PostingList::from_iter(reach))
    }
}

impl Provider for Snapshot {
    fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList {
        self.state.attrs.eq(attr, value)
    }

    fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
        self.state.attrs.range(attr, low, high)
    }

    fn time_overlap(&self, range: TimeRange) -> PostingList {
        self.state.time.overlapping(range)
    }

    fn keyword_lookup(&self, phrase: &str) -> PostingList {
        self.state.keywords.lookup_all(phrase)
    }

    fn has_attr(&self, attr: &str) -> PostingList {
        self.state.attrs.has_attr(attr)
    }

    fn all_nodes(&self) -> PostingList {
        PostingList::from_iter(
            self.state.records.keys().filter_map(|id| self.state.graph.lookup(*id)),
        )
    }

    fn lineage(&self, clause: &LineageClause) -> Option<PostingList> {
        self.lineage_posting(clause)
    }

    fn node_of(&self, id: TupleSetId) -> Option<NodeIdx> {
        self.state.graph.lookup(id)
    }

    fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord> {
        let id = self.state.graph.resolve(idx)?;
        self.state.records.get(&id).cloned()
    }

    fn created_scan(&self, desc: bool) -> Option<std::sync::Arc<[NodeIdx]>> {
        Some(self.state.created_scan(desc))
    }
}

/// Snapshots open cursors that borrow the snapshot itself — its state is
/// already immutable, so no extra pinning is needed.
impl QueryEngine for Snapshot {
    fn open(&self, prepared: &PreparedQuery) -> pass_query::Result<Cursor<'_>> {
        Cursor::over(self, prepared)
    }
}

/// `Pass` cursors pin their own snapshot at open: the cursor stays
/// valid — and keeps yielding exactly its snapshot's records — while
/// concurrent `ingest_batch` commits proceed.
impl QueryEngine for Pass {
    fn open(&self, prepared: &PreparedQuery) -> pass_query::Result<Cursor<'_>> {
        Cursor::over_owned(Box::new(self.snapshot()), prepared)
    }
}

/// `Pass` remains a [`Provider`] for compatibility: each call answers
/// from the currently-published state. Multi-call consistency is only
/// guaranteed via [`Pass::snapshot`].
impl Provider for Pass {
    fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList {
        self.state.read().attrs.eq(attr, value)
    }

    fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
        self.state.read().attrs.range(attr, low, high)
    }

    fn time_overlap(&self, range: TimeRange) -> PostingList {
        self.state.read().time.overlapping(range)
    }

    fn keyword_lookup(&self, phrase: &str) -> PostingList {
        self.state.read().keywords.lookup_all(phrase)
    }

    fn has_attr(&self, attr: &str) -> PostingList {
        self.state.read().attrs.has_attr(attr)
    }

    fn all_nodes(&self) -> PostingList {
        let state = self.state.read();
        PostingList::from_iter(state.records.keys().filter_map(|id| state.graph.lookup(*id)))
    }

    fn lineage(&self, clause: &LineageClause) -> Option<PostingList> {
        self.snapshot().lineage_posting(clause)
    }

    fn node_of(&self, id: TupleSetId) -> Option<NodeIdx> {
        self.state.read().graph.lookup(id)
    }

    fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord> {
        let state = self.state.read();
        let id = state.graph.resolve(idx)?;
        state.records.get(&id).cloned()
    }

    fn created_scan(&self, desc: bool) -> Option<std::sync::Arc<[NodeIdx]>> {
        Some(self.state.read().created_scan(desc))
    }
}
