//! Storage key layout.
//!
//! One keyspace, three prefixes. Records and data live under different
//! prefixes so that "delete the data, keep the provenance" (PASS property
//! 4) is a plain two-key delete, and so opening a store can rebuild the
//! metadata indexes by scanning only the (small) record prefix.
//!
//! ```text
//! 0x01 ++ id(16, BE)  →  ProvenanceRecord (canonical codec)
//! 0x02 ++ id(16, BE)  →  Vec<Reading>     (canonical codec)
//! 0x03 ++ id(16, BE)  →  0x01             (data-presence marker)
//! ```
//!
//! The marker duplicates "0x02 exists" so presence scans never drag the
//! (potentially large) reading blobs through the scan path.

use pass_model::TupleSetId;

/// Prefix byte for provenance records.
pub const RECORD: u8 = 0x01;
/// Prefix byte for reading blobs.
pub const DATA: u8 = 0x02;
/// Prefix byte for data-presence markers.
pub const MARKER: u8 = 0x03;

/// Builds a keyspace key.
pub fn key(prefix: u8, id: TupleSetId) -> [u8; 17] {
    let mut k = [0u8; 17];
    k[0] = prefix;
    k[1..].copy_from_slice(&id.to_be_bytes());
    k
}

/// Parses a key back into `(prefix, id)`.
pub fn parse(k: &[u8]) -> Option<(u8, TupleSetId)> {
    if k.len() != 17 {
        return None;
    }
    let id = TupleSetId::from_be_bytes(k[1..].try_into().ok()?);
    Some((k[0], id))
}

/// The shard (of `shards`) that owns a tuple set.
///
/// All three prefixes of an id route to the same shard, so the
/// `{record, data, marker}` triple always commits through one shard WAL.
/// The function is part of the persistent layout: changing it strands
/// existing keys on the wrong shard, exactly like changing the key
/// encoding would.
pub fn shard_of(id: TupleSetId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // Ids are already uniform (content-addressed digests), but mix the
    // halves anyway so synthetic/test ids with low-entropy high bits
    // still spread: a splitmix-style multiply-xor finalizer on u128.
    let folded = (id.0 as u64) ^ ((id.0 >> 64) as u64);
    let mixed = folded.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mixed >> 32) as usize % shards
}

/// [`shard_of`] at the key level: routes any keyspace key through its
/// embedded id. Non-keyspace keys (foreign lengths) fall back to a byte
/// hash so the router is total, as the storage layer requires.
pub fn shard_of_key(key: &[u8], shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    match parse(key) {
        Some((_, id)) => shard_of(id, shards),
        None => {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for &b in key {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            (h >> 32) as usize % shards
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let id = TupleSetId(0xdead_beef);
        let k = key(RECORD, id);
        assert_eq!(parse(&k), Some((RECORD, id)));
    }

    #[test]
    fn prefixes_partition_the_keyspace() {
        let id = TupleSetId(5);
        assert!(key(RECORD, id) < key(DATA, id));
        assert!(key(DATA, id) < key(MARKER, id));
    }

    #[test]
    fn ids_sort_within_a_prefix() {
        assert!(key(RECORD, TupleSetId(1)) < key(RECORD, TupleSetId(2)));
        assert!(key(RECORD, TupleSetId(u128::MAX)) < key(DATA, TupleSetId(0)));
    }

    #[test]
    fn parse_rejects_wrong_length() {
        assert_eq!(parse(&[RECORD; 5]), None);
        assert_eq!(parse(&[]), None);
    }

    #[test]
    fn all_prefixes_of_an_id_share_a_shard() {
        for raw in [0u128, 7, u128::MAX, 0xdead_beef_0000_0001] {
            let id = TupleSetId(raw);
            let shard = shard_of(id, 8);
            assert!(shard < 8);
            for prefix in [RECORD, DATA, MARKER] {
                assert_eq!(shard_of_key(&key(prefix, id), 8), shard);
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        assert_eq!(shard_of(TupleSetId(u128::MAX), 1), 0);
        assert_eq!(shard_of_key(b"anything", 1), 0);
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        let shards = 4;
        let mut hits = vec![0usize; shards];
        for i in 0..1000u128 {
            hits[shard_of(TupleSetId(i), shards)] += 1;
        }
        // Far looser than a real balance test — just proves the mixer
        // doesn't collapse low-entropy ids onto one shard.
        assert!(hits.iter().all(|&h| h > 100), "skewed: {hits:?}");
    }
}
