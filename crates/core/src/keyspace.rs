//! Storage key layout.
//!
//! One keyspace, three prefixes. Records and data live under different
//! prefixes so that "delete the data, keep the provenance" (PASS property
//! 4) is a plain two-key delete, and so opening a store can rebuild the
//! metadata indexes by scanning only the (small) record prefix.
//!
//! ```text
//! 0x01 ++ id(16, BE)  →  ProvenanceRecord (canonical codec)
//! 0x02 ++ id(16, BE)  →  Vec<Reading>     (canonical codec)
//! 0x03 ++ id(16, BE)  →  0x01             (data-presence marker)
//! ```
//!
//! The marker duplicates "0x02 exists" so presence scans never drag the
//! (potentially large) reading blobs through the scan path.

use pass_model::TupleSetId;

/// Prefix byte for provenance records.
pub const RECORD: u8 = 0x01;
/// Prefix byte for reading blobs.
pub const DATA: u8 = 0x02;
/// Prefix byte for data-presence markers.
pub const MARKER: u8 = 0x03;

/// Builds a keyspace key.
pub fn key(prefix: u8, id: TupleSetId) -> [u8; 17] {
    let mut k = [0u8; 17];
    k[0] = prefix;
    k[1..].copy_from_slice(&id.to_be_bytes());
    k
}

/// Parses a key back into `(prefix, id)`.
pub fn parse(k: &[u8]) -> Option<(u8, TupleSetId)> {
    if k.len() != 17 {
        return None;
    }
    let id = TupleSetId::from_be_bytes(k[1..].try_into().ok()?);
    Some((k[0], id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let id = TupleSetId(0xdead_beef);
        let k = key(RECORD, id);
        assert_eq!(parse(&k), Some((RECORD, id)));
    }

    #[test]
    fn prefixes_partition_the_keyspace() {
        let id = TupleSetId(5);
        assert!(key(RECORD, id) < key(DATA, id));
        assert!(key(DATA, id) < key(MARKER, id));
    }

    #[test]
    fn ids_sort_within_a_prefix() {
        assert!(key(RECORD, TupleSetId(1)) < key(RECORD, TupleSetId(2)));
        assert!(key(RECORD, TupleSetId(u128::MAX)) < key(DATA, TupleSetId(0)));
    }

    #[test]
    fn parse_rejects_wrong_length() {
        assert_eq!(parse(&[RECORD; 5]), None);
        assert_eq!(parse(&[]), None);
    }
}
