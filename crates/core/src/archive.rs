//! Archive exchange between PASS installations (§V, second goal).
//!
//! "Once this is done, the second goal is to allow merging collections
//! of local PASS installations into single globally searchable data
//! archives."
//!
//! Content-addressed identity makes the merge conflict-free by
//! construction: the same tuple set has the same name everywhere, so
//! imports are idempotent set union, and two archives merged in either
//! order converge to the same store (commutativity is property-tested).
//! The only merge work is on *annotations*, which are post-hoc and
//! excluded from identity — they union.
//!
//! An export distinguishes tuple sets whose readings survive from
//! records whose data was removed (PASS property 4) or that were always
//! metadata-only replicas; both kinds merge, and a later import that
//! *does* carry the readings restores them (removal is deliberate but
//! not a tombstone — an archive that still holds the data re-supplies
//! it).

use pass_model::{ProvenanceRecord, TupleSet};

/// A transferable slice of a PASS: everything needed to merge one
/// installation into another.
#[derive(Debug, Clone, Default)]
pub struct ArchiveExport {
    /// Tuple sets whose readings are present (provenance + data).
    pub tuple_sets: Vec<TupleSet>,
    /// Records whose readings are absent here (removed, or metadata-only
    /// replicas) — provenance still merges (PASS property 4).
    pub records_only: Vec<ProvenanceRecord>,
}

impl ArchiveExport {
    /// Total records carried (with or without data).
    pub fn len(&self) -> usize {
        self.tuple_sets.len() + self.records_only.len()
    }

    /// True when the export carries nothing.
    pub fn is_empty(&self) -> bool {
        self.tuple_sets.is_empty() && self.records_only.is_empty()
    }
}

/// What an [`crate::Pass::import_archive`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// New tuple sets ingested (provenance + data).
    pub tuple_sets_added: usize,
    /// New metadata-only records ingested.
    pub records_added: usize,
    /// Records already present whose missing readings the archive
    /// supplied.
    pub data_restored: usize,
    /// Annotations merged onto already-present records.
    pub annotations_merged: usize,
    /// Entries that were already fully present (no-ops).
    pub already_present: usize,
}

impl ImportStats {
    /// Total entries that changed the store.
    pub fn changed(&self) -> usize {
        self.tuple_sets_added + self.records_added + self.data_restored + self.annotations_merged
    }
}

/// Result of one [`crate::Pass::age_data`] sweep: cold readings exported
/// for archival and removed locally. The provenance records stay behind
/// and keep answering queries (PASS property 4); an archive that holds
/// the export can restore the readings later via
/// [`crate::Pass::import_archive`].
#[derive(Debug, Default)]
pub struct AgeReport {
    /// Tuple sets whose readings were exported and removed locally.
    pub aged: usize,
    /// The exported cold tuple sets (provenance + readings).
    pub export: ArchiveExport,
}
