//! Unified error type for the local PASS.

use std::fmt;

/// Errors raised by [`crate::Pass`] operations.
#[derive(Debug, Clone)]
pub enum PassError {
    /// Model-layer failure (codec, validation).
    Model(pass_model::ModelError),
    /// Storage-engine failure.
    Storage(pass_storage::StorageError),
    /// Index-layer failure (e.g. forged cyclic provenance).
    Index(pass_index::IndexError),
    /// Query parse/execution failure.
    Query(pass_query::QueryError),
    /// The referenced tuple set does not exist in this store.
    NotFound(pass_model::TupleSetId),
    /// Ingesting a tuple set whose identity already exists. Identical
    /// provenance names identical data (PASS property 3), so re-ingesting
    /// the same id with the same content is idempotent — this error fires
    /// only when the content differs, which means a forged record.
    IdentityCollision(pass_model::TupleSetId),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Model(e) => write!(f, "model error: {e}"),
            PassError::Storage(e) => write!(f, "storage error: {e}"),
            PassError::Index(e) => write!(f, "index error: {e}"),
            PassError::Query(e) => write!(f, "query error: {e}"),
            PassError::NotFound(id) => write!(f, "tuple set {id} not found"),
            PassError::IdentityCollision(id) => {
                write!(f, "tuple set {id} already exists with different content")
            }
        }
    }
}

impl std::error::Error for PassError {}

impl From<pass_model::ModelError> for PassError {
    fn from(e: pass_model::ModelError) -> Self {
        PassError::Model(e)
    }
}
impl From<pass_storage::StorageError> for PassError {
    fn from(e: pass_storage::StorageError) -> Self {
        PassError::Storage(e)
    }
}
impl From<pass_index::IndexError> for PassError {
    fn from(e: pass_index::IndexError) -> Self {
        PassError::Index(e)
    }
}
impl From<pass_query::QueryError> for PassError {
    fn from(e: pass_query::QueryError) -> Self {
        PassError::Query(e)
    }
}

/// Result alias for PASS operations.
pub type Result<T> = std::result::Result<T, PassError>;
