//! Commit sharding: per-shard locks, engines, and the disk layout.
//!
//! The keyspace is hash-partitioned over `TupleSetId`
//! ([`crate::keyspace::shard_of`]); every shard owns a commit lock and,
//! when sharding is on, its own storage engine (WAL + memtable +
//! SSTables under `shard-NN/`). Writers serialize only per shard:
//!
//! * a **single-shard** batch takes one shard lock — writers on other
//!   shards commit truly concurrently, each through its own WAL;
//! * a **cross-shard** batch takes every participating shard's lock in
//!   ascending index order (the deadlock-free total order) and commits
//!   through the storage layer's intent-log protocol
//!   ([`pass_storage::ShardedStore`]), which makes the multi-WAL write
//!   all-or-nothing across crashes.
//!
//! Commit *visibility* stays global: every commit — whatever its shard
//! set — publishes one new in-memory state under the global version
//! counter (see `Pass::publish`), so snapshots, the version-keyed
//! closure cache, and subscription tails observe one total commit
//! order, exactly as before sharding.
//!
//! # Disk layout
//!
//! `shards = 1` is byte-identical to the pre-sharding layout: the
//! engine roots at the store directory itself (`wal.log`, `MANIFEST`,
//! `sst-*.sst`), no extra files. `shards = N > 1` writes a `SHARDS`
//! marker file and roots shard `i` at `shard-NN/`; the cross-shard
//! intent log lives at `xcommit.log`. On reopen the on-disk layout
//! wins over the configured count — a store's sharding is decided at
//! creation, like its key encoding.

use crate::error::Result;
use crate::keyspace;
use parking_lot::{Mutex, MutexGuard};
use pass_model::TupleSetId;
use pass_storage::{EngineOptions, KvStore, LsmEngine, ShardedStore, StorageError};
use std::path::Path;
use std::sync::Arc;

/// Marker file naming the shard count of a sharded store directory.
const SHARDS_FILE: &str = "SHARDS";
/// Cross-shard intent log (see [`pass_storage::sharded`]).
const XLOG_FILE: &str = "xcommit.log";

/// Per-shard commit locks plus the direct shard handles the commit path
/// writes through.
pub(crate) struct Sharding {
    locks: Box<[Mutex<()>]>,
    /// `Some` when the backing store really is partitioned; `None` for a
    /// single engine (including every `open_with_store` embedding).
    sharded: Option<Arc<ShardedStore>>,
}

impl Sharding {
    pub(crate) fn single() -> Self {
        Sharding { locks: vec![Mutex::new(())].into_boxed_slice(), sharded: None }
    }

    pub(crate) fn over(sharded: Arc<ShardedStore>) -> Self {
        let locks = (0..sharded.shard_count()).map(|_| Mutex::new(())).collect::<Vec<_>>();
        Sharding { locks: locks.into_boxed_slice(), sharded: Some(sharded) }
    }

    /// Number of commit shards (≥ 1).
    pub(crate) fn count(&self) -> usize {
        self.locks.len()
    }

    /// The shard that owns `id`.
    pub(crate) fn shard_of(&self, id: TupleSetId) -> usize {
        keyspace::shard_of(id, self.count())
    }

    /// Locks one shard's commit lock.
    ///
    /// Lock order: first rung of the commit path — shard commit locks
    /// precede the intent-log mutex and the `publish_order` mutex.
    pub(crate) fn lock_one(&self, shard: usize) -> MutexGuard<'_, ()> {
        // pass-lint: allow(l1, reason="shard comes from shard_of(), which reduces modulo the lock count")
        self.locks[shard].lock()
    }

    /// Locks a set of shards in ascending index order — the global lock
    /// order that makes concurrent cross-shard committers deadlock-free.
    /// `shards` must be sorted and deduplicated.
    ///
    /// Lock order: first rung of the commit path — shard commit locks
    /// (ascending) precede the intent-log mutex and the `publish_order`
    /// mutex. This helper is the only sanctioned way to take more than
    /// one shard lock.
    pub(crate) fn lock_many<'a>(&'a self, shards: &[usize]) -> Vec<MutexGuard<'a, ()>> {
        debug_assert!(shards.windows(2).all(|w| w[0] < w[1]), "lock order must be ascending");
        // pass-lint: allow(l1, reason="shard indexes come from shard_of(), which reduces modulo the lock count")
        shards.iter().map(|&s| self.locks[s].lock()).collect()
    }

    /// Applies pre-partitioned per-shard batches under the caller-held
    /// shard locks: directly on a single engine, per shard otherwise,
    /// through the intent-log protocol when the commit spans shards.
    ///
    /// Lock order: called with every participating shard's commit lock
    /// already held (taken via [`Sharding::lock_many`]); may take only
    /// the intent-log mutex, which nests inside the shard locks.
    pub(crate) fn apply_parts(
        &self,
        store: &Arc<dyn KvStore>,
        mut parts: Vec<(usize, pass_storage::WriteBatch)>,
    ) -> std::result::Result<(), StorageError> {
        match &self.sharded {
            None => {
                debug_assert!(parts.len() <= 1, "single store sees one part");
                match parts.pop() {
                    Some((_, batch)) => store.apply(batch),
                    None => Ok(()),
                }
            }
            Some(sharded) => match (parts.pop(), parts.is_empty()) {
                (None, _) => Ok(()),
                (Some((shard, batch)), true) => sharded.apply_to(shard, batch),
                (Some(last), false) => {
                    parts.push(last);
                    sharded.apply_split(parts)
                }
            },
        }
    }
}

/// What `open_disk` hands back: the routed store, the shard structure,
/// and the typed engine handles (one per shard) so `Pass::open` can
/// attach a maintenance worker to each.
pub(crate) type DiskBackend = (Arc<dyn KvStore>, Sharding, Vec<Arc<LsmEngine>>);

/// Opens the disk backend honoring the sharding layout rules: the
/// persisted layout (a `SHARDS` file, or a pre-sharding single-engine
/// directory) wins over `requested`; only a fresh directory adopts the
/// requested count.
pub(crate) fn open_disk(
    dir: &Path,
    options: &EngineOptions,
    requested: usize,
) -> Result<DiskBackend> {
    let effective = effective_shards(dir, requested)?;
    if effective == 1 {
        let engine = Arc::new(LsmEngine::open(dir.to_path_buf(), options.clone())?);
        return Ok((Arc::clone(&engine) as Arc<dyn KvStore>, Sharding::single(), vec![engine]));
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| StorageError::io(format!("creating store dir {}", dir.display()), e))?;
    let marker = dir.join(SHARDS_FILE);
    if !marker.exists() {
        std::fs::write(&marker, format!("{effective}\n"))
            .map_err(|e| StorageError::io("writing SHARDS marker", e))?;
    }
    let mut typed: Vec<Arc<LsmEngine>> = Vec::with_capacity(effective);
    let mut engines: Vec<Arc<dyn KvStore>> = Vec::with_capacity(effective);
    for i in 0..effective {
        let shard_dir = dir.join(format!("shard-{i:02}"));
        let engine = Arc::new(LsmEngine::open(shard_dir, options.clone())?);
        engines.push(Arc::clone(&engine) as Arc<dyn KvStore>);
        typed.push(engine);
    }
    let router: pass_storage::ShardRouter =
        Box::new(move |key: &[u8]| keyspace::shard_of_key(key, effective));
    let sharded =
        Arc::new(ShardedStore::open(engines, router, Some(dir.join(XLOG_FILE)), options.sync)?);
    Ok((Arc::clone(&sharded) as Arc<dyn KvStore>, Sharding::over(sharded), typed))
}

/// Opens the memory backend with `requested` shards (no layout to
/// honor — volatile stores are born fresh).
pub(crate) fn open_memory(requested: usize) -> Result<(Arc<dyn KvStore>, Sharding)> {
    if requested <= 1 {
        return Ok((Arc::new(pass_storage::MemEngine::new()), Sharding::single()));
    }
    let engines: Vec<Arc<dyn KvStore>> = (0..requested)
        .map(|_| Arc::new(pass_storage::MemEngine::new()) as Arc<dyn KvStore>)
        .collect();
    let router: pass_storage::ShardRouter =
        Box::new(move |key: &[u8]| keyspace::shard_of_key(key, requested));
    let sharded =
        Arc::new(ShardedStore::open(engines, router, None, pass_storage::SyncPolicy::default())?);
    Ok((Arc::clone(&sharded) as Arc<dyn KvStore>, Sharding::over(sharded)))
}

/// Resolves the shard count for a disk directory: `SHARDS` marker, then
/// pre-sharding single-engine layout, then the requested count.
fn effective_shards(dir: &Path, requested: usize) -> Result<usize> {
    let marker = dir.join(SHARDS_FILE);
    if let Ok(text) = std::fs::read_to_string(&marker) {
        let n: usize = text
            .trim()
            .parse()
            .map_err(|_| StorageError::corrupt(&marker, "unparseable shard count"))?;
        if n < 2 {
            return Err(StorageError::corrupt(&marker, "shard count below 2").into());
        }
        return Ok(n);
    }
    // A pre-sharding store has its engine rooted at `dir` directly —
    // recognizable by its manifest log, a legacy `MANIFEST`, or a WAL.
    if dir.join("MANIFEST.log").exists()
        || dir.join("MANIFEST").exists()
        || dir.join("wal.log").exists()
    {
        return Ok(1);
    }
    Ok(requested.max(1))
}
