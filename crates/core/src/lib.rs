//! # pass-core — the local Provenance-Aware Storage System
//!
//! The paper's primary contribution (§V): a storage system in which
//! provenance is a first-class, queryable object whose identity *is* the
//! name of the data, and which survives the removal of the data it
//! describes.
//!
//! ```
//! use pass_core::Pass;
//! use pass_model::{Attributes, Reading, SensorId, SiteId, Timestamp, ToolDescriptor};
//!
//! let pass = Pass::open_memory(SiteId(1));
//!
//! // Capture a whole stream of raw tuple sets in ONE group commit: one
//! // WriteBatch, one WAL append, one crash-atomicity domain, one bulk
//! // index pass. All-or-nothing: if any set fails validation, no state
//! // changes at all.
//! let batch = (0u64..3).map(|i| {
//!     let at = Timestamp(100 + i);
//!     let readings = vec![Reading::new(SensorId(7), at).with("speed", 42.0 + i as f64)];
//!     let attrs = Attributes::new().with("domain", "traffic").with("region", "london");
//!     (attrs, readings, at)
//! });
//! let ids = pass.capture_batch(batch).unwrap();
//! assert_eq!(ids.len(), 3);
//!
//! // Readers get snapshot isolation: this view keeps answering from its
//! // commit point no matter how much ingest happens after it.
//! let snap = pass.snapshot();
//!
//! // Derive from a captured set, query by provenance, walk lineage.
//! let derived = pass
//!     .derive(&[ids[0]], &ToolDescriptor::new("dedupe", "1.0"),
//!             Attributes::new().with("domain", "traffic"), vec![], Timestamp(200))
//!     .unwrap();
//! let hits = pass.query_text(r#"FIND WHERE tool.name = "dedupe""#).unwrap();
//! assert_eq!(hits.ids(), vec![derived]);
//!
//! // The snapshot predates the derivation and still does not see it.
//! assert!(snap.get_record(derived).is_none());
//! assert_eq!(snap.len(), 3);
//! ```
//!
//! See [`Pass`] for the full API and crate-level invariants,
//! [`Pass::ingest_batch`] / [`Pass::capture_batch`] for the group-commit
//! atomicity contract, [`pass::Snapshot`] for repeatable-read semantics,
//! and [`Pass::subscribe`] / [`subscribe`] for live continuous queries
//! (snapshot-then-tail subscriptions with an exactly-once handoff).

// Unit-test modules assert by panicking; the panic lints cover only
// the shipped library code.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod archive;
pub mod config;
pub mod error;
pub mod keyspace;
pub mod pass;
mod pins;
pub mod shard;
pub mod subscribe;

pub use archive::{AgeReport, ArchiveExport, ImportStats};
pub use config::{Backend, ClosureStrategy, MaintenanceConfig, PassConfig};
pub use error::{PassError, Result};
pub use pass::{ConsistencyReport, Pass, PassStats, Snapshot};
pub use subscribe::{Event, Subscription, DEFAULT_SUBSCRIPTION_CAPACITY};
