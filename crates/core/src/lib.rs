//! # pass-core — the local Provenance-Aware Storage System
//!
//! The paper's primary contribution (§V): a storage system in which
//! provenance is a first-class, queryable object whose identity *is* the
//! name of the data, and which survives the removal of the data it
//! describes.
//!
//! ```
//! use pass_core::Pass;
//! use pass_model::{Attributes, Reading, SensorId, SiteId, Timestamp, ToolDescriptor};
//!
//! let pass = Pass::open_memory(SiteId(1));
//!
//! // Capture a raw tuple set.
//! let readings = vec![Reading::new(SensorId(7), Timestamp(10)).with("speed", 42.0)];
//! let attrs = Attributes::new().with("domain", "traffic").with("region", "london");
//! let raw = pass.capture(attrs, readings, Timestamp(100)).unwrap();
//!
//! // Derive from it, query by provenance, walk lineage.
//! let derived = pass
//!     .derive(&[raw], &ToolDescriptor::new("dedupe", "1.0"),
//!             Attributes::new().with("domain", "traffic"), vec![], Timestamp(200))
//!     .unwrap();
//! let hits = pass.query_text(r#"FIND WHERE tool.name = "dedupe""#).unwrap();
//! assert_eq!(hits.ids(), vec![derived]);
//! ```
//!
//! See [`Pass`] for the full API and the crate-level invariants.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod archive;
pub mod config;
pub mod error;
pub mod keyspace;
pub mod pass;

pub use archive::{ArchiveExport, ImportStats};
pub use config::{Backend, ClosureStrategy, PassConfig};
pub use error::{PassError, Result};
pub use pass::{ConsistencyReport, Pass, PassStats};
