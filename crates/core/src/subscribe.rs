//! Live subscriptions: snapshot-then-tail continuous queries.
//!
//! A [`Subscription`] makes one-shot and continuous consumption the same
//! API: it is obtained from the same query machinery (`prepare` →
//! subscribe), first drains a **catch-up** phase — a streaming cursor
//! over the snapshot pinned at subscribe time, so its output is
//! byte-identical to `execute()` — and then **tails** live commits,
//! delivering every subsequent matching record exactly once, in commit
//! order.
//!
//! # The handoff invariant
//!
//! The seam between catch-up and tail is where naive designs drop or
//! duplicate records. Here it is closed with the commit version that
//! lives inside the published state:
//!
//! 1. The subscriber **registers its channel first**, then takes a
//!    snapshot at version *V*. Writers publish a new state (assigning
//!    *V+1* under the state write lock) *before* they broadcast, so any
//!    commit the snapshot missed broadcasts to the already-registered
//!    channel — no gap.
//! 2. The tail **filters changelogs with version ≤ V**: a commit that
//!    both made it into the snapshot and reached the channel (the
//!    overlap window) is delivered once, by catch-up — no duplicate.
//! 3. Writers broadcast while still holding the **publish-order lock**
//!    (the short serialized section where the global commit version is
//!    assigned and the new state published), so changelogs arrive in
//!    version order — commit order is preserved. This holds under
//!    sharded multi-writer ingest too: shard-parallel writers overlap
//!    their storage I/O but funnel publish+broadcast through that one
//!    section, so no interleaving can reorder or skip a version in the
//!    stream a subscriber sees. Versions consumed by non-broadcasting
//!    commits (annotation merges, data removal/restore) appear to
//!    subscribers as benign gaps in the tag sequence, exactly as in the
//!    single-lock store.
//!
//! # Flow control
//!
//! Each subscription owns a bounded queue of per-commit changelogs.
//! When a consumer stalls, ingest **never blocks**: the oldest queued
//! changelog is discarded and the consumer receives [`Event::Lagged`]
//! with the number of committed records it missed. A lagged stream is no
//! longer gap-free — re-subscribe to re-synchronize (the fresh catch-up
//! phase is the re-sync).
//!
//! # What the tail delivers: record *additions*
//!
//! A record is delivered at most once, keyed by its content-addressed
//! identity, when the commit that **adds** it matches the subscription.
//! Annotations are the model's one post-hoc mutable field; an
//! [`annotate`](crate::Pass::annotate) or annotation-union merge mutates
//! an *existing* record's searchable text and is deliberately not
//! replayed into tails — re-delivering would break exactly-once, and
//! suppressing re-delivery would require every subscription to remember
//! every id it ever matched. Consequence: a subscription whose filter is
//! `ANNOTATION CONTAINS …` sees records whose annotations matched *when
//! they were added*; text added later is visible to re-queries but does
//! not fire the tail (tested in `subscribe_tests`).
//!
//! With zero subscribers the whole path costs one relaxed atomic load
//! per commit (measured by the `e22_live_notify` bench).
//!
//! # Lineage-aware subscriptions
//!
//! A `DESCENDANTS OF root` scope (the `WATCH` sugar) is evaluated
//! incrementally in the tail: the watched set is seeded from the
//! snapshot's closure and a freshly committed record joins it — and
//! fires — when it derives from any watched node through an eligible
//! edge (respecting `DEPTH <=` and `ABSTRACTED`). Membership is
//! filter-independent: a descendant that fails the `WHERE` filter still
//! propagates the taint to *its* descendants, exactly as a re-query
//! would. The incremental step assumes parents are committed before
//! children (always true for local capture/derive); archives merged out
//! of creation order may connect a subtree retroactively, which the tail
//! does not revisit — re-subscribe to pick those up.

use pass_model::{ProvenanceRecord, TupleSetId};
use pass_query::{LineageClause, Predicate};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Default bound on a subscription's changelog queue, in commits.
pub const DEFAULT_SUBSCRIPTION_CAPACITY: usize = 64;

/// One delivery from a [`Subscription`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A record matched the subscription (catch-up or live tail).
    Match(ProvenanceRecord),
    /// The catch-up phase is complete: every match so far was visible in
    /// the pinned snapshot (commit versions ≤ the carried version);
    /// everything after this event comes from live commits.
    CaughtUp {
        /// The pinned snapshot's commit version.
        version: u64,
    },
    /// The consumer fell behind: `n` committed records were discarded
    /// unexamined rather than blocking ingest. The stream is no longer
    /// gap-free; re-subscribe to re-synchronize.
    Lagged(u64),
}

impl Event {
    /// The matched record, when this is a [`Event::Match`].
    pub fn into_match(self) -> Option<ProvenanceRecord> {
        match self {
            Event::Match(record) => Some(record),
            _ => None,
        }
    }
}

/// One commit's worth of change, built once per commit (only when
/// subscribers exist) and shared by every subscriber behind an `Arc`.
#[derive(Debug)]
pub(crate) struct Changelog {
    /// The commit version the records were published under.
    pub(crate) version: u64,
    /// The records the commit added, in batch order.
    pub(crate) records: Vec<ProvenanceRecord>,
}

struct ChannelState {
    queue: VecDeque<Arc<Changelog>>,
    /// Records discarded by overflow since the consumer last looked.
    dropped: u64,
}

/// The bounded per-subscription queue the commit path pushes into.
pub(crate) struct Channel {
    state: Mutex<ChannelState>,
    readable: Condvar,
    capacity: usize,
}

impl Channel {
    fn new(capacity: usize) -> Channel {
        Channel {
            state: Mutex::new(ChannelState { queue: VecDeque::new(), dropped: 0 }),
            readable: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a changelog, discarding the oldest entry when full —
    /// ingest never blocks on a stalled consumer.
    fn push(&self, log: Arc<Changelog>) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.queue.len() >= self.capacity {
            if let Some(oldest) = state.queue.pop_front() {
                state.dropped += oldest.records.len() as u64;
            }
        }
        state.queue.push_back(log);
        drop(state);
        self.readable.notify_all();
    }

    /// `(lag to report, next changelog)`. Lag is surfaced *before* any
    /// newer changelog so the consumer learns where the hole sits in
    /// stream order.
    fn try_pull(&self) -> (u64, Option<Arc<Changelog>>) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dropped = std::mem::take(&mut state.dropped);
        if dropped > 0 {
            return (dropped, None);
        }
        (0, state.queue.pop_front())
    }

    /// Blocking [`Channel::try_pull`]: waits until something is
    /// available or `deadline` passes.
    fn pull_until(&self, deadline: Instant) -> (u64, Option<Arc<Changelog>>) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            let dropped = std::mem::take(&mut state.dropped);
            if dropped > 0 {
                return (dropped, None);
            }
            if let Some(log) = state.queue.pop_front() {
                return (0, Some(log));
            }
            let now = Instant::now();
            if now >= deadline {
                return (0, None);
            }
            let (guard, _) = self
                .readable
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }
}

/// The per-store subscriber registry the commit path broadcasts through.
#[derive(Default)]
pub(crate) struct Hub {
    channels: Mutex<Vec<Weak<Channel>>>,
    /// Registered-channel count, kept in step with `channels` so the
    /// zero-subscriber commit path is a single relaxed load. Visibility
    /// to writers is guaranteed by the state lock: a subscriber
    /// registers *before* snapshotting, a writer publishes (through the
    /// same lock) *before* broadcasting, so a commit the snapshot
    /// missed always observes the registration.
    live: AtomicUsize,
}

impl Hub {
    /// Delivers one commit's changelog to every live subscriber.
    /// `records` is only invoked — and the changelog only built — when a
    /// subscriber exists; with none this is one atomic load.
    pub(crate) fn broadcast(&self, version: u64, records: impl FnOnce() -> Vec<ProvenanceRecord>) {
        if self.live.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut channels = self.channels.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if channels.is_empty() {
            self.live.store(0, Ordering::Relaxed);
            return;
        }
        let log = Arc::new(Changelog { version, records: records() });
        channels.retain(|weak| match weak.upgrade() {
            Some(channel) => {
                channel.push(Arc::clone(&log));
                true
            }
            None => false,
        });
        self.live.store(channels.len(), Ordering::Relaxed);
    }

    fn register(&self, channel: &Arc<Channel>) {
        let mut channels = self.channels.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        channels.push(Arc::downgrade(channel));
        self.live.store(channels.len(), Ordering::Relaxed);
    }

    pub(crate) fn unregister(&self, channel: &Arc<Channel>) {
        let target = Arc::downgrade(channel);
        let mut channels = self.channels.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        channels.retain(|weak| !weak.ptr_eq(&target));
        self.live.store(channels.len(), Ordering::Relaxed);
    }

    /// Live subscriber count (for stats and tests).
    pub(crate) fn subscriber_count(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }
}

/// Incremental `DESCENDANTS OF` state for the tail phase.
pub(crate) struct WatchState {
    /// Watched closure members → depth from the root (root = 0).
    depths: HashMap<TupleSetId, u32>,
    max_depth: Option<u32>,
    stop_at_abstraction: bool,
}

impl WatchState {
    /// Seeds the watched set from the snapshot-time closure `members`
    /// (filter-independent — callers pass the raw closure, not the
    /// filtered catch-up output). Depths are recovered from the members'
    /// own ancestry edges, iterating to a fixpoint so archives merged
    /// out of creation order still settle on minimal depths.
    pub(crate) fn init(
        root: TupleSetId,
        members: &[ProvenanceRecord],
        clause: &LineageClause,
    ) -> WatchState {
        let mut watch = WatchState {
            depths: HashMap::from([(root, 0)]),
            max_depth: clause.max_depth,
            stop_at_abstraction: clause.stop_at_abstraction,
        };
        loop {
            let mut changed = false;
            for record in members {
                if let Some(depth) = watch.join_depth(record) {
                    let better = match watch.depths.get(&record.id) {
                        Some(&existing) => depth < existing,
                        None => true,
                    };
                    if better {
                        watch.depths.insert(record.id, depth);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        watch
    }

    /// Depth at which `record` joins the watched closure via its
    /// ancestry, or `None` when no eligible edge reaches a watched
    /// parent within the depth budget.
    fn join_depth(&self, record: &ProvenanceRecord) -> Option<u32> {
        let mut best: Option<u32> = None;
        for derivation in &record.ancestry {
            if self.stop_at_abstraction && derivation.tool.abstracted {
                continue;
            }
            if let Some(&parent_depth) = self.depths.get(&derivation.parent) {
                let depth = parent_depth.saturating_add(1);
                if self.max_depth.is_none_or(|max| depth <= max) {
                    best = Some(best.map_or(depth, |b| b.min(depth)));
                }
            }
        }
        best
    }

    /// Tail admission: true when a freshly committed record joins the
    /// closure (and is therefore a candidate for delivery). Admitted
    /// records extend the watched set so *their* descendants fire too.
    fn admit(&mut self, record: &ProvenanceRecord) -> bool {
        if self.depths.contains_key(&record.id) {
            // Already watched (idempotent re-broadcast): not a new match.
            return false;
        }
        match self.join_depth(record) {
            Some(depth) => {
                self.depths.insert(record.id, depth);
                true
            }
            None => false,
        }
    }
}

/// A live continuous query over a `Pass`: catch-up, then tail.
///
/// Obtained from `Pass::subscribe` / `Pass::subscribe_text` (or the
/// policy layer's guarded variant). Consume with [`Subscription::try_next`]
/// (non-blocking) or [`Subscription::next_timeout`] (bounded blocking);
/// the stream is: zero or more catch-up [`Event::Match`]es (exactly the
/// records `execute()` would have returned at subscribe time, in the
/// same order), one [`Event::CaughtUp`], then live [`Event::Match`]es in
/// commit order — with [`Event::Lagged`] interposed wherever overflow
/// discarded commits.
///
/// Dropping the subscription unregisters it; a dropped subscriber costs
/// writers nothing.
pub struct Subscription {
    hub: Arc<Hub>,
    channel: Arc<Channel>,
    catch_up: VecDeque<ProvenanceRecord>,
    caught_up_sent: bool,
    /// The pinned snapshot's commit version: the tail ignores changelogs
    /// at or below it (they are covered by catch-up).
    from_version: u64,
    filter: Predicate,
    watch: Option<WatchState>,
    /// Matches decoded from absorbed changelogs, not yet delivered.
    pending: VecDeque<ProvenanceRecord>,
    /// Pins `from_version` in the storage-GC registry for the life of
    /// the subscription (see [`crate::pins`]).
    _pin: crate::pins::PinGuard,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("from_version", &self.from_version)
            .field("catch_up_remaining", &self.catch_up.len())
            .finish()
    }
}

impl Subscription {
    pub(crate) fn new(
        hub: Arc<Hub>,
        channel: Arc<Channel>,
        catch_up: VecDeque<ProvenanceRecord>,
        from_version: u64,
        filter: Predicate,
        watch: Option<WatchState>,
        pin: crate::pins::PinGuard,
    ) -> Subscription {
        Subscription {
            hub,
            channel,
            catch_up,
            caught_up_sent: false,
            from_version,
            filter,
            watch,
            pending: VecDeque::new(),
            _pin: pin,
        }
    }

    pub(crate) fn make_channel(capacity: usize) -> Arc<Channel> {
        Arc::new(Channel::new(capacity))
    }

    pub(crate) fn register(hub: &Arc<Hub>, channel: &Arc<Channel>) {
        hub.register(channel);
    }

    /// The commit version the catch-up phase reflects: catch-up covers
    /// versions ≤ this, the tail starts strictly after it.
    pub fn catch_up_version(&self) -> u64 {
        self.from_version
    }

    /// Non-blocking: the next event, if one is ready now.
    pub fn try_next(&mut self) -> Option<Event> {
        if let Some(event) = self.next_buffered() {
            return Some(event);
        }
        loop {
            let (lag, log) = self.channel.try_pull();
            if lag > 0 {
                return Some(Event::Lagged(lag));
            }
            let log = log?;
            self.absorb(&log);
            if let Some(record) = self.pending.pop_front() {
                return Some(Event::Match(record));
            }
        }
    }

    /// Blocking receive with a timeout; `None` means the timeout passed
    /// with nothing to deliver (the subscription stays usable).
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<Event> {
        let deadline = Instant::now() + timeout;
        if let Some(event) = self.next_buffered() {
            return Some(event);
        }
        loop {
            let (lag, log) = self.channel.pull_until(deadline);
            if lag > 0 {
                return Some(Event::Lagged(lag));
            }
            let log = log?; // deadline passed
            self.absorb(&log);
            if let Some(record) = self.pending.pop_front() {
                return Some(Event::Match(record));
            }
        }
    }

    /// Catch-up records, then the one-shot `CaughtUp` marker, then any
    /// already-absorbed tail matches.
    fn next_buffered(&mut self) -> Option<Event> {
        if let Some(record) = self.catch_up.pop_front() {
            return Some(Event::Match(record));
        }
        if !self.caught_up_sent {
            self.caught_up_sent = true;
            return Some(Event::CaughtUp { version: self.from_version });
        }
        self.pending.pop_front().map(Event::Match)
    }

    /// Applies one commit's changelog: skip if the snapshot already
    /// covered it, otherwise admit through the lineage watch (which
    /// grows regardless of the filter) and the filter.
    fn absorb(&mut self, log: &Changelog) {
        if log.version <= self.from_version {
            return;
        }
        for record in &log.records {
            let in_scope = match &mut self.watch {
                Some(watch) => watch.admit(record),
                None => true,
            };
            if in_scope && self.filter.matches(record) {
                self.pending.push_back(record.clone());
            }
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.hub.unregister(&self.channel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp, ToolDescriptor};

    fn record(n: u8, parents: &[(TupleSetId, bool)]) -> ProvenanceRecord {
        let mut builder = ProvenanceBuilder::new(SiteId(1), Timestamp(u64::from(n)));
        for (parent, abstracted) in parents {
            let tool = if *abstracted {
                ToolDescriptor::abstracted("t", "1")
            } else {
                ToolDescriptor::new("t", "1")
            };
            builder = builder.derived_from(*parent, tool);
        }
        builder.build(Digest128::of(&[n]))
    }

    fn clause(max_depth: Option<u32>, stop_at_abstraction: bool) -> LineageClause {
        LineageClause {
            root: TupleSetId(0),
            direction: pass_index::Direction::Descendants,
            max_depth,
            stop_at_abstraction,
            include_root: false,
        }
    }

    #[test]
    fn channel_overflow_counts_dropped_records() {
        let channel = Channel::new(2);
        for v in 1..=4u64 {
            channel.push(Arc::new(Changelog { version: v, records: vec![record(v as u8, &[])] }));
        }
        let (lag, log) = channel.try_pull();
        assert_eq!(lag, 2, "two single-record commits were discarded");
        assert!(log.is_none(), "lag is reported before newer data");
        let (lag, log) = channel.try_pull();
        assert_eq!(lag, 0);
        assert_eq!(log.expect("oldest surviving commit").version, 3);
    }

    #[test]
    fn hub_broadcast_skips_work_with_no_subscribers() {
        let hub = Hub::default();
        let mut built = false;
        hub.broadcast(1, || {
            built = true;
            Vec::new()
        });
        assert!(!built, "changelog must not be built without subscribers");
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn hub_drops_dead_channels() {
        let hub = Hub::default();
        let channel = Arc::new(Channel::new(4));
        hub.register(&channel);
        assert_eq!(hub.subscriber_count(), 1);
        drop(channel);
        hub.broadcast(1, || vec![record(1, &[])]);
        assert_eq!(hub.subscriber_count(), 0, "dead weak refs are swept on broadcast");
    }

    #[test]
    fn watch_depth_and_abstraction_gate_admission() {
        let root = TupleSetId(7);
        let mut watch = WatchState::init(root, &[], &clause(Some(2), true));

        let child = record(1, &[(root, false)]);
        assert!(watch.admit(&child), "direct descendant joins at depth 1");
        let grandchild = record(2, &[(child.id, false)]);
        assert!(watch.admit(&grandchild), "depth 2 is within the budget");
        let great = record(3, &[(grandchild.id, false)]);
        assert!(!watch.admit(&great), "depth 3 exceeds DEPTH <= 2");

        let abstracted = record(4, &[(child.id, true)]);
        assert!(!watch.admit(&abstracted), "ABSTRACTED stops at the boundary edge");
        let unrelated = record(5, &[(TupleSetId(99), false)]);
        assert!(!watch.admit(&unrelated), "no watched parent, no admission");
        assert!(!watch.admit(&child), "re-admission of a watched id is not a new match");
    }

    #[test]
    fn watch_init_recovers_depths_from_unordered_members() {
        let root = TupleSetId(7);
        let a = record(1, &[(root, false)]);
        let b = record(2, &[(a.id, false)]);
        let c = record(3, &[(b.id, false)]);
        // Members listed deepest-first: the fixpoint pass must still
        // settle a=1, b=2, c=3.
        let watch =
            WatchState::init(root, &[c.clone(), b.clone(), a.clone()], &clause(Some(3), false));
        assert_eq!(watch.depths[&a.id], 1);
        assert_eq!(watch.depths[&b.id], 2);
        assert_eq!(watch.depths[&c.id], 3);
    }
}
