//! Configuration for a local PASS instance.

use pass_model::SiteId;
use pass_storage::EngineOptions;
use std::path::PathBuf;

/// Which storage backend holds records and readings.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// Volatile in-memory store (simulations, tests).
    #[default]
    Memory,
    /// Durable log-structured engine rooted at a directory.
    Disk {
        /// Engine directory.
        dir: PathBuf,
        /// Engine tuning.
        options: EngineOptions,
    },
}

/// Which transitive-closure strategy serves lineage queries.
///
/// The E3 ablation in one knob. `Bfs` needs no maintenance;
/// `Memo`/`Interval` build a structure lazily and rebuild it after
/// ingests (amortized across queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosureStrategy {
    /// On-demand breadth-first traversal (the default).
    #[default]
    Bfs,
    /// Relational-style iterative join (baseline; deliberately slow).
    NaiveJoin,
    /// Materialized reachability bitsets.
    Memo,
    /// Tree-cover interval labels.
    Interval,
}

/// Configuration for [`crate::Pass::open`].
#[derive(Debug, Clone)]
pub struct PassConfig {
    /// This store's site identity (stamped on everything it captures;
    /// placement experiments key off it).
    pub site: SiteId,
    /// Storage backend.
    pub backend: Backend,
    /// Lineage strategy.
    pub closure: ClosureStrategy,
    /// Number of commit shards (keyspace partitions, each with its own
    /// commit lock — and, on disk, its own WAL and memtable). `1` (the
    /// default) is exactly the pre-sharding store: same single-WAL
    /// on-disk layout, byte for byte. For an existing on-disk store the
    /// persisted layout wins over this setting on reopen.
    pub shards: usize,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            site: SiteId::default(),
            backend: Backend::default(),
            closure: ClosureStrategy::default(),
            shards: 1,
        }
    }
}

impl PassConfig {
    /// In-memory store for a site.
    pub fn memory(site: SiteId) -> Self {
        PassConfig { site, ..PassConfig::default() }
    }

    /// Durable store for a site with default engine options.
    pub fn disk(site: SiteId, dir: impl Into<PathBuf>) -> Self {
        PassConfig {
            site,
            backend: Backend::Disk { dir: dir.into(), options: EngineOptions::default() },
            ..PassConfig::default()
        }
    }

    /// Overrides the closure strategy.
    pub fn with_closure(mut self, closure: ClosureStrategy) -> Self {
        self.closure = closure;
        self
    }

    /// Overrides the commit shard count (`0` is treated as `1`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}
