//! Configuration for a local PASS instance.

use pass_model::SiteId;
use pass_storage::EngineOptions;
use std::path::PathBuf;
use std::time::Duration;

/// Which storage backend holds records and readings.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// Volatile in-memory store (simulations, tests).
    #[default]
    Memory,
    /// Durable log-structured engine rooted at a directory.
    Disk {
        /// Engine directory.
        dir: PathBuf,
        /// Engine tuning.
        options: EngineOptions,
    },
}

/// Which transitive-closure strategy serves lineage queries.
///
/// The E3 ablation in one knob. `Bfs` needs no maintenance;
/// `Memo`/`Interval` build a structure lazily and rebuild it after
/// ingests (amortized across queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosureStrategy {
    /// On-demand breadth-first traversal (the default).
    #[default]
    Bfs,
    /// Relational-style iterative join (baseline; deliberately slow).
    NaiveJoin,
    /// Materialized reachability bitsets.
    Memo,
    /// Tree-cover interval labels.
    Interval,
}

/// Background maintenance for disk-backed stores: a worker thread per
/// storage shard that runs tiered compaction (and pin-aware version GC)
/// between commits, so sustained ingest does not degrade point reads.
///
/// Off by default: crash-injection tests (and any embedding that
/// mutates engine files underneath an open store) need the table set to
/// hold still. The worker shuts down cleanly when the [`crate::Pass`]
/// drops. With maintenance off, engines fall back to inline full-merge
/// compaction, the pre-worker behavior.
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    /// Spawn the per-shard compaction workers.
    pub enabled: bool,
    /// Periodic wake-up interval (flushes also wake the worker).
    pub tick: Duration,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig { enabled: false, tick: Duration::from_millis(250) }
    }
}

/// Configuration for [`crate::Pass::open`].
#[derive(Debug, Clone)]
pub struct PassConfig {
    /// This store's site identity (stamped on everything it captures;
    /// placement experiments key off it).
    pub site: SiteId,
    /// Storage backend.
    pub backend: Backend,
    /// Lineage strategy.
    pub closure: ClosureStrategy,
    /// Number of commit shards (keyspace partitions, each with its own
    /// commit lock — and, on disk, its own WAL and memtable). `1` (the
    /// default) is exactly the pre-sharding store: same single-WAL
    /// on-disk layout, byte for byte. For an existing on-disk store the
    /// persisted layout wins over this setting on reopen.
    pub shards: usize,
    /// Background compaction/GC workers (disk backends only; no effect
    /// on memory stores).
    pub maintenance: MaintenanceConfig,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            site: SiteId::default(),
            backend: Backend::default(),
            closure: ClosureStrategy::default(),
            shards: 1,
            maintenance: MaintenanceConfig::default(),
        }
    }
}

impl PassConfig {
    /// In-memory store for a site.
    pub fn memory(site: SiteId) -> Self {
        PassConfig { site, ..PassConfig::default() }
    }

    /// Durable store for a site with default engine options.
    pub fn disk(site: SiteId, dir: impl Into<PathBuf>) -> Self {
        PassConfig {
            site,
            backend: Backend::Disk { dir: dir.into(), options: EngineOptions::default() },
            ..PassConfig::default()
        }
    }

    /// Overrides the closure strategy.
    pub fn with_closure(mut self, closure: ClosureStrategy) -> Self {
        self.closure = closure;
        self
    }

    /// Overrides the commit shard count (`0` is treated as `1`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Enables the background maintenance workers (tiered compaction +
    /// pin-aware GC between commits) with the default tick.
    pub fn with_maintenance(mut self) -> Self {
        self.maintenance.enabled = true;
        self
    }
}
