//! Streaming-read tests at the store level: `Pass` cursors pin their
//! snapshot (valid and repeatable under concurrent ingest), and
//! `Snapshot` carries the full read surface so read-only callers never
//! need a `&Pass`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use crossbeam::thread;
use pass_core::Pass;
use pass_model::{keys, Attributes, Reading, SensorId, SiteId, Timestamp, TupleSetId};
use pass_query::{parse, QueryEngine};

fn capture_batch(pass: &Pass, start: u64, n: u64) -> Vec<TupleSetId> {
    pass.capture_batch((start..start + n).map(|i| {
        (
            Attributes::new().with(keys::DOMAIN, "traffic").with("seq", i as i64),
            vec![Reading::new(SensorId(1), Timestamp(i)).with("v", i as i64)],
            Timestamp(i),
        )
    }))
    .expect("capture batch")
}

#[test]
fn cursor_pins_its_snapshot_across_ingest() {
    let pass = Pass::open_memory(SiteId(1));
    let first = capture_batch(&pass, 0, 50);

    // Open the cursor, then commit more batches before draining.
    let mut cursor = pass.open_query(&parse(r#"FIND WHERE domain = "traffic""#).unwrap()).unwrap();
    capture_batch(&pass, 1_000, 50);
    capture_batch(&pass, 2_000, 50);

    let mut got: Vec<TupleSetId> = cursor.by_ref().map(|r| r.id).collect();
    got.sort();
    let mut want = first;
    want.sort();
    assert_eq!(got, want, "cursor sees exactly its snapshot's records");
    assert_eq!(pass.len(), 150, "ingest proceeded meanwhile");
}

#[test]
fn cursors_drain_consistently_under_concurrent_ingest() {
    let pass = Pass::open_memory(SiteId(2));
    capture_batch(&pass, 0, 100);

    thread::scope(|s| {
        // Writer: keeps group-committing new batches.
        s.spawn(|_| {
            for round in 0..20u64 {
                capture_batch(&pass, 10_000 + round * 100, 25);
            }
        });
        // Readers: every cursor must yield an exact multiple of 25 (plus
        // the seed 100) — a count that never matches a half-applied
        // batch — and must equal its own snapshot length.
        for _ in 0..3 {
            s.spawn(|_| {
                for _ in 0..30 {
                    let snapshot = pass.snapshot();
                    let expected = snapshot.len();
                    let seen = snapshot.open_query(&parse("FIND").unwrap()).unwrap().count();
                    assert_eq!(seen, expected, "cursor diverged from its snapshot");
                    assert_eq!((seen - 100) % 25, 0, "saw a torn batch: {seen}");
                }
            });
        }
    })
    .expect("no thread panicked");
}

#[test]
fn keyset_paging_through_a_live_store_is_lossless() {
    let pass = Pass::open_memory(SiteId(3));
    capture_batch(&pass, 0, 200);
    // One-shot result on a pinned snapshot.
    let snapshot = pass.snapshot();
    let full: Vec<TupleSetId> = snapshot
        .open_query(&parse("FIND ORDER BY created ASC").unwrap())
        .unwrap()
        .map(|r| r.id)
        .collect();
    assert_eq!(full.len(), 200);

    // Page through the same snapshot while the live store keeps moving.
    let mut paged: Vec<TupleSetId> = Vec::new();
    let mut after: Option<TupleSetId> = None;
    loop {
        capture_batch(&pass, 50_000 + paged.len() as u64 * 10, 3); // concurrent churn
        let mut query = parse("FIND ORDER BY created ASC LIMIT 23").unwrap();
        query.after = after;
        let page: Vec<TupleSetId> = snapshot.open_query(&query).unwrap().map(|r| r.id).collect();
        if page.is_empty() {
            break;
        }
        after = Some(*page.last().unwrap());
        paged.extend(page);
    }
    assert_eq!(full, paged, "pages over a pinned snapshot concatenate losslessly");
}

#[test]
fn snapshot_carries_the_full_read_surface() {
    let pass = Pass::open_memory(SiteId(4));
    let ids = capture_batch(&pass, 0, 10);
    pass.query_text("FIND").expect("query");
    let snapshot = pass.snapshot();

    // ids / stats parity with the live store at snapshot time.
    let mut snap_ids = snapshot.ids();
    snap_ids.sort();
    let mut want = ids.clone();
    want.sort();
    assert_eq!(snap_ids, want);
    let stats = snapshot.stats();
    assert_eq!(stats.records, 10);
    assert_eq!(stats.data_blobs, 10);
    assert_eq!(stats.batches, 1, "one group commit so far");
    assert_eq!(stats.queries, 1, "captured at snapshot time");

    // Data reads without touching the Pass.
    assert!(snapshot.has_data(ids[0]));
    let readings = snapshot.get_data(ids[0]).expect("read").expect("present");
    assert_eq!(readings.len(), 1);

    // Mutations after the snapshot: index state stays pinned, counters
    // stay as captured.
    capture_batch(&pass, 100, 5);
    pass.query_text("FIND").expect("query");
    assert_eq!(snapshot.ids().len(), 10);
    assert_eq!(snapshot.stats().queries, 1);

    // Data removal: the pinned index still says present (has_data), the
    // shared storage read reports the truth — exactly the documented
    // divergence.
    pass.remove_data(ids[0]).expect("remove");
    assert!(snapshot.has_data(ids[0]), "index state is pinned");
    assert!(snapshot.get_data(ids[0]).expect("read").is_none(), "storage is shared");
}

#[test]
fn snapshot_get_tuple_set_parity_and_divergence() {
    let pass = Pass::open_memory(SiteId(6));
    let ids = capture_batch(&pass, 0, 4);
    let snapshot = pass.snapshot();

    // Parity with the live store while nothing moves.
    let live = pass.get_tuple_set(ids[0]).expect("read").expect("present");
    let snap = snapshot.get_tuple_set(ids[0]).expect("read").expect("present");
    assert_eq!(live.provenance, snap.provenance);
    assert_eq!(live.readings, snap.readings);

    // A record committed after the snapshot is invisible to it.
    let new_ids = capture_batch(&pass, 100, 1);
    assert!(pass.get_tuple_set(new_ids[0]).expect("read").is_some());
    assert!(snapshot.get_tuple_set(new_ids[0]).expect("read").is_none());

    // The pinned divergence: after concurrent remove_data the snapshot's
    // index still lists the record (and has_data says true), but the
    // readings come from shared, unversioned storage — get_tuple_set
    // reports None, exactly like get_data.
    pass.remove_data(ids[1]).expect("remove");
    assert!(snapshot.has_data(ids[1]), "index state is pinned");
    assert!(snapshot.get_record(ids[1]).is_some(), "record survives removal (property 4)");
    assert!(snapshot.get_tuple_set(ids[1]).expect("read").is_none(), "readings are shared");
}

#[test]
fn snapshot_lineage_is_repeatable_under_ingest() {
    use pass_index::{Direction, TraverseOpts};
    let pass = Pass::open_memory(SiteId(7));
    let roots = capture_batch(&pass, 0, 2);
    let mid = pass
        .derive(
            &[roots[0]],
            &pass_model::ToolDescriptor::new("stage", "1"),
            Attributes::new().with(keys::DOMAIN, "traffic"),
            vec![],
            Timestamp(1_000),
        )
        .expect("derive");
    let snapshot = pass.snapshot();

    // Parity with the live store at snapshot time.
    let live: Vec<_> =
        pass.lineage(roots[0], Direction::Descendants, TraverseOpts::unbounded()).expect("live");
    let pinned: Vec<_> = snapshot
        .lineage(roots[0], Direction::Descendants, TraverseOpts::unbounded())
        .expect("pinned");
    assert_eq!(live, pinned);
    assert_eq!(pinned.iter().map(|r| r.id).collect::<Vec<_>>(), vec![mid]);

    // New descendants grow the live answer but never the pinned one.
    pass.derive(
        &[mid],
        &pass_model::ToolDescriptor::new("stage", "2"),
        Attributes::new().with(keys::DOMAIN, "traffic"),
        vec![],
        Timestamp(2_000),
    )
    .expect("derive");
    assert_eq!(
        pass.lineage(roots[0], Direction::Descendants, TraverseOpts::unbounded())
            .expect("live")
            .len(),
        2
    );
    assert_eq!(
        snapshot
            .lineage(roots[0], Direction::Descendants, TraverseOpts::unbounded())
            .expect("pinned")
            .len(),
        1,
        "snapshot closure is repeatable"
    );

    // Unknown roots error identically on both surfaces.
    assert!(snapshot
        .lineage(TupleSetId(424242), Direction::Ancestors, TraverseOpts::unbounded())
        .is_err());
}

#[test]
fn pass_execute_and_cursor_agree() {
    let pass = Pass::open_memory(SiteId(5));
    capture_batch(&pass, 0, 64);
    for text in [
        "FIND",
        r#"FIND WHERE seq >= 32"#,
        "FIND ORDER BY created DESC LIMIT 7",
        r#"FIND WHERE domain = "traffic" LIMIT 5"#,
    ] {
        let query = parse(text).unwrap();
        let executed = pass.query(&query).expect("query").records;
        let drained: Vec<_> = pass.open_query(&query).unwrap().collect();
        assert_eq!(executed, drained, "{text}");
    }
}
