//! Group-commit contract tests (ISSUE-3): one `KvStore::apply` per
//! batch, and all-or-nothing validation with no partial state.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_core::{Pass, PassConfig};
use pass_model::{Attributes, Reading, SensorId, SiteId, Timestamp, TupleSet};
use pass_storage::{KvStore, MemEngine, WriteBatch};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Test double: delegates to a `MemEngine`, counting `apply` calls.
#[derive(Default)]
struct CountingKv {
    inner: MemEngine,
    applies: AtomicUsize,
}

impl CountingKv {
    fn applies(&self) -> usize {
        self.applies.load(Ordering::SeqCst)
    }
}

impl KvStore for CountingKv {
    fn get(&self, key: &[u8]) -> pass_storage::Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }

    fn apply(&self, batch: WriteBatch) -> pass_storage::Result<()> {
        self.applies.fetch_add(1, Ordering::SeqCst);
        self.inner.apply(batch)
    }

    fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> pass_storage::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan_range(start, end)
    }

    fn flush(&self) -> pass_storage::Result<()> {
        self.inner.flush()
    }
}

fn counting_pass() -> (Pass, Arc<CountingKv>) {
    let store = Arc::new(CountingKv::default());
    let pass = Pass::open_with_store(store.clone(), PassConfig::memory(SiteId(1))).unwrap();
    (pass, store)
}

/// `n` independent raw tuple sets, built by a donor store so the records
/// carry valid identities and content digests.
fn sets(n: usize) -> Vec<TupleSet> {
    let donor = Pass::open_memory(SiteId(9));
    let ids = donor
        .capture_batch((0..n).map(|i| {
            let at = Timestamp(1_000 + i as u64);
            (
                Attributes::new().with("domain", "traffic").with("seq", i as i64),
                vec![Reading::new(SensorId(i as u64 % 8), at).with("speed", 30.0 + i as f64)],
                at,
            )
        }))
        .unwrap();
    ids.into_iter().map(|id| donor.get_tuple_set(id).unwrap().unwrap()).collect()
}

#[test]
fn ingest_batch_issues_exactly_one_apply() {
    let (pass, store) = counting_pass();
    let sets = sets(257);
    let before = store.applies();
    let ids = pass.ingest_batch(&sets).unwrap();
    assert_eq!(ids.len(), 257);
    assert_eq!(store.applies() - before, 1, "N-set ingest_batch must group-commit once");
    // Every set is visible and the batch counted as one commit.
    for ts in &sets {
        assert!(pass.get_record(ts.provenance.id).is_some());
    }
    assert_eq!(pass.stats().batches, 1);
    assert_eq!(pass.stats().ingests, 257);
}

#[test]
fn capture_batch_issues_exactly_one_apply() {
    let (pass, store) = counting_pass();
    let before = store.applies();
    let ids = pass
        .capture_batch((0..64).map(|i| {
            let at = Timestamp(2_000 + i as u64);
            (
                Attributes::new().with("seq", i as i64),
                vec![Reading::new(SensorId(1), at).with("v", i as f64)],
                at,
            )
        }))
        .unwrap();
    assert_eq!(ids.len(), 64);
    assert_eq!(store.applies() - before, 1);
}

#[test]
fn mid_batch_validation_failure_leaves_no_partial_state() {
    let (pass, store) = counting_pass();
    let mut batch = sets(32);
    // Tamper with a set in the middle: extra reading, stale digest.
    let bad = &mut batch[17];
    bad.readings.push(Reading::new(SensorId(99), Timestamp(5)).with("forged", 1.0));
    let poisoned_id = bad.provenance.id;

    let before = store.applies();
    let err = pass.ingest_batch(&batch);
    assert!(err.is_err(), "digest-mismatched set must fail the whole batch");

    // No storage write, no index entry, no provenance — not even for the
    // valid sets that preceded the poisoned one.
    assert_eq!(store.applies() - before, 0, "failed validation must not touch storage");
    for ts in &batch {
        assert!(pass.get_record(ts.provenance.id).is_none());
        assert!(pass.get_tuple_set(ts.provenance.id).unwrap().is_none());
    }
    let hits = pass.query_text(r#"FIND WHERE domain = "traffic""#).unwrap();
    assert!(hits.ids().is_empty(), "no index state may leak from a failed batch");
    assert_eq!(pass.stats().ingests, 0);
    assert_eq!(pass.stats().batches, 0);

    // The pass stays usable: the same batch minus the poisoned set commits.
    let good: Vec<TupleSet> =
        batch.iter().filter(|ts| ts.provenance.id != poisoned_id).cloned().collect();
    let ids = pass.ingest_batch(&good).unwrap();
    assert_eq!(ids.len(), 31);
    assert_eq!(store.applies() - before, 1);
}

#[test]
fn snapshot_reads_are_repeatable_while_ingest_proceeds() {
    let (pass, _store) = counting_pass();
    pass.ingest_batch(&sets(8)).unwrap();
    let snap = pass.snapshot();
    let seen_before = snap.query_text(r#"FIND WHERE domain = "traffic""#).unwrap().ids().len();
    assert_eq!(seen_before, 8);

    // Ingest more behind the snapshot's back.
    let more = sets(16);
    pass.ingest_batch(&more[8..]).unwrap();

    let live = pass.query_text(r#"FIND WHERE domain = "traffic""#).unwrap().ids().len();
    assert_eq!(live, 16, "live reads see the new batch");
    let seen_after = snap.query_text(r#"FIND WHERE domain = "traffic""#).unwrap().ids().len();
    assert_eq!(seen_after, 8, "the snapshot keeps answering from its commit point");
}
